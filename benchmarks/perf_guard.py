"""CI perf guard for the transactional mutation engine.

Two assertions, both on the ``steps_imp`` small-corpus flow (the
cheapest flow that exercises every transactional call site —
``_drive``'s best-checkpoint, ``clear_complemented_levels``' reject
path, and the ``optimize_steps`` tail):

1. **Ledger guard** — wall-clock with transactions enabled must stay
   under the pre-transaction clone-engine baseline recorded in
   ``BENCH_runtime.json`` (``baseline_pre_transactions``), scaled by
   ``--max-ratio`` to absorb machine differences between the reference
   box and CI runners.
2. **In-run engine comparison** — the same corpus timed under both
   engines *in this process*: the transactional engine must not be
   slower than the legacy engine by more than ``--engine-margin``.
   This comparison is machine-independent, so it stays meaningful even
   when the ledger ratio is slack.

Both runs must also produce bit-identical graphs (gate totals compared
per benchmark) — a cheap determinism tripwire ahead of the full
oracle's tx-diff check.

Timings are published through the telemetry registry
(``perf_guard.tx_seconds`` / ``perf_guard.legacy_seconds`` /
``perf_guard.baseline_seconds`` gauges) and appended to
``BENCH_runtime.json`` as a machine-readable ``perf-guard`` entry so
CI trend checks can consume the guard verdict without scraping stdout.
``--no-append`` skips the ledger write; ``--output`` redirects it.

A third, separate mode guards the *scale* tier (the numpy-slab storage
engine's reason to exist): ``--scale NAME`` builds one generated
large benchmark (``repro.benchmarks.scale``), runs an
inverter-propagation pass over it with an attached CostView, and fails
if the whole flow exceeds ``--scale-budget`` seconds.  The timing is
published as the ``perf_guard.scale_seconds`` gauge and appended as a
``perf-guard-scale`` ledger entry.  ``--scale`` runs *instead of* the
corpus guard, so CI can budget the two checks independently.

When batched trial evaluation is on (``REPRO_BATCH=1``, the default)
the scale guard additionally asserts the batch kernels actually
engaged (``batch_score_calls > 0``): a silently degraded batch path
would otherwise only show up as a slow run, which a generous CI budget
could absorb.  Pair this with a tightened ``--scale-budget`` sized for
the batched flow.

Run:  PYTHONPATH=src python benchmarks/perf_guard.py
      PYTHONPATH=src python benchmarks/perf_guard.py --scale rca1536 --scale-budget 300
Not pytest-collected: plain script, exit code 1 on violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

BENCH_JSON = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_runtime.json")
)


def _run_corpus(enabled: bool, effort: int):
    from repro.benchmarks import load_mig, small_names
    from repro.mig import Realization, optimize_steps, transaction_engine

    sizes = []
    with transaction_engine(enabled):
        start = time.perf_counter()
        for name in small_names():
            mig = load_mig(name)
            optimize_steps(mig, Realization.IMP, effort)
            sizes.append((name, mig.num_gates()))
        seconds = time.perf_counter() - start
    return seconds, sizes


def _run_scale(args) -> int:
    """The ``--scale`` mode: one large generated benchmark under a
    wall-clock budget, exercising the slab engine's bulk paths."""
    from repro.benchmarks import load_scale_mig
    from repro.mig import (
        CostView,
        Realization,
        batch_enabled,
        batch_min_nodes,
        graph_engine_name,
    )
    from repro.mig.algorithms import inverter_propagation_pass

    effort = args.effort or 2
    budget = args.scale_budget
    if budget is None:
        # Derive from the checked-in repo ledger (the historical series),
        # not --output, which CI points at a fresh per-run file.
        from repro.telemetry import LedgerError, load_ledger
        from repro.telemetry.observatory import derive_scale_budget

        try:
            budget = derive_scale_budget(load_ledger(BENCH_JSON), args.scale)
            print(f"scale budget (ledger noise band): {budget:.1f}s")
        except LedgerError:
            budget = 300.0
            print(f"scale budget (no usable ledger): {budget:.1f}s")
    start = time.perf_counter()
    mig = load_scale_mig(args.scale)
    build_seconds = time.perf_counter() - start
    gates = mig.num_gates()
    view = CostView(mig)
    before = view.costs(Realization.MAJ)
    inverter_propagation_pass(
        mig, Realization.MAJ, max_rounds=max(1, effort), view=view
    )
    after = view.costs(Realization.MAJ)
    total_seconds = time.perf_counter() - start

    from repro.telemetry import metrics

    registry = metrics()
    registry.gauge("perf_guard.scale_seconds").set(round(total_seconds, 3))

    print(f"scale guard: {args.scale} ({gates} gates, "
          f"engine {graph_engine_name()}):")
    print(f"  build                          : {build_seconds:.3f}s")
    print(f"  total (build + invprop + view) : {total_seconds:.3f}s")
    print(f"  MAJ R/S                        : {before.rrams}/{before.steps}"
          f" -> {after.rrams}/{after.steps}")

    counters = view.counters.as_dict()
    batch_expected = (
        batch_enabled()
        and hasattr(mig, "slab_invprop_case_array")
        and gates >= batch_min_nodes()
    )
    failed = total_seconds > budget
    if failed:
        print(
            f"FAIL: {total_seconds:.3f}s exceeds scale budget "
            f"{budget:.1f}s"
        )
    if batch_expected and counters["batch_score_calls"] == 0:
        print(
            "FAIL: batched evaluation enabled but the batch scorer never "
            "engaged (batch_score_calls == 0) — no-op batch path"
        )
        failed = True
    if not failed:
        print("scale guard PASS")

    if not args.no_append:
        from repro.flows.bench import append_bench_entry

        entry = {
            "kind": "perf-guard-scale",
            "passed": not failed,
            "benchmark": args.scale,
            "gates": gates,
            "seconds": round(total_seconds, 3),
            "effort": effort,
            "graph_engine": graph_engine_name(),
            "batch_enabled": batch_enabled(),
            "counters": {
                key: counters[key]
                for key in (
                    "moves_tried",
                    "predicted_skips",
                    "batch_score_calls",
                    "batch_candidates_scored",
                    "batch_group_calls",
                    "batch_strash_probes",
                )
            },
            "build_seconds": round(build_seconds, 3),
            "scale_seconds": round(total_seconds, 3),
            "scale_budget": budget,
            "rrams_before": before.rrams,
            "steps_before": before.steps,
            "rrams": after.rrams,
            "steps": after.steps,
            "metrics": registry.snapshot(),
        }
        append_bench_entry(entry, path=args.output)
        print(f"appended perf-guard-scale entry to {args.output}")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=3.0,
        help="allowed multiple of the recorded baseline seconds "
        "(absorbs reference-machine vs CI-runner speed differences)",
    )
    parser.add_argument(
        "--engine-margin",
        type=float,
        default=1.25,
        help="allowed tx/legacy wall-clock ratio measured in-process",
    )
    parser.add_argument("--effort", type=int, default=None)
    parser.add_argument(
        "--scale",
        default=None,
        metavar="NAME",
        help="run the scale-tier guard on one generated large benchmark "
        "(see repro.benchmarks.scale) instead of the corpus guard",
    )
    parser.add_argument(
        "--scale-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the --scale flow (build + optimize); "
        "default: derived from the ledger's historical noise band for "
        "this benchmark (median + MAD upper bound, 300s fallback)",
    )
    parser.add_argument(
        "--output",
        default=BENCH_JSON,
        help="bench ledger to append the machine-readable entry to",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="skip appending the perf-guard entry to the ledger",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        return _run_scale(args)

    with open(BENCH_JSON, encoding="utf-8") as handle:
        ledger = json.load(handle)
    baseline = ledger.get("baseline_pre_transactions")
    if not baseline:
        print("perf_guard: no baseline_pre_transactions in ledger", flush=True)
        return 1
    baseline_seconds = float(baseline["steps_imp_small_seconds"])
    effort = args.effort or int(baseline.get("effort", 10))

    tx_seconds, tx_sizes = _run_corpus(True, effort)
    legacy_seconds, legacy_sizes = _run_corpus(False, effort)

    from repro.telemetry import metrics

    registry = metrics()
    registry.gauge("perf_guard.tx_seconds").set(round(tx_seconds, 3))
    registry.gauge("perf_guard.legacy_seconds").set(round(legacy_seconds, 3))
    registry.gauge("perf_guard.baseline_seconds").set(baseline_seconds)

    print(f"steps_imp small corpus, effort {effort}:")
    print(f"  recorded clone-engine baseline : {baseline_seconds:.3f}s")
    print(f"  transactional engine           : {tx_seconds:.3f}s")
    print(f"  legacy engine (this machine)   : {legacy_seconds:.3f}s")

    failed = False
    if tx_sizes != legacy_sizes:
        diverged = [
            (name, a, b)
            for (name, a), (_n, b) in zip(tx_sizes, legacy_sizes)
            if a != b
        ]
        print(f"FAIL: engines diverge structurally: {diverged[:5]}")
        failed = True
    if tx_seconds > baseline_seconds * args.max_ratio:
        print(
            f"FAIL: {tx_seconds:.3f}s exceeds recorded baseline "
            f"{baseline_seconds:.3f}s x {args.max_ratio}"
        )
        failed = True
    if tx_seconds > legacy_seconds * args.engine_margin:
        print(
            f"FAIL: transactional engine {tx_seconds:.3f}s slower than "
            f"legacy {legacy_seconds:.3f}s x {args.engine_margin}"
        )
        failed = True
    if not failed:
        print("perf guard PASS")

    if not args.no_append:
        from repro.flows.bench import append_bench_entry

        from repro.mig import graph_engine_name

        entry = {
            "kind": "perf-guard",
            "passed": not failed,
            "seconds": round(tx_seconds + legacy_seconds, 3),
            "effort": effort,
            "graph_engine": graph_engine_name(),
            "tx_seconds": round(tx_seconds, 3),
            "legacy_seconds": round(legacy_seconds, 3),
            "baseline_seconds": baseline_seconds,
            "max_ratio": args.max_ratio,
            "engine_margin": args.engine_margin,
            "metrics": registry.snapshot(),
        }
        append_bench_entry(entry, path=args.output)
        print(f"appended perf-guard entry to {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
