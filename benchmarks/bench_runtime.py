"""Paper Sec. IV-A runtime claim.

"The run-time of each proposed algorithm for the whole benchmark set is
less than 3 seconds" — in the authors' C++ implementation.  This bench
measures our Python implementation per proposed algorithm over the
whole large set so EXPERIMENTS.md can report the honest equivalent.

Besides the pytest-benchmark console table, every run merges a
machine-readable record into ``BENCH_runtime.json`` at the repo root:
per-algorithm wall-clock, optimized gate totals, and the CostView
recompute/delta counters aggregated over the set.

Run:  pytest benchmarks/bench_runtime.py --benchmark-only
"""

from __future__ import annotations

import time

import pytest

from conftest import EFFORT, record_bench, table2_names
from repro.benchmarks import load_mig
from repro.mig import Realization, optimize_rram, optimize_steps


def _run_whole_set(optimizer):
    total_size = 0
    profile: dict = {}
    for name in table2_names():
        mig = load_mig(name)
        result = optimizer(mig)
        total_size += mig.num_gates()
        for key, value in (result.profile or {}).items():
            profile[key] = profile.get(key, 0) + value
    return total_size, profile


@pytest.mark.parametrize(
    "label,optimizer",
    [
        (
            "rram_maj",
            lambda mig: optimize_rram(mig, Realization.MAJ, min(EFFORT, 10)),
        ),
        (
            "steps_maj",
            lambda mig: optimize_steps(mig, Realization.MAJ, min(EFFORT, 10)),
        ),
    ],
)
def test_whole_set_runtime(benchmark, label, optimizer):
    """Wall-clock for one proposed algorithm over all 25 benchmarks."""
    measured = {}

    def run():
        start = time.perf_counter()
        total_size, profile = _run_whole_set(optimizer)
        measured["seconds"] = round(time.perf_counter() - start, 3)
        measured["total_gates"] = total_size
        measured["profile"] = profile
        return total_size

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_bench(
        "whole_set", {label: dict(measured, effort=min(EFFORT, 10))}
    )
    assert result > 0


def test_single_large_benchmark_runtime(benchmark):
    """Steady-state timing on one mid-size circuit (apex7)."""
    names = table2_names()
    target = "apex7" if "apex7" in names else names[0]
    last = {}

    def run():
        mig = load_mig(target)
        result = optimize_steps(mig, Realization.MAJ, 6)
        last["total_gates"] = mig.num_gates()
        last["profile"] = result.profile
        return mig.num_gates()

    benchmark(run)
    record_bench(
        "single_benchmark",
        {
            target: {
                "seconds": round(benchmark.stats.stats.mean, 4),
                "total_gates": last["total_gates"],
                "profile": last["profile"],
                "effort": 6,
            }
        },
    )
