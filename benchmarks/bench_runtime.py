"""Paper Sec. IV-A runtime claim.

"The run-time of each proposed algorithm for the whole benchmark set is
less than 3 seconds" — in the authors' C++ implementation.  This bench
measures our Python implementation per proposed algorithm over the
whole large set so EXPERIMENTS.md can report the honest equivalent.

Run:  pytest benchmarks/bench_runtime.py --benchmark-only
"""

from __future__ import annotations

import pytest

from conftest import EFFORT, table2_names
from repro.benchmarks import load_mig
from repro.mig import Realization, optimize_rram, optimize_steps


def _run_whole_set(optimizer) -> int:
    total_size = 0
    for name in table2_names():
        mig = load_mig(name)
        optimizer(mig)
        total_size += mig.num_gates()
    return total_size


@pytest.mark.parametrize(
    "label,optimizer",
    [
        (
            "rram_maj",
            lambda mig: optimize_rram(mig, Realization.MAJ, min(EFFORT, 10)),
        ),
        (
            "steps_maj",
            lambda mig: optimize_steps(mig, Realization.MAJ, min(EFFORT, 10)),
        ),
    ],
)
def test_whole_set_runtime(benchmark, label, optimizer):
    """Wall-clock for one proposed algorithm over all 25 benchmarks."""
    result = benchmark.pedantic(
        lambda: _run_whole_set(optimizer), rounds=1, iterations=1
    )
    assert result > 0


def test_single_large_benchmark_runtime(benchmark):
    """Steady-state timing on one mid-size circuit (apex7)."""
    names = table2_names()
    target = "apex7" if "apex7" in names else names[0]

    def run():
        mig = load_mig(target)
        optimize_steps(mig, Realization.MAJ, 6)
        return mig.num_gates()

    benchmark(run)
