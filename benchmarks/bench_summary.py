"""Paper Sec. IV-B aggregate claims — the Σ-row percentages of Table II.

Reuses the session-wide Table II run and checks the directional claims:

* the multi-objective algorithm cuts steps vs *both* conventional
  algorithms (paper: −35.39 % vs area opt, −30.43 % vs depth opt);
* it uses fewer RRAMs than the step optimizer (paper: −19.78 %) at a
  step penalty (paper: +21.09 %) — the trade-off that motivates having
  both algorithms.

Aggregate ratios and per-flow (R, S) totals are also merged into the
machine-readable ``BENCH_runtime.json`` ledger at the repo root.

Run:  pytest benchmarks/bench_summary.py --benchmark-only -s
"""

from __future__ import annotations

from conftest import EFFORT, record_bench
from repro.flows import render_summary, summarize_table2


def test_summary_claims(benchmark, table2_result, capsys):
    stats = benchmark.pedantic(
        lambda: summarize_table2(table2_result), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print("=" * 72)
        print("Sec. IV-B aggregate claims (measured vs paper)")
        print("=" * 72)
        print(render_summary(stats))

    record_bench(
        "summary",
        {
            "effort": EFFORT,
            "ratios": {
                key: round(value, 4)
                for key, value in stats.as_dict().items()
            },
            "totals": {
                flow: list(pair)
                for flow, pair in table2_result.totals().items()
            },
        },
    )

    # Directional checks (magnitudes differ: stand-in benchmarks; see
    # EXPERIMENTS.md for the per-claim discussion).
    assert stats.rram_imp_steps_vs_area > 0, (
        "multi-objective must beat conventional area optimization on steps"
    )
    # Our synthetic circuits have complement-saturated levels (L ≈ D),
    # so conventional depth optimization already captures most of the
    # step reduction; the claim holds with a small tolerance rather
    # than the paper's 30 % margin.
    assert stats.rram_imp_steps_vs_depth >= -0.05, (
        "multi-objective must stay competitive with depth optimization"
    )
    # Trade-off direction: multi-objective spends steps to save RRAMs
    # relative to the pure step optimizer (or matches it).
    assert stats.rram_maj_rrams_vs_step >= -0.02
    assert stats.rram_maj_steps_penalty_vs_step >= -0.02
