"""Extension bench: cut rewriting vs the paper's Alg. 1 area flow.

The paper's conventional area optimization (Alg. 1) only has
``eliminate`` and associativity reshaping; the cut-rewriting extension
resynthesizes 4-input cones with the decomposition engine.  This bench
quantifies the gap — and what the extra area buys in RRAM count
(``R = max(K·N_i + C_i)`` shrinks with level populations).

Run:  pytest benchmarks/bench_rewriting.py --benchmark-only -s
"""

from __future__ import annotations

from repro.benchmarks import load_mig
from repro.mig import (
    Realization,
    optimize_area,
    optimize_area_plus,
    rram_costs,
)

CIRCUITS = ["misex1", "apex7", "b9", "x2", "cm162a", "9sym_d"]


def test_area_vs_rewriting(benchmark, capsys):
    def sweep():
        rows = {}
        for name in CIRCUITS:
            baseline = load_mig(name)
            optimize_area(baseline, 10)
            extended = load_mig(name)
            optimize_area_plus(extended, 6)
            rows[name] = (
                load_mig(name).num_gates(),
                baseline.num_gates(),
                extended.num_gates(),
                rram_costs(baseline, Realization.MAJ).rrams,
                rram_costs(extended, Realization.MAJ).rrams,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Alg. 1 area optimization vs cut-rewriting extension")
        print(
            f"{'circuit':<10s} {'initial':>8s} {'Alg.1':>8s} {'rewrite':>8s}"
            f" {'R Alg.1':>8s} {'R rewr':>8s}"
        )
        for name, (initial, alg1, rewr, r1, r2) in rows.items():
            print(
                f"{name:<10s} {initial:>8d} {alg1:>8d} {rewr:>8d}"
                f" {r1:>8d} {r2:>8d}"
            )

    for name, (initial, alg1, rewr, _r1, _r2) in rows.items():
        assert alg1 <= initial, name
        assert rewr <= initial, name
    # The extension must find real reductions somewhere.
    assert any(rewr < alg1 for _i, alg1, rewr, _r1, _r2 in rows.values())
