"""Ablation studies on the design choices DESIGN.md calls out.

Not part of the paper's tables, but they justify its algorithmic
choices quantitatively:

* **Ω.I tier ablation** — step counts with (a) push-up only, (b) the
  paper's case-restricted Ω.I extension (Sec. III-C3), (c) the full
  Alg. 4 machinery (unrestricted base rule + case extension +
  coordinated level clearing), and (d) tier (c) plus simulated-annealing
  complement placement, isolating how much of the step reduction comes
  from complement management vs pure depth optimization — and how close
  the greedy schedule already is to an annealed global search.
  ``parity`` is included as the control: XOR-tree complements are
  structurally irreducible, so no tier may beat the baseline there.
* **effort sweep** — how the step count converges with the cycle budget
  (the paper fixes effort = 40; we show where convergence happens).

Run:  pytest benchmarks/bench_ablation.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.benchmarks import load_mig
from repro.mig import (
    Realization,
    inverter_propagation_pass,
    optimize_steps,
    push_up,
    rram_costs,
)
from repro.mig import anneal_complements
from repro.mig.algorithms import clear_complemented_levels

CIRCUITS = ["x2", "cm162a", "sao2f1", "apex7", "cordic", "parity"]
CONTROL = "parity"  # XOR complements are irreducible


def _steps_with_tier(name: str, tier: str) -> int:
    mig = load_mig(name)
    push_up(mig, use_relevance=False)
    if tier in ("cases", "full", "anneal"):
        if tier in ("full", "anneal"):
            inverter_propagation_pass(
                mig, Realization.MAJ, cases=None,
                steps_weight=8, rram_weight=1,
            )
        inverter_propagation_pass(
            mig, Realization.MAJ, cases=(1, 2, 3),
            steps_weight=8, rram_weight=1,
        )
        if tier in ("full", "anneal"):
            clear_complemented_levels(mig, Realization.MAJ)
        if tier == "anneal":
            anneal_complements(mig, Realization.MAJ, iterations=2500)
    push_up(mig, use_relevance=False)
    return rram_costs(mig, Realization.MAJ).steps


def test_inverter_tier_ablation(benchmark, capsys):
    """Steps with no Ω.I, case-restricted Ω.I, and the full machinery."""

    def sweep():
        return {
            name: (
                _steps_with_tier(name, "none"),
                _steps_with_tier(name, "cases"),
                _steps_with_tier(name, "full"),
                _steps_with_tier(name, "anneal"),
            )
            for name in CIRCUITS
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ω.I ablation (steps, MAJ realization)")
        print(
            f"{'circuit':<10s} {'no Ω.I':>8s} {'cases 1-3':>10s} "
            f"{'full':>8s} {'+anneal':>8s}"
        )
        for name, (none, cases, full, annealed) in rows.items():
            print(
                f"{name:<10s} {none:>8d} {cases:>10d} {full:>8d} "
                f"{annealed:>8d}"
            )

    for name, (none, cases, full, annealed) in rows.items():
        assert cases <= none, name
        assert full <= cases, name
        assert annealed <= full, name
    # Complement management must win somewhere, or Alg. 4's extra
    # machinery over plain depth optimization would be pointless.
    assert any(
        full < none for name, (none, _c, full, _a) in rows.items()
        if name != CONTROL
    )
    # ... and the control shows the structural limit: parity's XOR
    # complements cannot be eliminated, only relocated.
    control_none, _cases, control_full, control_annealed = rows[CONTROL]
    assert control_full == control_none
    assert control_annealed == control_none


def test_effort_sweep(benchmark, capsys):
    """Convergence of Alg. 4 with the cycle budget."""
    efforts = [1, 2, 4, 8, 16, 40]

    def sweep():
        table = {}
        for name in CIRCUITS:
            row = []
            for effort in efforts:
                mig = load_mig(name)
                optimize_steps(mig, Realization.MAJ, effort)
                row.append(rram_costs(mig, Realization.MAJ).steps)
            table[name] = row
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("effort sweep (steps, Alg. 4, MAJ realization)")
        header = f"{'circuit':<10s}" + "".join(f" e={e:<4d}" for e in efforts)
        print(header)
        for name, row in table.items():
            print(f"{name:<10s}" + "".join(f" {s:<6d}" for s in row))

    for name, row in table.items():
        # Monotone non-increasing in effort, and converged by 40.
        assert all(a >= b for a, b in zip(row, row[1:])), name
        assert row[-1] == row[-2], name
