"""Paper Table III (right) — AIG-based baseline [12] vs the proposed
multi-objective MIG flow on the small benchmark set.

Run:  pytest benchmarks/bench_table3_aig.py --benchmark-only -s
"""

from __future__ import annotations

from conftest import EFFORT, VERIFY, table3_small_names
from repro.flows import render_table3, run_table3_aig


def test_table3_aig(benchmark, capsys):
    """Regenerates Table III's AIG half and checks the headline shape."""
    result = benchmark.pedantic(
        lambda: run_table3_aig(
            table3_small_names(), effort=EFFORT, verify=VERIFY
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("=" * 72)
        print("Table III (AIG [12] baseline) reproduction")
        print("=" * 72)
        print(render_table3(result))

    # Shape: AIG steps exceed MIG-MAJ substantially in aggregate
    # (paper: 7.1x) and MIG-IMP by a smaller factor (paper: 2.57x);
    # the symmetric functions show the blow-up most clearly.
    maj_ratio, imp_ratio = result.step_ratios()
    assert maj_ratio > 2.0
    assert maj_ratio > imp_ratio
    for name in ("9sym_d", "sym10_d"):
        if name in result.rows:
            row = result.rows[name]
            assert row.baseline_steps > 3 * row.mig_maj[1], name
