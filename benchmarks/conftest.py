"""Shared infrastructure for the benchmark harness.

Environment knobs:

* ``REPRO_BENCH_EFFORT``  — optimization cycle budget (default 40, the
  paper's setting);
* ``REPRO_BENCH_SUBSET``  — comma-separated benchmark names to restrict
  the tables to (default: the full paper sets);
* ``REPRO_BENCH_VERIFY``  — ``1`` to equivalence-check every optimized
  graph (default on; set ``0`` for raw speed).
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

import pytest

from repro.benchmarks import large_names, small_names

EFFORT = int(os.environ.get("REPRO_BENCH_EFFORT", "40"))
VERIFY = os.environ.get("REPRO_BENCH_VERIFY", "1") != "0"

#: Machine-readable results ledger, committed at the repo root so the
#: perf trajectory survives across PRs.
BENCH_JSON = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_runtime.json")
)


def record_bench(section: str, payload: dict) -> None:
    """Merge ``payload`` into ``BENCH_runtime.json`` under ``section``.

    Read-modify-write so independent bench modules (runtime, summary)
    can each contribute their slice without clobbering the others.
    """
    data: dict = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    section_data = data.setdefault(section, {})
    section_data.update(payload)
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _subset(defaults: List[str]) -> List[str]:
    raw = os.environ.get("REPRO_BENCH_SUBSET")
    if not raw:
        return defaults
    chosen = [name.strip() for name in raw.split(",") if name.strip()]
    return [name for name in chosen if name in defaults] or defaults


def table2_names() -> List[str]:
    return _subset(large_names())


def table3_small_names() -> List[str]:
    return _subset(small_names())


@pytest.fixture(scope="session")
def table2_result():
    """One full Table II run shared by every bench that needs it."""
    from repro.flows import run_table2

    return run_table2(table2_names(), effort=EFFORT, verify=VERIFY)
