"""Shared infrastructure for the benchmark harness.

Environment knobs:

* ``REPRO_BENCH_EFFORT``  — optimization cycle budget (default 40, the
  paper's setting);
* ``REPRO_BENCH_SUBSET``  — comma-separated benchmark names to restrict
  the tables to (default: the full paper sets);
* ``REPRO_BENCH_VERIFY``  — ``1`` to equivalence-check every optimized
  graph (default on; set ``0`` for raw speed).
"""

from __future__ import annotations

import os
from typing import List, Optional

import pytest

from repro.benchmarks import large_names, small_names

EFFORT = int(os.environ.get("REPRO_BENCH_EFFORT", "40"))
VERIFY = os.environ.get("REPRO_BENCH_VERIFY", "1") != "0"


def _subset(defaults: List[str]) -> List[str]:
    raw = os.environ.get("REPRO_BENCH_SUBSET")
    if not raw:
        return defaults
    chosen = [name.strip() for name in raw.split(",") if name.strip()]
    return [name for name in chosen if name in defaults] or defaults


def table2_names() -> List[str]:
    return _subset(large_names())


def table3_small_names() -> List[str]:
    return _subset(small_names())


@pytest.fixture(scope="session")
def table2_result():
    """One full Table II run shared by every bench that needs it."""
    from repro.flows import run_table2

    return run_table2(table2_names(), effort=EFFORT, verify=VERIFY)
