"""Refresh the checked-in Table II counter-identity fixture.

The golden test (``tests/test_counter_golden.py``) replays the whole
Table II corpus under a pinned configuration — slab storage engine,
transactional mutation engine, default batch cutover — and compares
every deterministic counter against
``tests/data/table2_counters_golden.json``.  Any drift fails tier-1,
because these counters are pure functions of the algorithm and its
inputs: they may only change when an algorithm change *intends* them
to, and then this script is the one-command refresh that records the
new contract:

    PYTHONPATH=src python benchmarks/refresh_counter_golden.py

Review the resulting fixture diff like source code — every counter
delta is an algorithmic behavior change that the commit message should
be able to explain.
"""

from __future__ import annotations

import json
import os
import sys

FIXTURE = os.path.abspath(
    os.path.join(
        os.path.dirname(__file__),
        os.pardir,
        "tests",
        "data",
        "table2_counters_golden.json",
    )
)

#: The pinned flow configuration.  Effort 2 keeps the refresh/test run
#: tractable (~1 min: the fixed build cost dominates) while still
#: driving every optimizer ladder, the strash tables, the transaction
#: undo log, and the batch kernels over the full corpus.
EFFORT = 2
JOBS = 1


def capture() -> dict:
    from repro.flows.bench import bench_table2
    from repro.mig import batch_evaluation, graph_engine, transaction_engine
    from repro.telemetry import DETERMINISTIC_COUNTER_KEYS

    with graph_engine("slab"), transaction_engine(True), batch_evaluation(
        True
    ):
        entry = bench_table2(None, effort=EFFORT, jobs=JOBS)
    profile = entry["profile"]
    counters = {
        key: profile[key]
        for key in DETERMINISTIC_COUNTER_KEYS
        if key in profile
    }
    return {
        "_comment": (
            "Deterministic Table II whole-set counter snapshot. "
            "Regenerate with: PYTHONPATH=src python "
            "benchmarks/refresh_counter_golden.py"
        ),
        "effort": EFFORT,
        "jobs": JOBS,
        "graph_engine": entry["graph_engine"],
        "benchmarks": entry["benchmarks"],
        "counters": counters,
    }


def main() -> int:
    fixture = capture()
    with open(FIXTURE, "w", encoding="utf-8") as handle:
        json.dump(fixture, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE}")
    for key, value in sorted(fixture["counters"].items()):
        print(f"  {key:25s} {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
