"""Extension bench: write energy and endurance of the three backends.

The paper argues steps; the same schedules also differ in how many
voltage pulses (energy) and actual resistance switches (device wear)
they spend per computed vector.  The IMP realization applies ~10 pulses
per gate per evaluation, MAJ ~3 — the energy gap tracks the step gap.

Run:  pytest benchmarks/bench_energy.py --benchmark-only -s
"""

from __future__ import annotations

from repro.benchmarks import load_mig
from repro.mig import Realization, optimize_rram
from repro.rram import (
    compile_mig,
    compile_plim,
    measure_energy,
    verification_vectors,
)

CIRCUITS = ["xor5_d", "rd53f1", "con1f1", "max46_d"]


def test_energy_comparison(benchmark, capsys):
    def sweep():
        rows = {}
        for name in CIRCUITS:
            mig = load_mig(name)
            optimize_rram(mig, Realization.MAJ, 8)
            vectors = verification_vectors(mig.num_pis, samples=16)
            rows[name] = {
                "imp": measure_energy(
                    compile_mig(mig, Realization.IMP).program, vectors
                ),
                "maj": measure_energy(
                    compile_mig(mig, Realization.MAJ).program, vectors
                ),
                "plim": measure_energy(compile_plim(mig).program, vectors),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("write energy per computed vector (pJ, model values)")
        print(
            f"{'circuit':<10s} {'IMP':>8s} {'MAJ':>8s} {'PLiM':>8s}"
            f" {'MAJ/IMP':>8s} {'switch-eff MAJ':>15s}"
        )
        for name, reports in rows.items():
            imp = reports["imp"].energy_pj / reports["imp"].vectors
            maj = reports["maj"].energy_pj / reports["maj"].vectors
            plim = reports["plim"].energy_pj / reports["plim"].vectors
            print(
                f"{name:<10s} {imp:>8.1f} {maj:>8.1f} {plim:>8.1f}"
                f" {maj / imp:>7.0%} {reports['maj'].switch_efficiency:>14.0%}"
            )

    for name, reports in rows.items():
        assert reports["maj"].energy_pj < reports["imp"].energy_pj, name
        assert reports["maj"].pulses < reports["imp"].pulses, name
