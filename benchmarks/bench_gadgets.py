"""Figs. 1–3 micro-benchmarks: device ops, the two majority gadgets,
and full compiled-program execution on the array simulator.

These cover the paper's figure-level artifacts: Fig. 1 (IMP), Fig. 2
(intrinsic majority switching), Fig. 3 / Sec. III-A (the 10-step and
3-step gadgets), measuring simulator throughput for each.

Run:  pytest benchmarks/bench_gadgets.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.mig import Realization, mig_from_truth_tables
from repro.rram import (
    RramDevice,
    compile_mig,
    run_program,
    standalone_majority_program,
)
from repro.truth import count_ones_function


def test_device_switching(benchmark):
    """Fig. 2 primitive: one voltage application on one device."""
    device = RramDevice()

    def cycle():
        device.apply(True, False)
        device.apply(False, True)
        device.apply(False, False)
        return device.state

    benchmark(cycle)


@pytest.mark.parametrize("realization", ["imp", "maj"])
def test_majority_gadget_execution(benchmark, realization):
    """Figs. 1/3: replay one majority gadget over all 8 input combos."""
    program = standalone_majority_program(realization)

    def all_combos():
        outputs = []
        for assignment in range(8):
            inputs = [bool((assignment >> i) & 1) for i in range(3)]
            outputs.append(run_program(program, inputs)[0])
        return outputs

    result = benchmark(all_combos)
    expected = [bin(a).count("1") >= 2 for a in range(8)]
    assert result == expected


@pytest.mark.parametrize("realization", list(Realization))
def test_compiled_circuit_execution(benchmark, realization):
    """Sec. III-B methodology: level-by-level program on a real circuit."""
    mig = mig_from_truth_tables(count_ones_function(5, 3), "rd53")
    report = compile_mig(mig, realization)
    assert report.steps_match_model

    def run_all():
        total = 0
        for assignment in range(32):
            inputs = [bool((assignment >> i) & 1) for i in range(5)]
            total += sum(run_program(report.program, inputs))
        return total

    benchmark(run_all)


@pytest.mark.parametrize("realization", list(Realization))
def test_compile_throughput(benchmark, realization):
    """Compiler speed: MIG → micro-program."""
    mig = mig_from_truth_tables(count_ones_function(7, 3), "rd73")
    report = benchmark(lambda: compile_mig(mig, realization))
    assert report.steps_match_model
