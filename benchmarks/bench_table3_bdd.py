"""Paper Table III (left) — BDD-based baseline [11] vs the proposed
multi-objective MIG flow on the large benchmark set.

Run:  pytest benchmarks/bench_table3_bdd.py --benchmark-only -s
"""

from __future__ import annotations

from conftest import EFFORT, VERIFY, table2_names
from repro.flows import largest_function_ratio, render_table3, run_table3_bdd


def test_table3_bdd(benchmark, capsys):
    """Regenerates Table III's BDD half and checks the headline shape."""
    result = benchmark.pedantic(
        lambda: run_table3_bdd(table2_names(), effort=EFFORT, verify=VERIFY),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("=" * 72)
        print("Table III (BDD [11] baseline) reproduction")
        print("=" * 72)
        print(render_table3(result))
        both = [n for n in ("apex6", "x3") if n in result.rows]
        if both:
            ratio = largest_function_ratio(result, names=both)
            print(
                f"largest functions ({'+'.join(both)}): BDD/MIG-MAJ step "
                f"ratio = {ratio:.1f}x (paper: 26.5x)"
            )

    # Shape: aggregate BDD steps exceed the MAJ-realized MIG flow by a
    # large factor, and the IMP-realized flow by a smaller one (paper:
    # ~8x and ~4.5x / 3x).
    maj_ratio, imp_ratio = result.step_ratios()
    assert maj_ratio > 3.0
    assert maj_ratio > imp_ratio
    # The 135-input functions show the strongest separation.
    for name in ("apex6", "x3"):
        if name in result.rows:
            row = result.rows[name]
            assert row.baseline_steps > 5 * row.mig_maj[1], name
