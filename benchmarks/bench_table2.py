"""Paper Table II — the six optimization configurations over the large
benchmark set, with per-row paper-vs-measured output.

The full sweep runs once per session (shared with ``bench_summary``);
this module prints the table, asserts the paper's shape claims on every
row, and separately benchmarks representative single-circuit sweeps for
timing.

Run:  pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import EFFORT, VERIFY, table2_names
from repro.flows import render_table2, run_table2


def test_table2_full(benchmark, table2_result, capsys):
    """Regenerates the whole of Table II and prints it.

    The heavy sweep lives in the session fixture; the benchmarked
    quantity here is the table rendering (the sweep's wall time is
    visible in the per-config runtimes printed below).
    """
    result = table2_result
    rendered = benchmark.pedantic(
        lambda: render_table2(result), rounds=1, iterations=1
    )
    runtimes = {}
    for row in result.rows.values():
        for config, cell in row.items():
            runtimes[config] = runtimes.get(config, 0.0) + cell.runtime_seconds
    with capsys.disabled():
        print()
        print("=" * 72)
        print(f"Table II reproduction (effort={EFFORT}, verify={VERIFY})")
        print("=" * 72)
        print(rendered)
        print()
        print(
            "optimizer wall time per configuration (s): "
            + ", ".join(f"{k}={v:.0f}" for k, v in runtimes.items())
        )

    # Shape assertions (DESIGN.md §6): per benchmark, the MAJ
    # realization needs fewer steps than IMP for the same optimizer,
    # and the step optimizer never loses to the conventional area
    # optimizer on steps.
    for name, row in result.rows.items():
        assert row["rram_maj"].steps < row["rram_imp"].steps, name
        assert row["step_maj"].steps < row["step_imp"].steps, name
        assert row["step_imp"].steps <= row["area_imp"].steps, name
    totals = result.totals()
    assert totals["step_maj"][1] <= totals["rram_maj"][1]
    assert totals["step_maj"][1] < totals["depth_imp"][1]


@pytest.mark.parametrize("name", ["parity", "x2", "apex7"])
def test_table2_single_benchmark_timing(benchmark, name):
    """Per-circuit timing of the full six-configuration sweep."""
    if name not in table2_names():
        pytest.skip("excluded by REPRO_BENCH_SUBSET")
    benchmark(
        lambda: run_table2([name], effort=min(EFFORT, 10), verify=False)
    )
