"""Extension bench: level-parallel MAJ schedule vs PLiM serial RM3.

The paper's reference [15] executes logic-in-memory one RM3 instruction
per cycle; the paper's own Sec. III-B methodology executes a whole MIG
level per K_S steps.  This bench quantifies the contrast on the
benchmark suite: serial instruction counts scale with *node count*,
level-parallel step counts with *depth*.

Run:  pytest benchmarks/bench_plim.py --benchmark-only -s
"""

from __future__ import annotations

from repro.benchmarks import load_mig
from repro.mig import Realization, optimize_steps
from repro.rram import compile_mig, compile_plim

CIRCUITS = ["xor5_d", "rd53f1", "9sym_d", "parity", "clip", "x2", "cm150a"]


def test_plim_vs_level_parallel(benchmark, capsys):
    def sweep():
        rows = {}
        for name in CIRCUITS:
            mig = load_mig(name)
            optimize_steps(mig, Realization.MAJ, 10)
            parallel = compile_mig(mig, Realization.MAJ)
            plim = compile_plim(mig)
            rows[name] = (
                mig.num_gates(),
                parallel.measured_steps,
                plim.instructions,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("level-parallel MAJ schedule vs PLiM serial RM3 stream")
        print(
            f"{'circuit':<10s} {'gates':>6s} {'MAJ steps':>10s} "
            f"{'PLiM instr':>11s} {'serial/parallel':>16s}"
        )
        for name, (gates, steps, instructions) in rows.items():
            print(
                f"{name:<10s} {gates:>6d} {steps:>10d} {instructions:>11d} "
                f"{instructions / steps:>15.1f}x"
            )

    for name, (gates, steps, instructions) in rows.items():
        assert instructions > steps, name
    # The contrast must widen with circuit size.
    small = rows["xor5_d"]
    large = rows["9sym_d"]
    assert large[2] / large[1] > small[2] / small[1]
