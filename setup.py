"""Setup shim: all metadata lives in setup.cfg.

A plain setup.py (rather than a pyproject build-system table) keeps
``pip install -e .`` working in fully offline environments, where build
isolation cannot fetch its requirements.
"""

from setuptools import setup

setup()
