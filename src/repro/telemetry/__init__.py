"""Unified telemetry: metrics registry, tracing spans, trajectories.

Three cooperating layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.telemetry.registry` — process-wide named counters,
  gauges, histograms, and timers with deterministic snapshot/absorb
  merging (no-op when disabled);
* :mod:`repro.telemetry.tracing` — hierarchical spans serialized to a
  JSONL trace file;
* :mod:`repro.telemetry.trajectory` — per-trial (iteration, rule,
  accepted, R, S, depth, size, complemented edges) snapshots of an
  optimization run;

plus the contract (:mod:`repro.telemetry.schema`) and the renderers
(:mod:`repro.telemetry.report`).  :class:`TelemetrySession` bundles
the CLI wiring: open the trace, install the tracer, and on exit write
the final metrics record, the ``--metrics`` JSON file, and close
everything — in one ``with`` block.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .registry import (
    HISTOGRAM_SUFFIXES,
    NAME_RE,
    NOOP_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
    isolated_registry,
    metrics,
    set_registry,
    use_registry,
)
from .ledger import (
    ACCEPTED_BENCH_SCHEMA_VERSIONS,
    BENCH_SCHEMA_VERSION,
    DETERMINISTIC_COUNTER_KEYS,
    BaselineKey,
    CounterDrift,
    Ledger,
    LedgerError,
    NoiseBand,
    counter_drift,
    dedupe_entries,
    load_ledger,
    noise_band,
)
from .report import (
    BENCH_ENTRY_REQUIRED_KEYS,
    compare_traces,
    load_bench_ledger,
    load_trace,
    render_profile,
    render_trace_compare,
    render_trace_report,
    validate_bench_ledger,
    validate_trace,
)
from .schema import (
    KNOWN_HISTOGRAMS,
    KNOWN_METRIC_PREFIXES,
    KNOWN_METRICS,
    LEGACY_PROFILE_NAMES,
    SCHEMA_VERSION,
    TRACE_RECORD_TYPES,
    canonical_profile,
    metric_name_known,
    validate_metric_names,
    validate_record,
)
from .tracing import (
    NOOP_SPAN,
    Tracer,
    TraceWriter,
    current_tracer,
    install_tracer,
    span,
    traced,
)
from .trajectory import (
    TrajectoryRecorder,
    active_trajectory,
    trajectory_recording,
)

__all__ = [
    "ACCEPTED_BENCH_SCHEMA_VERSIONS",
    "BENCH_SCHEMA_VERSION",
    "BaselineKey",
    "Counter",
    "CounterDrift",
    "DETERMINISTIC_COUNTER_KEYS",
    "Gauge",
    "Ledger",
    "LedgerError",
    "NoiseBand",
    "compare_traces",
    "counter_drift",
    "dedupe_entries",
    "load_ledger",
    "noise_band",
    "render_trace_compare",
    "Histogram",
    "HISTOGRAM_SUFFIXES",
    "KNOWN_HISTOGRAMS",
    "KNOWN_METRIC_PREFIXES",
    "KNOWN_METRICS",
    "LEGACY_PROFILE_NAMES",
    "MetricsRegistry",
    "NAME_RE",
    "NOOP_METRIC",
    "NOOP_SPAN",
    "SCHEMA_VERSION",
    "TRACE_RECORD_TYPES",
    "TelemetryError",
    "TelemetrySession",
    "Tracer",
    "TraceWriter",
    "TrajectoryRecorder",
    "active_trajectory",
    "canonical_profile",
    "current_tracer",
    "install_tracer",
    "isolated_registry",
    "BENCH_ENTRY_REQUIRED_KEYS",
    "load_bench_ledger",
    "load_trace",
    "validate_bench_ledger",
    "metric_name_known",
    "metrics",
    "publish_profile",
    "render_profile",
    "render_trace_report",
    "set_registry",
    "span",
    "traced",
    "trajectory_recording",
    "use_registry",
    "validate_metric_names",
    "validate_record",
    "validate_trace",
]


def publish_profile(profile: Optional[Dict[str, Any]]) -> None:
    """Fold one run's legacy profile dict into the current registry
    under canonical names.

    Call exactly once per consumed optimization/fuzz run (the profile
    dicts themselves are per-run totals; publishing inside
    ``CostView.profile()`` would double-count because optimizers call
    it more than once).
    """
    if not profile:
        return
    metrics().absorb(canonical_profile(profile))


class TelemetrySession:
    """CLI wiring for ``--trace`` / ``--metrics`` on one command.

    On entry: opens the JSONL trace (when requested), writes the
    ``meta`` record, and installs the process tracer.  On exit: writes
    a final ``metrics`` record with the registry snapshot into the
    trace, dumps the same snapshot to the ``--metrics`` JSON file, and
    restores the previous tracer.  With neither path set the session
    is inert, so the CLI can wrap every command unconditionally.
    """

    def __init__(
        self,
        command: str,
        *,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.command = command
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.args = args or {}
        self.writer: Optional[TraceWriter] = None
        self._previous_tracer: Optional[Tracer] = None
        self._installed = False

    def __enter__(self) -> "TelemetrySession":
        if self.trace_path:
            self.writer = TraceWriter.open(self.trace_path)
            meta: Dict[str, Any] = {
                "type": "meta",
                "schema_version": SCHEMA_VERSION,
                "command": self.command,
            }
            if self.args:
                meta["args"] = self.args
            self.writer.write(meta)
            self._previous_tracer = install_tracer(Tracer(self.writer))
            self._installed = True
        return self

    def __exit__(self, *_exc: object) -> bool:
        snapshot = metrics().snapshot()
        if self._installed:
            install_tracer(self._previous_tracer)
            self._installed = False
        if self.writer is not None:
            self.writer.write({"type": "metrics", "metrics": snapshot})
            self.writer.close()
            self.writer = None
        if self.metrics_path:
            with open(self.metrics_path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return False

    def trajectory_sink(self) -> Optional[TraceWriter]:
        """The trace writer, for attaching a trajectory recorder."""
        return self.writer
