"""Optimization-trajectory recording.

Every optimizer in :mod:`repro.mig` runs a propose/measure/commit loop;
the *trajectory* is the sequence of cost states it passed through.  A
:class:`TrajectoryRecorder`, when active (see
:func:`trajectory_recording`), receives one snapshot each time an
optimizer commits or rolls back a trial and each time a drive cycle
completes, capturing

    ``(iteration, rule, accepted, R, S, depth, size,
       complemented-edge count)``

under the recorder's cost realization — exactly the quantities of the
paper's cost model ``R = max_i(K_R·N_i + C_i)``, ``S = K_S·D + L``.
Snapshots accumulate in memory and, when a trace sink is attached,
stream into the JSONL trace as ``{"type": "trajectory", ...}`` records,
so a run can be replayed as an R/S timeline (``repro-synth
trace-report``).

The final snapshot of a run (``rule="final"``, written by the CLI after
the optimizer returns) is computed from a from-scratch
:func:`repro.mig.views.level_stats`, so its R/S are exactly the numbers
the CLI prints — the contract the telemetry tests pin down.

Recording is pay-for-use: optimizers check :func:`active_trajectory`
(one global read) and skip everything when no recorder is active.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .tracing import TraceWriter


class TrajectoryRecorder:
    """Collects cost snapshots of one optimization run.

    ``realization`` is a :class:`repro.mig.views.Realization` (held by
    duck type — this module never imports :mod:`repro.mig` at module
    level).  ``validate=True`` cross-checks every view-supplied
    snapshot against the from-scratch statistics and raises on drift —
    the telemetry tests run optimizers under this mode to prove the
    recorder stays consistent with the CostView across rollbacks.
    """

    def __init__(
        self,
        realization: Any,
        sink: Optional[TraceWriter] = None,
        *,
        validate: bool = False,
    ) -> None:
        self.realization = realization
        self.sink = sink
        self.validate = validate
        self.snapshots: List[Dict[str, Any]] = []
        self._iteration = 0

    # ------------------------------------------------------------------

    def _stats_of(self, mig: Any, view: Any):
        if view is not None:
            return view.stats()
        from ..mig.views import level_stats  # lazy: no import cycle

        return level_stats(mig)

    def record_state(
        self, mig: Any, view: Any = None, *, rule: str, accepted: bool
    ) -> Dict[str, Any]:
        """Snapshot the current graph state after a commit/rollback."""
        stats = self._stats_of(mig, view)
        realization = self.realization
        snapshot: Dict[str, Any] = {
            "type": "trajectory",
            "iteration": self._iteration,
            "rule": rule,
            "accepted": bool(accepted),
            "r": stats.rram_count(realization),
            "s": stats.step_count(realization),
            "depth": stats.depth,
            "size": stats.size,
            "complemented_edges": sum(stats.complements_per_level)
            + stats.po_complements,
            "realization": realization.value,
        }
        self._iteration += 1
        if self.validate and view is not None:
            self._cross_check(mig, snapshot)
        self.snapshots.append(snapshot)
        if self.sink is not None:
            self.sink.write(snapshot)
        return snapshot

    def record_final(self, mig: Any) -> Dict[str, Any]:
        """The run's closing snapshot — always from-scratch statistics,
        so R/S match what the CLI reports for the optimized graph."""
        return self.record_state(mig, None, rule="final", accepted=True)

    def _cross_check(self, mig: Any, snapshot: Dict[str, Any]) -> None:
        from ..mig.views import level_stats

        reference = level_stats(mig)
        realization = self.realization
        expected = {
            "r": reference.rram_count(realization),
            "s": reference.step_count(realization),
            "depth": reference.depth,
            "size": reference.size,
            "complemented_edges": sum(reference.complements_per_level)
            + reference.po_complements,
        }
        for key, value in expected.items():
            if snapshot[key] != value:
                raise AssertionError(
                    f"trajectory drift at iteration "
                    f"{snapshot['iteration']} ({snapshot['rule']}): "
                    f"{key} view={snapshot[key]} reference={value}"
                )

    # ------------------------------------------------------------------

    @property
    def final(self) -> Optional[Dict[str, Any]]:
        return self.snapshots[-1] if self.snapshots else None

    def accepted_count(self) -> int:
        return sum(1 for s in self.snapshots if s["accepted"])


_RECORDER: Optional[TrajectoryRecorder] = None


def active_trajectory() -> Optional[TrajectoryRecorder]:
    """The recorder optimizers should report to, or None."""
    return _RECORDER


@contextmanager
def trajectory_recording(
    recorder: Optional[TrajectoryRecorder],
) -> Iterator[Optional[TrajectoryRecorder]]:
    """Scope ``recorder`` (possibly None) as the active one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    try:
        yield recorder
    finally:
        _RECORDER = previous
