"""Hierarchical tracing spans serialized as JSON lines.

A *span* is one timed region of work — an optimizer cycle, a rewrite
pass, a compilation — nested by a per-tracer stack so every record
carries its parent's id.  Instrumentation sites call :func:`span` (or
decorate with :func:`traced`); when no tracer is installed this returns
a shared no-op context manager, so tracing costs one global read and
one method call per *pass-granularity* region — nothing per move.

Records are written on span **exit** (children before parents, like
Chrome trace events), each as one JSON object per line with sorted
keys:

    ``{"attrs": {...}, "dur_s": 0.0123, "name": "pass.push_up",
       "parent_id": 3, "span_id": 7, "start_s": 0.5, "type": "span"}``

``start_s`` is relative to the writer's birth so traces are
machine-relocatable; ids are small ints allocated in creation order,
so span ordering is deterministic for a deterministic workload (only
the timings vary run to run).

The same :class:`TraceWriter` sink also carries the other record types
of the trace schema (``meta``, ``trajectory``, ``metrics``) — see
:mod:`repro.telemetry.schema` for the contract.
"""

from __future__ import annotations

import functools
import json
import time
from typing import Any, Callable, Dict, List, Optional, TextIO


class TraceWriter:
    """A JSONL sink: one sorted-key JSON object per line."""

    def __init__(self, handle: TextIO, *, close_handle: bool = True) -> None:
        self._handle = handle
        self._close_handle = close_handle
        self.created = time.perf_counter()
        self.records_written = 0

    @classmethod
    def open(cls, path: str) -> "TraceWriter":
        return cls(open(path, "w", encoding="utf-8"))

    def write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def close(self) -> None:
        self._handle.flush()
        if self._close_handle:
            self._handle.close()


class _LiveSpan:
    """An open span; closing it emits the record."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes after entry (e.g. measured outcomes)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        self._tracer._stack.append(self.span_id)
        return self

    def __exit__(self, *_exc: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self._start - tracer.origin, 6),
            "dur_s": round(end - self._start, 6),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        tracer.writer.write(record)
        return False


class _NoopSpan:
    """Shared do-nothing span for the no-tracer fast path."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id: Optional[int] = None

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Allocates span ids and tracks the open-span stack."""

    def __init__(self, writer: TraceWriter) -> None:
        self.writer = writer
        self.origin = writer.created
        self._stack: List[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        return _LiveSpan(self, name, span_id, parent_id, attrs)


_TRACER: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with ``None``, remove) the process tracer; returns
    the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attrs: Any):
    """Open a span under the installed tracer, or a shared no-op."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def traced(name: str) -> Callable:
    """Decorator wrapping a whole function call in :func:`span`.

    Used for pass-granularity functions (``push_up``, ``compile_mig``)
    whose bodies we do not want to reindent; with no tracer installed
    the overhead is one extra frame per call.
    """

    def wrap(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any):
            tracer = _TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return inner

    return wrap
