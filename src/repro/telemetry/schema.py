"""The telemetry contract: metric catalog and trace-record schema.

This module is the single source of truth for

* **metric names** — every name the instrumented code registers is
  listed in :data:`KNOWN_METRICS` / :data:`KNOWN_HISTOGRAMS` /
  :data:`KNOWN_METRIC_PREFIXES`.  CI validates emitted snapshots
  against the catalog and fails on unknown names, so counters cannot
  silently drift away from the documentation;
* **legacy profile keys** — the pre-telemetry ``--profile`` dicts used
  bare keys (``full_recomputes``, ``oracle``); those stay on the wire
  (pool workers sum them key-wise) and :func:`canonical_profile` maps
  them to catalog names at the rendering/registry boundary;
* **trace records** — the JSONL schema of ``--trace`` files
  (``meta`` / ``span`` / ``trajectory`` / ``metrics`` records),
  enforced by :func:`validate_record`.

See ``docs/OBSERVABILITY.md`` for the prose version of this contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from .registry import HISTOGRAM_SUFFIXES, NAME_RE

#: Trace schema version stamped into every ``meta`` record.
SCHEMA_VERSION = 1

# ----------------------------------------------------------------------
# Metric catalog
# ----------------------------------------------------------------------

#: Legacy per-run profile key → canonical registry metric name.
LEGACY_PROFILE_NAMES: Dict[str, str] = {
    # CostView incremental-maintenance counters.
    "full_recomputes": "costview.full_recomputes",
    "delta_updates": "costview.delta_updates",
    "cache_hits": "costview.cache_hits",
    "events_replayed": "costview.events_replayed",
    # Optimizer move accounting.
    "moves_tried": "optimizer.moves_tried",
    "moves_accepted": "optimizer.moves_accepted",
    "predicted_skips": "optimizer.predicted_skips",
    # Batched trial-evaluation counters (REPRO_BATCH=1 only).
    "batch_score_calls": "optimizer.batch_score_calls",
    "batch_candidates_scored": "optimizer.batch_candidates_scored",
    "batch_group_calls": "optimizer.batch_group_calls",
    "batch_strash_probes": "optimizer.batch_strash_probes",
    # Mig transaction-engine / structural-hashing counters.
    "tx_checkpoints": "mig.tx_checkpoints",
    "tx_rollbacks": "mig.tx_rollbacks",
    "tx_undo_replayed": "mig.tx_undo_replayed",
    "strash_hits": "mig.strash_hits",
    "strash_misses": "mig.strash_misses",
    # Graph storage-engine occupancy (slab/object switch).
    "compactions": "graph.compactions",
    "nodes_allocated": "graph.nodes_allocated",
    "slab_capacity": "graph.slab_capacity",
    # Fuzz campaign stage wall-clocks (seconds).
    "generate": "fuzz.stage_seconds.generate",
    "oracle": "fuzz.stage_seconds.oracle",
    "faults": "fuzz.stage_seconds.faults",
    "shrink": "fuzz.stage_seconds.shrink",
}

#: Exact counter/gauge names the instrumented code registers.
KNOWN_METRICS = frozenset(
    set(LEGACY_PROFILE_NAMES.values())
    | {
        # Decomposition-engine NPN recipe cache.
        "resynth.npn_cache_hits",
        "resynth.npn_cache_misses",
        # Cut rewriting.
        "rewrite.rounds",
        "rewrite.substitutions",
        "rewrite.rollbacks",
        # Annealing complement placement.
        "anneal.realized",
        "anneal.rejected",
        # Deterministic scheduler (parent-side).
        "parallel.tasks_completed",
        # Fuzz campaign (parent-side).
        "fuzz.cases",
        # RRAM backends.
        "rram.compile.programs",
        "rram.plim.programs",
        # Crossbar mapping.
        "crossbar.mapped_programs",
        # Perf-guard wall-clocks (gauges, seconds).
        "perf_guard.tx_seconds",
        "perf_guard.legacy_seconds",
        "perf_guard.baseline_seconds",
        "perf_guard.scale_seconds",
        # Observatory gate wall-clock (gauge, seconds).
        "obs.gate_seconds",
    }
)

#: Histogram base names (snapshots expand to ``.count/.total/.min/.max``).
KNOWN_HISTOGRAMS = frozenset(
    {
        "rram.compile.measured_steps",
        "rram.compile.measured_devices",
        "rram.plim.instructions",
        "rram.plim.devices",
        "crossbar.parallel_steps",
        "crossbar.step_ratio",
        "crossbar.utilization",
        "bench.flow_seconds",
    }
)

#: Families with dynamic last segments (per-stage timings and the like).
KNOWN_METRIC_PREFIXES = (
    "fuzz.stage_seconds.",
    "report.stage_seconds.",
)

#: Metric families whose values are pure functions of the algorithm and
#: its inputs — identical across machines, job counts, and runs.  The
#: differential trace comparison (``trace-report --compare``) fails on
#: any delta here and merely *reports* deltas elsewhere (wall-clocks
#: legitimately differ between runs).
DETERMINISTIC_METRIC_PREFIXES = (
    "costview.",
    "optimizer.",
    "mig.",
    "graph.",
    "resynth.",
    "rewrite.",
    "anneal.",
    "rram.",
    "crossbar.",
)

#: Exact deterministic names outside the prefix families.
DETERMINISTIC_METRICS = frozenset(
    {"fuzz.cases", "parallel.tasks_completed"}
)


def deterministic_metric(name: str) -> bool:
    """Is ``name`` (a snapshot key) machine-independent by contract?"""
    return name in DETERMINISTIC_METRICS or name.startswith(
        DETERMINISTIC_METRIC_PREFIXES
    )


def canonical_profile(profile: Mapping[str, Any]) -> Dict[str, Any]:
    """Map a legacy profile dict onto catalog names (unknown keys pass
    through unchanged — they are caught by validation, not mangled)."""
    return {
        LEGACY_PROFILE_NAMES.get(key, key): value
        for key, value in profile.items()
    }


def metric_name_known(name: str) -> bool:
    """Is ``name`` (a snapshot key) covered by the catalog?"""
    if name in KNOWN_METRICS:
        return True
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in KNOWN_HISTOGRAMS:
            return True
    return name.startswith(KNOWN_METRIC_PREFIXES)


def validate_metric_names(snapshot: Mapping[str, Any]) -> List[str]:
    """Catalog check for one flat snapshot; returns error strings."""
    errors = []
    for name in sorted(snapshot):
        if not isinstance(name, str) or not NAME_RE.match(name):
            errors.append(f"malformed metric name {name!r}")
        elif not metric_name_known(name):
            errors.append(
                f"unknown metric name {name!r} — add it to "
                "repro.telemetry.schema (and docs/OBSERVABILITY.md) "
                "or fix the instrumentation site"
            )
        value = snapshot[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"metric {name!r}: non-numeric value {value!r}")
    return errors


# ----------------------------------------------------------------------
# Trace-record schema
# ----------------------------------------------------------------------

#: record type → {field: allowed types}; all fields are required.
_RECORD_FIELDS: Dict[str, Dict[str, tuple]] = {
    "meta": {
        "schema_version": (int,),
        "command": (str,),
    },
    "span": {
        "name": (str,),
        "span_id": (int,),
        "parent_id": (int, type(None)),
        "start_s": (int, float),
        "dur_s": (int, float),
    },
    "trajectory": {
        "iteration": (int,),
        "rule": (str,),
        "accepted": (bool,),
        "r": (int,),
        "s": (int,),
        "depth": (int,),
        "size": (int,),
        "complemented_edges": (int,),
        "realization": (str,),
    },
    "metrics": {
        "metrics": (dict,),
    },
}

#: Optional fields per record type.
_RECORD_OPTIONAL: Dict[str, Dict[str, tuple]] = {
    "meta": {"args": (dict,), "created_unix": (int, float)},
    "span": {"attrs": (dict,)},
    "trajectory": {},
    "metrics": {},
}

TRACE_RECORD_TYPES = frozenset(_RECORD_FIELDS)


def validate_record(record: Any) -> List[str]:
    """Validate one parsed JSONL record; returns error strings."""
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    kind = record.get("type")
    if kind not in _RECORD_FIELDS:
        return [f"unknown record type {kind!r}"]
    errors: List[str] = []
    required = _RECORD_FIELDS[kind]
    optional = _RECORD_OPTIONAL[kind]
    for field, types in required.items():
        if field not in record:
            errors.append(f"{kind} record missing field {field!r}")
        elif not isinstance(record[field], types) or (
            bool not in types and isinstance(record[field], bool)
        ):
            errors.append(
                f"{kind} record field {field!r}: bad value "
                f"{record[field]!r}"
            )
    for field in record:
        if field == "type":
            continue
        if field not in required and field not in optional:
            errors.append(f"{kind} record has unknown field {field!r}")
        elif field in optional and not isinstance(
            record[field], optional[field]
        ):
            errors.append(
                f"{kind} record field {field!r}: bad value "
                f"{record[field]!r}"
            )
    if kind == "metrics" and isinstance(record.get("metrics"), dict):
        errors.extend(validate_metric_names(record["metrics"]))
    if kind == "meta" and record.get("schema_version") not in (
        None,
        SCHEMA_VERSION,
    ):
        errors.append(
            f"unsupported schema_version {record.get('schema_version')!r}"
        )
    return errors
