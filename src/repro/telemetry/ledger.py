"""Typed store over the ``BENCH_runtime.json`` perf ledger.

Every PR since the CostView rewrite has *appended* to the ledger —
``bench`` entries, perf-guard verdicts, scale-tier counters — but
nothing consumed it analytically: ``perf_guard.py`` compared one
wall-clock against a hand-set budget and the deterministic counters
went unwatched.  This module is the read side:

* :func:`load_ledger` — parse the ledger into a :class:`Ledger`,
  collapsing byte-identical historical entries (re-running a bench
  twice on an unchanged tree must not skew the noise statistics);
* :class:`BaselineKey` / :meth:`Ledger.query` /
  :meth:`Ledger.baseline` — baseline selection keyed by the fields
  that actually partition the numbers (``kind``, ``graph_engine``,
  ``effort``, ``machine``, ``jobs``);
* :func:`noise_band` — rolling-window median + MAD over historical
  wall-clocks, the robust statistics the wall-drift tier compares
  against;
* :func:`counter_drift` — exact comparison of the deterministic
  counter families (``moves_tried``, ``events_replayed``,
  ``strash_*``, ``batch_*``, ...).  These are machine-independent, so
  *any* unexplained change is algorithmic drift, not noise.

The write side stays where it always was
(:func:`repro.flows.bench.append_bench_entry`); new entries carry
``schema_version`` = :data:`BENCH_SCHEMA_VERSION` so readers can tell
normalized entries from historical ones.

See ``docs/OBSERVABILITY.md`` ("Observatory") for the prose contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

#: Version stamped into every new bench-ledger entry.  Version 1 is the
#: PR 9 normalized schema (``kind``/``seconds``/``effort``/
#: ``graph_engine``, no explicit marker); version 2 adds the marker
#: itself.  ``trace-report --validate`` accepts both.
BENCH_SCHEMA_VERSION = 2

#: Ledger entry schema versions ``validate_bench_ledger`` accepts.
ACCEPTED_BENCH_SCHEMA_VERSIONS = (1, BENCH_SCHEMA_VERSION)

#: Counter families that are pure functions of the algorithm and its
#: inputs — independent of machine speed, load, and wall-clock.  Any
#: change against a baseline measured at the same (kind, graph_engine,
#: effort) key is algorithmic drift and fails the counter tier of the
#: regression gate exactly; there is no noise band to hide in.
DETERMINISTIC_COUNTER_KEYS = (
    # Optimizer move accounting.
    "moves_tried",
    "moves_accepted",
    "predicted_skips",
    # CostView incremental maintenance.
    "events_replayed",
    "full_recomputes",
    "delta_updates",
    "cache_hits",
    # Structural hashing.
    "strash_hits",
    "strash_misses",
    # Transaction engine.
    "tx_checkpoints",
    "tx_rollbacks",
    "tx_undo_replayed",
    # Batched trial evaluation (the REPRO_BATCH=0 tripwire).
    "batch_score_calls",
    "batch_candidates_scored",
    "batch_group_calls",
    "batch_strash_probes",
    # Storage-engine occupancy (deterministic per engine).
    "nodes_allocated",
    "compactions",
)

#: 1.4826 scales the median absolute deviation to the standard
#: deviation of a normal distribution; 3 of those is the conventional
#: "outside the noise" threshold.
MAD_SIGMA = 1.4826
MAD_K = 3.0


class LedgerError(ValueError):
    """The ledger file exists but cannot be used as one."""


# ----------------------------------------------------------------------
# Robust statistics
# ----------------------------------------------------------------------


def median(values: Sequence[float]) -> float:
    """Plain median (no statistics import: keeps worker cost nil)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: median)."""
    if not values:
        raise ValueError("mad of empty sequence")
    middle = median(values) if center is None else center
    return median([abs(value - middle) for value in values])


@dataclass(frozen=True)
class NoiseBand:
    """Rolling-window noise statistics of one wall-clock series."""

    median: float
    mad: float
    count: int
    values: tuple = ()

    def upper(self, slack: float = 2.0) -> float:
        """The regression threshold: median + max(3·1.4826·MAD,
        slack·median).

        The MAD term is the statistical band; the relative ``slack``
        floor absorbs reference-box vs CI-runner speed differences the
        same way ``perf_guard.py --max-ratio`` used to (slack 2.0 ==
        the old 3× budget), so a sparsely populated ledger does not
        produce a zero-width band that fails every other machine.
        """
        return self.median + max(MAD_K * MAD_SIGMA * self.mad,
                                 slack * self.median)

    def classify(self, seconds: float, slack: float = 2.0) -> str:
        """``ok`` | ``slow`` for one measured wall-clock."""
        return "slow" if seconds > self.upper(slack) else "ok"


def noise_band(
    values: Sequence[float], *, window: int = 8
) -> Optional[NoiseBand]:
    """Band over the last ``window`` values, or None when empty."""
    tail = [float(v) for v in values][-max(1, window):]
    if not tail:
        return None
    center = median(tail)
    return NoiseBand(
        median=center, mad=mad(tail, center), count=len(tail),
        values=tuple(tail),
    )


# ----------------------------------------------------------------------
# Baseline selection
# ----------------------------------------------------------------------

#: Wildcard for BaselineKey fields ("do not filter on this field").
ANY = object()


@dataclass(frozen=True)
class BaselineKey:
    """What partitions ledger numbers into comparable series.

    ``kind`` is always required.  The remaining fields default to
    :data:`ANY` (no filtering); pass a concrete value — including
    ``None``, which some entries legitimately record for ``effort`` —
    to restrict the series.  ``machine`` and ``jobs`` matter for
    wall-clocks only; counter comparisons should leave them at ANY.
    """

    kind: str
    graph_engine: Any = ANY
    effort: Any = ANY
    machine: Any = ANY
    jobs: Any = ANY

    def matches(self, entry: Mapping[str, Any]) -> bool:
        if entry.get("kind") != self.kind:
            return False
        for field_name in ("graph_engine", "effort", "machine", "jobs"):
            wanted = getattr(self, field_name)
            if wanted is not ANY and entry.get(field_name) != wanted:
                return False
        return True

    def describe(self) -> str:
        parts = [f"kind={self.kind}"]
        for field_name in ("graph_engine", "effort", "machine", "jobs"):
            wanted = getattr(self, field_name)
            if wanted is not ANY:
                parts.append(f"{field_name}={wanted}")
        return " ".join(parts)


# ----------------------------------------------------------------------
# The ledger itself
# ----------------------------------------------------------------------


@dataclass
class Ledger:
    """Parsed ``BENCH_runtime.json`` with query/baseline helpers.

    ``entries`` preserves append order (oldest first) with
    byte-identical duplicates collapsed; ``duplicates_dropped`` counts
    how many were removed so reports can surface the dedupe.
    """

    path: str
    data: Dict[str, Any] = field(default_factory=dict)
    entries: List[Dict[str, Any]] = field(default_factory=list)
    duplicates_dropped: int = 0

    def query(self, key: BaselineKey) -> List[Dict[str, Any]]:
        """All matching entries, oldest first."""
        return [entry for entry in self.entries if key.matches(entry)]

    def baseline(self, key: BaselineKey) -> Optional[Dict[str, Any]]:
        """The most recent matching entry (None when the series is
        empty) — "latest wins" is the refresh contract: append a new
        entry after an intentional perf change and it becomes the
        baseline."""
        matches = self.query(key)
        return matches[-1] if matches else None

    def seconds_series(
        self, key: BaselineKey, *, field_name: str = "seconds"
    ) -> List[float]:
        """The numeric ``field_name`` series of matching entries,
        oldest first, skipping entries without a numeric value."""
        series = []
        for entry in self.query(key):
            value = entry.get(field_name)
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                series.append(float(value))
        return series

    def band(
        self,
        key: BaselineKey,
        *,
        field_name: str = "seconds",
        window: int = 8,
    ) -> Optional[NoiseBand]:
        return noise_band(
            self.seconds_series(key, field_name=field_name), window=window
        )


def dedupe_entries(
    entries: Iterable[Any],
) -> "tuple[List[Dict[str, Any]], int]":
    """Collapse byte-identical entries, keeping first occurrences.

    "Byte-identical" means identical canonical JSON (sorted keys) —
    the entry a re-run of an unchanged tree appends is exactly the
    entry already there, and counting it twice would fake a tighter
    noise band than the history supports.
    """
    seen = set()
    kept: List[Dict[str, Any]] = []
    dropped = 0
    for entry in entries:
        try:
            fingerprint = json.dumps(entry, sort_keys=True)
        except (TypeError, ValueError):
            fingerprint = repr(entry)
        if fingerprint in seen:
            dropped += 1
            continue
        seen.add(fingerprint)
        if isinstance(entry, dict):
            kept.append(entry)
    return kept, dropped


def load_ledger(path: str) -> Ledger:
    """Parse ``path`` into a :class:`Ledger`; raises :class:`LedgerError`
    on a missing/empty/non-ledger file (callers map this to exit 2)."""
    if not os.path.exists(path):
        raise LedgerError(f"{path}: no such ledger file")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise LedgerError(f"{path}: {exc}") from exc
    if not text.strip():
        raise LedgerError(f"{path}: empty ledger file")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LedgerError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(
        data.get("entries"), list
    ):
        raise LedgerError(
            f"{path}: not a bench ledger (expected an object with an "
            "'entries' list)"
        )
    entries, dropped = dedupe_entries(data["entries"])
    return Ledger(
        path=path, data=data, entries=entries, duplicates_dropped=dropped
    )


# ----------------------------------------------------------------------
# Counter drift (the deterministic tier)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CounterDrift:
    """One deterministic counter that moved against its baseline."""

    name: str
    baseline: Any
    current: Any

    def describe(self) -> str:
        return f"{self.name}: baseline {self.baseline} -> {self.current}"


def counter_drift(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    keys: Sequence[str] = DETERMINISTIC_COUNTER_KEYS,
) -> List[CounterDrift]:
    """Exact comparison over the deterministic counter families.

    Only keys the *baseline* records are compared (historical entries
    predate some counters); a key the baseline has but the current run
    lost is drift too — a counter silently disappearing is exactly the
    kind of instrumentation rot the gate exists to catch.
    """
    drifts: List[CounterDrift] = []
    for key in keys:
        if key not in baseline:
            continue
        if key not in current:
            drifts.append(CounterDrift(key, baseline[key], "<missing>"))
        elif current[key] != baseline[key]:
            drifts.append(CounterDrift(key, baseline[key], current[key]))
    return drifts
