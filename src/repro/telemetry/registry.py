"""Process-wide metrics registry: counters, gauges, histograms, timers.

One registry instance is "current" at any moment (:func:`metrics`); all
instrumentation sites grab their metric objects from it by name.  The
design goals, in order:

1. **Pay-for-use** — a metric increment is a plain Python attribute
   add on a tiny ``__slots__`` object, the same cost as the bespoke
   counter dataclasses this registry replaces.  A *disabled* registry
   hands out shared no-op singletons: nothing registers, nothing
   allocates per call, and ``snapshot()`` is empty.
2. **Deterministic aggregation** — :meth:`MetricsRegistry.snapshot`
   returns a flat, sorted, JSON-ready dict, and
   :meth:`MetricsRegistry.absorb` folds such snapshots back in with
   commutative operations only (sum, min, max), so merging per-worker
   snapshots in submission order is bit-identical for any job count.
3. **Stable naming** — names are dot-separated lowercase segments
   (``costview.cache_hits``); the catalog in
   :mod:`repro.telemetry.schema` is the single source of truth and CI
   fails on names that drift out of it.

Histograms keep only ``count/total/min/max`` — enough for the
per-stage breakdowns the flows need, cheap enough to update per
observation, and mergeable without bucket-boundary coordination.

``REPRO_TELEMETRY=0`` in the environment starts the process with the
registry disabled.
"""

from __future__ import annotations

import os
import re
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Union

Number = Union[int, float]

#: Metric names: dot-separated lowercase segments, e.g. ``mig.strash_hits``.
NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Snapshot-key suffixes a histogram expands into.
HISTOGRAM_SUFFIXES = (".count", ".total", ".min", ".max")


class TelemetryError(ValueError):
    """Bad metric name or kind mismatch."""


class Counter:
    """Monotone counter.  ``inc`` is the hot path: one attribute add."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins value (merged across workers by *sum* — avoid
    gauges in worker-side code; they are meant for parent-side facts
    like configured job counts or measured wall-clocks)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """count/total/min/max summary of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class _Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class _NoopMetric:
    """Shared do-nothing stand-in for every metric kind (disabled
    registry).  One instance serves all names: no allocation per call
    site, no state, no registration."""

    __slots__ = ()
    kind = "noop"
    name = ""
    value: Number = 0
    count = 0
    total: Number = 0
    min: Optional[Number] = None
    max: Optional[Number] = None

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def __enter__(self) -> "_NoopMetric":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


#: The process-wide no-op singleton (identity-checked by the tests).
NOOP_METRIC = _NoopMetric()


class MetricsRegistry:
    """A named collection of metric objects with snapshot/absorb."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}
        #: Keys absorbed from worker snapshots (no live metric object).
        self._absorbed: Dict[str, Number] = {}

    # -- registration ---------------------------------------------------

    def _get(self, name: str, factory, kind: str):
        if not self.enabled:
            return NOOP_METRIC
        metric = self._metrics.get(name)
        if metric is None:
            if not NAME_RE.match(name):
                raise TelemetryError(
                    f"bad metric name {name!r}: use dot-separated "
                    "lowercase segments like 'costview.cache_hits'"
                )
            metric = factory(name)
            self._metrics[name] = metric
        elif metric.kind != kind:  # type: ignore[attr-defined]
            raise TelemetryError(
                f"metric {name!r} already registered as "
                f"{metric.kind}, requested {kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram, "histogram")

    def timer(self, name: str):
        """Context manager timing into ``histogram(name)``."""
        histogram = self.histogram(name)
        if histogram is NOOP_METRIC:
            return NOOP_METRIC
        return _Timer(histogram)

    # -- aggregation ----------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """Flat ``{name: value}`` with sorted keys, JSON-ready.

        Histograms expand to ``name.count/.total/.min/.max`` (omitted
        entirely while empty); absorbed worker keys are included.
        """
        flat: Dict[str, Number] = dict(self._absorbed)
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                if metric.count == 0:
                    continue
                flat[name + ".count"] = flat.get(name + ".count", 0) + metric.count
                flat[name + ".total"] = flat.get(name + ".total", 0) + metric.total
                assert metric.min is not None and metric.max is not None
                key = name + ".min"
                flat[key] = min(flat[key], metric.min) if key in flat else metric.min
                key = name + ".max"
                flat[key] = max(flat[key], metric.max) if key in flat else metric.max
            else:
                value = metric.value  # type: ignore[attr-defined]
                flat[name] = flat.get(name, 0) + value
        return {name: flat[name] for name in sorted(flat)}

    def absorb(self, source: Optional[Mapping[str, Number]]) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this registry.

        Commutative per key — ``.min`` keys merge by min, ``.max`` keys
        by max, everything else sums — so absorbing per-worker
        snapshots in submission order is bit-identical to having run
        the work inline.
        """
        if not source or not self.enabled:
            return
        absorbed = self._absorbed
        for key in sorted(source):
            value = source[key]
            if not isinstance(value, (int, float)):
                continue
            if key.endswith(".min"):
                absorbed[key] = (
                    min(absorbed[key], value) if key in absorbed else value
                )
            elif key.endswith(".max"):
                absorbed[key] = (
                    max(absorbed[key], value) if key in absorbed else value
                )
            else:
                absorbed[key] = absorbed.get(key, 0) + value

    def reset(self) -> None:
        self._metrics.clear()
        self._absorbed.clear()


# ----------------------------------------------------------------------
# The process-wide current registry
# ----------------------------------------------------------------------

_CURRENT = MetricsRegistry(
    enabled=os.environ.get("REPRO_TELEMETRY", "1") != "0"
)


def metrics() -> MetricsRegistry:
    """The current process-wide registry."""
    return _CURRENT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as current; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the current one."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@contextmanager
def isolated_registry() -> Iterator[MetricsRegistry]:
    """Run a task against a fresh registry and hand its snapshot back.

    The parallel task wrappers use this so a task's metrics always
    arrive at the parent as an explicit snapshot (inline and pooled
    execution take the identical absorb path — the property behind the
    jobs-count bit-identity guarantee for merged metrics).
    """
    fresh = MetricsRegistry(enabled=_CURRENT.enabled)
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)
