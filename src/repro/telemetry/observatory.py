"""The performance observatory: regression gate + perf-trajectory report.

Consumes the :mod:`repro.telemetry.ledger` read side analytically:

* :func:`gate_table2` / :func:`gate_scale` — run the real flow
  (whole-set Table II, or the generated scale tier) and judge it
  against ledger baselines with **two tiers**:

  - *counter tier*: the deterministic counter families
    (``moves_tried``, ``events_replayed``, ``strash_*``, ``batch_*``,
    plus the R/S cost results themselves) compared **exactly** against
    the latest baseline at the same (kind, graph_engine, effort) key.
    These are machine-independent; any unexplained change is
    algorithmic drift and fails the gate outright.
  - *wall tier*: wall-clock compared against the rolling-window
    median + MAD noise band of the historical series (same key plus
    ``machine``/``jobs``), replacing ``perf_guard.py``'s hand-set
    budgets.  Only a run outside the band fails.

* :func:`build_report` / :func:`render_report` /
  :func:`render_report_html` — the per-benchmark perf-trajectory
  dashboard ``repro-synth obs report [--html]`` prints: sparkline
  tables per kind/engine/effort series, latest-vs-baseline deltas,
  and slab occupancy gauges.

* :func:`derive_scale_budget` — the ledger-derived wall budget
  ``benchmarks/perf_guard.py --scale`` now uses when no explicit
  ``--scale-budget`` is given.

The CLI wiring lives in ``repro.cli`` (``repro-synth obs gate`` /
``obs report``); CI runs the gate on every push (counter tier on the
whole-set Table II, wall tier on the scale smoke) and uploads the HTML
report as an artifact.
"""

from __future__ import annotations

import html as _html
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .ledger import (
    ANY,
    BENCH_SCHEMA_VERSION,
    BaselineKey,
    CounterDrift,
    Ledger,
    NoiseBand,
    counter_drift,
    noise_band,
)

#: Deterministic *result* fields of a scale-tier cell — R/S drift is
#: algorithmic drift exactly like counter drift (the cost model is a
#: pure function of the graph).
SCALE_RESULT_KEYS = (
    "rrams_before",
    "steps_before",
    "rrams",
    "steps",
    "depth",
)

GATE_TIERS = ("counters", "wall")


@dataclass(frozen=True)
class Finding:
    """One gate observation; ``ok=False`` findings fail the gate."""

    tier: str  # "counter" | "wall" | "info"
    subject: str  # "table2", "rca1536/imp", ...
    ok: bool
    message: str

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return f"  [{self.tier:<7s}] {verdict} {self.subject}: {self.message}"


@dataclass
class GateOutcome:
    """The verdict of one ``obs gate`` run."""

    what: str
    findings: List[Finding] = field(default_factory=list)
    entry: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(finding.ok for finding in self.findings)

    @property
    def failures(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.ok]


def _drift_findings(
    subject: str, drifts: Sequence[CounterDrift]
) -> List[Finding]:
    return [
        Finding("counter", subject, False, drift.describe())
        for drift in drifts
    ]


def _wall_finding(
    subject: str,
    seconds: float,
    band: Optional[NoiseBand],
    *,
    slack: float,
    strict: bool,
) -> Finding:
    if band is None:
        return Finding(
            "wall",
            subject,
            not strict,
            "no historical wall-clock series for this key "
            "(tier skipped; append a bench entry to seed the baseline)",
        )
    upper = band.upper(slack)
    ok = seconds <= upper
    return Finding(
        "wall",
        subject,
        ok,
        f"{seconds:.3f}s vs band median {band.median:.3f}s "
        f"(MAD {band.mad:.3f}, n={band.count}, limit {upper:.3f}s)",
    )


# ----------------------------------------------------------------------
# Gate: whole-set Table II (counter tier's home)
# ----------------------------------------------------------------------


def gate_table2(
    ledger: Ledger,
    *,
    effort: int = 10,
    jobs: int = 1,
    window: int = 8,
    wall_slack: float = 2.0,
    tiers: Sequence[str] = GATE_TIERS,
    strict: bool = False,
) -> GateOutcome:
    """Run the whole-set Table II flow and gate it against the ledger.

    The counter tier compares the merged CostView profile exactly
    against the latest ``kind=table2`` baseline at the same
    (graph_engine, effort); the wall tier compares the wall-clock
    against the noise band of the matching series (machine/jobs keyed).
    """
    from ..flows.bench import bench_table2
    from ..mig import graph_engine_name

    outcome = GateOutcome(what="table2")
    entry = bench_table2(None, effort=effort, jobs=jobs)
    outcome.entry = entry
    engine = graph_engine_name()

    if "counters" in tiers:
        key = BaselineKey("table2", graph_engine=engine, effort=effort)
        baseline = ledger.baseline(key)
        if baseline is None:
            outcome.findings.append(
                Finding(
                    "counter",
                    "table2",
                    not strict,
                    f"no baseline entry for {key.describe()} "
                    "(tier skipped; run 'repro-synth bench --what "
                    "table2' to seed one)",
                )
            )
        else:
            drifts = counter_drift(
                baseline.get("profile", {}) or {},
                entry.get("profile", {}) or {},
            )
            if drifts:
                outcome.findings.extend(_drift_findings("table2", drifts))
            else:
                compared = len(
                    [
                        k
                        for k in (baseline.get("profile", {}) or {})
                        if k in dict(entry.get("profile", {}) or {})
                    ]
                )
                outcome.findings.append(
                    Finding(
                        "counter",
                        "table2",
                        True,
                        f"deterministic counters identical to baseline "
                        f"({compared} keys, {key.describe()})",
                    )
                )

    if "wall" in tiers:
        wall_key = BaselineKey(
            "table2",
            graph_engine=engine,
            effort=effort,
            machine=entry.get("machine", ANY),
            jobs=jobs,
        )
        band = ledger.band(wall_key, window=window)
        outcome.findings.append(
            _wall_finding(
                "table2",
                float(entry["seconds"]),
                band,
                slack=wall_slack,
                strict=strict,
            )
        )
    return outcome


# ----------------------------------------------------------------------
# Gate: scale tier (wall tier's home + the batch tripwire)
# ----------------------------------------------------------------------


def scale_cell_seconds(cell: Mapping[str, Any]) -> float:
    """Wall-clock of one scale benchmark: build + both realizations."""
    seconds = float(cell.get("build_seconds", 0.0))
    for realization in ("imp", "maj"):
        inner = cell.get(realization)
        if isinstance(inner, Mapping):
            seconds += float(inner.get("optimize_seconds", 0.0))
    return seconds


def _scale_baseline_cell(
    ledger: Ledger,
    name: str,
    *,
    engine: Any,
    effort: Any,
    require_counters: bool,
) -> Optional[Mapping[str, Any]]:
    """Latest scale entry carrying ``name`` (and, when asked, its
    per-realization counters — early entries predate them)."""
    key = BaselineKey("scale", graph_engine=engine, effort=effort)
    for entry in reversed(ledger.query(key)):
        cell = (entry.get("benchmarks") or {}).get(name)
        if not isinstance(cell, Mapping):
            continue
        if require_counters and not all(
            isinstance(cell.get(r), Mapping) and "counters" in cell[r]
            for r in ("imp", "maj")
        ):
            continue
        return cell
    return None


def gate_scale(
    ledger: Ledger,
    names: Optional[Sequence[str]] = None,
    *,
    effort: int = 10,
    window: int = 8,
    wall_slack: float = 2.0,
    tiers: Sequence[str] = GATE_TIERS,
    strict: bool = False,
) -> GateOutcome:
    """Run the scale-tier flow and gate it against the ledger.

    Counter tier: per benchmark and realization, the optimizer/batch
    counters **and** the R/S results compared exactly (this is the
    tripwire that catches a silently disabled batch path:
    ``batch_score_calls`` drops 1 -> 0 under ``REPRO_BATCH=0``).
    Wall tier: per-benchmark build+optimize seconds against the noise
    band of the same benchmark's historical series.
    """
    from ..flows.bench import bench_scale
    from ..mig import graph_engine_name

    outcome = GateOutcome(what="scale")
    entry = bench_scale(list(names) if names else None, effort=effort)
    outcome.entry = entry
    engine = graph_engine_name()

    for name, cell in entry["benchmarks"].items():
        baseline_cell = _scale_baseline_cell(
            ledger, name, engine=engine, effort=effort,
            require_counters="counters" in tiers,
        )
        if baseline_cell is None:
            outcome.findings.append(
                Finding(
                    "counter" if "counters" in tiers else "wall",
                    name,
                    not strict,
                    "no scale baseline with counters for this key "
                    "(tier skipped; run 'repro-synth bench --what "
                    "scale' to seed one)",
                )
            )
            continue

        if "counters" in tiers:
            drifts: List[Tuple[str, CounterDrift]] = []
            if baseline_cell.get("gates") != cell.get("gates"):
                drifts.append(
                    (
                        name,
                        CounterDrift(
                            "gates",
                            baseline_cell.get("gates"),
                            cell.get("gates"),
                        ),
                    )
                )
            for realization in ("imp", "maj"):
                base_r = baseline_cell.get(realization) or {}
                cur_r = cell.get(realization) or {}
                subject = f"{name}/{realization}"
                for drift in counter_drift(
                    base_r.get("counters", {}) or {},
                    cur_r.get("counters", {}) or {},
                ):
                    drifts.append((subject, drift))
                for drift in counter_drift(
                    base_r, cur_r, keys=SCALE_RESULT_KEYS
                ):
                    drifts.append((subject, drift))
            if drifts:
                for subject, drift in drifts:
                    outcome.findings.append(
                        Finding("counter", subject, False, drift.describe())
                    )
            else:
                outcome.findings.append(
                    Finding(
                        "counter",
                        name,
                        True,
                        "counters and R/S identical to baseline "
                        "(both realizations)",
                    )
                )

        if "wall" in tiers:
            series = []
            key = BaselineKey(
                "scale",
                graph_engine=engine,
                effort=effort,
                machine=entry.get("machine", ANY),
            )
            for historical in ledger.query(key):
                hist_cell = (historical.get("benchmarks") or {}).get(name)
                if isinstance(hist_cell, Mapping):
                    series.append(scale_cell_seconds(hist_cell))
            outcome.findings.append(
                _wall_finding(
                    name,
                    scale_cell_seconds(cell),
                    noise_band(series, window=window),
                    slack=wall_slack,
                    strict=strict,
                )
            )
    return outcome


def render_gate(outcomes: Sequence[GateOutcome]) -> str:
    """Human rendering of one ``obs gate`` run."""
    lines: List[str] = []
    failed_counters: List[str] = []
    for outcome in outcomes:
        lines.append(f"gate {outcome.what}:")
        for finding in outcome.findings:
            lines.append(finding.render())
        for finding in outcome.failures:
            if finding.tier == "counter":
                failed_counters.append(
                    f"{finding.subject}: {finding.message}"
                )
    passed = all(outcome.passed for outcome in outcomes)
    if failed_counters:
        lines.append("drifting counters:")
        for item in failed_counters:
            lines.append(f"  {item}")
    lines.append(f"obs gate {'PASS' if passed else 'FAIL'}")
    return "\n".join(lines)


def gate_entry(
    outcomes: Sequence[GateOutcome], *, seconds: float, effort: int
) -> Dict[str, Any]:
    """The machine-readable ``obs-gate`` ledger entry for one run."""
    from ..mig import graph_engine_name

    return {
        "kind": "obs-gate",
        "schema_version": BENCH_SCHEMA_VERSION,
        "seconds": round(seconds, 3),
        "effort": effort,
        "graph_engine": graph_engine_name(),
        "passed": all(outcome.passed for outcome in outcomes),
        "gates": {
            outcome.what: {
                "passed": outcome.passed,
                "failures": [
                    f"{finding.subject}: {finding.message}"
                    for finding in outcome.failures
                ],
            }
            for outcome in outcomes
        },
    }


# ----------------------------------------------------------------------
# Ledger-derived budgets (perf_guard integration)
# ----------------------------------------------------------------------


def derive_scale_budget(
    ledger: Ledger,
    benchmark: str,
    *,
    window: int = 8,
    slack: float = 2.0,
    floor: float = 60.0,
    fallback: float = 300.0,
) -> float:
    """The wall budget ``perf_guard.py --scale`` uses when no explicit
    ``--scale-budget`` is given: the noise-band upper bound of the
    benchmark's historical build+optimize series (any effort/engine —
    the guard's budget only needs the right order of magnitude), or
    ``fallback`` when the ledger has no such history.

    ``floor`` keeps the budget from collapsing on sub-second flows: the
    guard is a gross-complexity tripwire running on shared CI runners,
    and 3x a one-second reference timing is indistinguishable from
    scheduler noise there.  The fine-grained wall check is the
    observatory gate's noise band, which is machine-keyed."""
    series: List[float] = []
    for kind in ("scale", "perf-guard-scale"):
        for entry in ledger.query(BaselineKey(kind)):
            if kind == "perf-guard-scale":
                if entry.get("benchmark") == benchmark and isinstance(
                    entry.get("scale_seconds"), (int, float)
                ):
                    series.append(float(entry["scale_seconds"]))
                continue
            cell = (entry.get("benchmarks") or {}).get(benchmark)
            if isinstance(cell, Mapping):
                series.append(scale_cell_seconds(cell))
    band = noise_band(series, window=window)
    if band is None:
        return fallback
    return max(band.upper(slack), floor)


# ----------------------------------------------------------------------
# The perf-trajectory report (obs report [--html])
# ----------------------------------------------------------------------

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of one series (empty string for no data)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_CHARS[
            min(
                len(_SPARK_CHARS) - 1,
                int((value - lo) / span * len(_SPARK_CHARS)),
            )
        ]
        for value in values
    )


@dataclass
class SeriesRow:
    """One (kind, graph_engine, effort) wall-clock series."""

    kind: str
    graph_engine: Any
    effort: Any
    seconds: List[float]
    band: Optional[NoiseBand]

    @property
    def latest(self) -> float:
        return self.seconds[-1]

    @property
    def delta_vs_median(self) -> Optional[float]:
        if self.band is None or self.band.median == 0:
            return None
        return (self.latest - self.band.median) / self.band.median


@dataclass
class ObservatoryReport:
    """Everything ``obs report`` renders, precomputed."""

    ledger_path: str
    entry_count: int
    duplicates_dropped: int
    series: List[SeriesRow]
    occupancy: Dict[str, Any]
    scale_cells: Dict[str, Dict[str, Any]]


def build_report(ledger: Ledger, *, window: int = 8) -> ObservatoryReport:
    """Aggregate the ledger into the dashboard's row model."""
    groups: Dict[Tuple[Any, Any, Any], List[float]] = {}
    for entry in ledger.entries:
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or isinstance(
            seconds, bool
        ):
            continue
        group = (
            entry.get("kind", "?"),
            entry.get("graph_engine"),
            entry.get("effort"),
        )
        groups.setdefault(group, []).append(float(seconds))

    series = [
        SeriesRow(
            kind=kind,
            graph_engine=engine,
            effort=effort,
            seconds=values,
            # The band excludes the latest point: it is what the latest
            # run is judged *against*, not part of its own baseline.
            band=(
                None
                if len(values) < 2
                else noise_band(values[:-1], window=window)
            ),
        )
        for (kind, engine, effort), values in sorted(
            groups.items(), key=lambda item: (str(item[0][0]),
                                              str(item[0][1]),
                                              str(item[0][2]))
        )
    ]

    # Slab occupancy gauges from the latest profile-carrying entry.
    occupancy: Dict[str, Any] = {}
    for entry in reversed(ledger.entries):
        profile = entry.get("profile")
        if isinstance(profile, Mapping) and "nodes_allocated" in profile:
            occupancy = {
                "kind": entry.get("kind"),
                "graph_engine": entry.get("graph_engine"),
                "nodes_allocated": profile.get("nodes_allocated"),
                "slab_capacity": profile.get("slab_capacity"),
                "compactions": profile.get("compactions"),
            }
            capacity = profile.get("slab_capacity") or 0
            if capacity:
                occupancy["occupancy"] = (
                    float(profile["nodes_allocated"]) / float(capacity)
                )
            break

    # Latest scale cells (per-benchmark R/S + counters).
    scale_cells: Dict[str, Dict[str, Any]] = {}
    for entry in reversed(ledger.entries):
        if entry.get("kind") != "scale":
            continue
        for name, cell in (entry.get("benchmarks") or {}).items():
            if name not in scale_cells and isinstance(cell, Mapping):
                scale_cells[name] = {
                    "gates": cell.get("gates"),
                    "seconds": round(scale_cell_seconds(cell), 3),
                    **{
                        realization: {
                            "rrams": (cell.get(realization) or {}).get(
                                "rrams"
                            ),
                            "steps": (cell.get(realization) or {}).get(
                                "steps"
                            ),
                        }
                        for realization in ("imp", "maj")
                    },
                }

    return ObservatoryReport(
        ledger_path=ledger.path,
        entry_count=len(ledger.entries),
        duplicates_dropped=ledger.duplicates_dropped,
        series=series,
        occupancy=occupancy,
        scale_cells=dict(sorted(scale_cells.items())),
    )


def _series_cells(row: SeriesRow) -> Tuple[str, str, str, str, str]:
    """(key, n, sparkline, latest, delta) display cells for one row."""
    key = f"{row.kind}/{row.graph_engine}/effort={row.effort}"
    delta = row.delta_vs_median
    delta_text = "-" if delta is None else f"{delta:+.1%}"
    return (
        key,
        str(len(row.seconds)),
        sparkline(row.seconds),
        f"{row.latest:.3f}s",
        delta_text,
    )


def render_report(report: ObservatoryReport) -> str:
    """Text dashboard (the default ``obs report`` output)."""
    lines = [
        f"ledger       : {report.ledger_path} "
        f"({report.entry_count} entries"
        + (
            f", {report.duplicates_dropped} byte-identical duplicates "
            "collapsed"
            if report.duplicates_dropped
            else ""
        )
        + ")"
    ]
    if report.series:
        rows = [_series_cells(row) for row in report.series]
        key_width = max(len(row[0]) for row in rows)
        lines.append("")
        lines.append("wall-clock series (latest vs rolling median):")
        lines.append(
            f"  {'series':<{key_width}s}  {'n':>3s}  {'trend':<10s}  "
            f"{'latest':>10s}  {'vs median':>9s}"
        )
        for key, count, spark, latest, delta in rows:
            lines.append(
                f"  {key:<{key_width}s}  {count:>3s}  {spark:<10s}  "
                f"{latest:>10s}  {delta:>9s}"
            )
    if report.occupancy:
        lines.append("")
        lines.append(
            f"slab occupancy (latest {report.occupancy.get('kind')} entry, "
            f"{report.occupancy.get('graph_engine')} engine):"
        )
        lines.append(
            f"  nodes_allocated : {report.occupancy.get('nodes_allocated')}"
        )
        lines.append(
            f"  slab_capacity   : {report.occupancy.get('slab_capacity')}"
            + (
                f" ({report.occupancy['occupancy']:.1%} occupied)"
                if "occupancy" in report.occupancy
                else ""
            )
        )
        lines.append(
            f"  compactions     : {report.occupancy.get('compactions')}"
        )
    if report.scale_cells:
        lines.append("")
        lines.append("scale tier (latest per benchmark):")
        width = max(len(name) for name in report.scale_cells)
        for name, cell in report.scale_cells.items():
            lines.append(
                f"  {name:<{width}s}  {cell['gates']:>7} gates  "
                f"{cell['seconds']:>8.3f}s  "
                f"imp R/S {cell['imp']['rrams']}/{cell['imp']['steps']}  "
                f"maj R/S {cell['maj']['rrams']}/{cell['maj']['steps']}"
            )
    return "\n".join(lines)


def render_report_html(report: ObservatoryReport) -> str:
    """Self-contained HTML dashboard (the CI artifact)."""

    def esc(value: Any) -> str:
        return _html.escape(str(value))

    series_rows = "\n".join(
        "<tr><td>{}</td><td class='num'>{}</td>"
        "<td class='spark'>{}</td><td class='num'>{}</td>"
        "<td class='num'>{}</td></tr>".format(
            *(esc(cell) for cell in _series_cells(row))
        )
        for row in report.series
    )
    occupancy_rows = "\n".join(
        f"<tr><td>{esc(key)}</td><td class='num'>{esc(value)}</td></tr>"
        for key, value in report.occupancy.items()
    )
    scale_rows = "\n".join(
        "<tr><td>{}</td><td class='num'>{}</td><td class='num'>{}</td>"
        "<td class='num'>{}/{}</td><td class='num'>{}/{}</td></tr>".format(
            esc(name),
            esc(cell["gates"]),
            esc(cell["seconds"]),
            esc(cell["imp"]["rrams"]),
            esc(cell["imp"]["steps"]),
            esc(cell["maj"]["rrams"]),
            esc(cell["maj"]["steps"]),
        )
        for name, cell in report.scale_cells.items()
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Performance observatory — {esc(report.ledger_path)}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem;
       color: #1a1a1a; }}
h1 {{ font-size: 1.3rem; }} h2 {{ font-size: 1.05rem; margin-top: 2rem; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #ccc; padding: 0.3rem 0.6rem;
          text-align: left; }}
th {{ background: #f2f2f2; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
td.spark {{ font-family: monospace; letter-spacing: 1px; }}
p.meta {{ color: #555; }}
</style>
</head>
<body>
<h1>Performance observatory</h1>
<p class="meta">ledger {esc(report.ledger_path)} —
{report.entry_count} entries,
{report.duplicates_dropped} byte-identical duplicates collapsed.</p>
<h2>Wall-clock series</h2>
<table>
<tr><th>series (kind/engine/effort)</th><th>n</th><th>trend</th>
<th>latest</th><th>vs median</th></tr>
{series_rows}
</table>
<h2>Slab occupancy</h2>
<table>
{occupancy_rows or '<tr><td>no occupancy gauges recorded</td></tr>'}
</table>
<h2>Scale tier (latest per benchmark)</h2>
<table>
<tr><th>benchmark</th><th>gates</th><th>seconds</th>
<th>imp R/S</th><th>maj R/S</th></tr>
{scale_rows or '<tr><td colspan="5">no scale entries</td></tr>'}
</table>
</body>
</html>
"""


def run_gates(
    ledger: Ledger,
    *,
    what: str = "all",
    names: Optional[Sequence[str]] = None,
    effort: int = 10,
    jobs: int = 1,
    window: int = 8,
    wall_slack: float = 2.0,
    tiers: Sequence[str] = GATE_TIERS,
    strict: bool = False,
) -> Tuple[List[GateOutcome], Dict[str, Any]]:
    """Run the requested gates; returns (outcomes, ledger entry)."""
    start = time.perf_counter()
    outcomes: List[GateOutcome] = []
    if what in ("table2", "all"):
        outcomes.append(
            gate_table2(
                ledger,
                effort=effort,
                jobs=jobs,
                window=window,
                wall_slack=wall_slack,
                tiers=tiers,
                strict=strict,
            )
        )
    if what in ("scale", "all"):
        outcomes.append(
            gate_scale(
                ledger,
                names,
                effort=effort,
                window=window,
                wall_slack=wall_slack,
                tiers=tiers,
                strict=strict,
            )
        )
    entry = gate_entry(
        outcomes, seconds=time.perf_counter() - start, effort=effort
    )
    return outcomes, entry
