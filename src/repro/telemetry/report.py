"""Rendering: the unified ``--profile`` formatter and ``trace-report``.

Historically each CLI subcommand grew its own profile dump (`synth`
printed a fixed key list, `table2` sorted a merged dict, `fuzz` printed
seconds per stage with yet another alignment).  :func:`render_profile`
replaces all of them: canonical catalog names, sorted, stable widths,
so goldens diff cleanly across subcommands.

:func:`render_trace_report` turns a ``--trace`` JSONL file into the
human summary the ``trace-report`` subcommand prints: per-pass
time breakdown, the R/S trajectory timeline per rule, and the top-N
slowest spans.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .ledger import ACCEPTED_BENCH_SCHEMA_VERSIONS
from .schema import (
    canonical_profile,
    deterministic_metric,
    validate_metric_names,
    validate_record,
)


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_profile(
    profile: Optional[Mapping[str, Any]],
    *,
    title: str,
    canonicalize: bool = True,
) -> str:
    """The one profile format: header plus sorted ``name : value`` rows.

    ``canonicalize`` maps legacy per-run keys (``full_recomputes``)
    onto catalog names (``costview.full_recomputes``); pass ``False``
    when the caller already speaks canonical names.
    """
    if not profile:
        return f"profile      : (no {title} recorded)"
    flat = canonical_profile(profile) if canonicalize else dict(profile)
    width = max(len(name) for name in flat)
    lines = [f"profile      : {title}"]
    for name in sorted(flat):
        lines.append(f"  {name:<{width}s} : {_format_value(flat[name])}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace loading / validation
# ----------------------------------------------------------------------


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file; raises ``ValueError`` on bad JSON."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}")
    return records


def validate_trace(records: Iterable[Any]) -> List[str]:
    """Validate every record; returns ``line N: ...`` error strings.

    ``metrics`` records additionally have every snapshot key checked
    against the catalog in :mod:`repro.telemetry.schema` — an unknown
    metric name is a schema violation, so instrumentation drift fails
    ``trace-report --validate`` (and CI) instead of passing silently.
    """
    errors = []
    for index, record in enumerate(records, start=1):
        record_errors = validate_record(record)
        if (
            not record_errors
            and isinstance(record, dict)
            and record.get("type") == "metrics"
        ):
            record_errors = validate_metric_names(record["metrics"])
        for error in record_errors:
            errors.append(f"record {index}: {error}")
    return errors


# ----------------------------------------------------------------------
# Bench-ledger validation (BENCH_runtime.json)
# ----------------------------------------------------------------------

#: Keys every bench-ledger entry must carry, whatever its kind — the
#: normalized schema ``repro.flows.bench`` stamps via ``_entry_common``
#: (``effort`` may be None for flows without the knob, but the key must
#: exist so entries stay diffable/comparable across kinds).
BENCH_ENTRY_REQUIRED_KEYS = ("kind", "seconds", "effort", "graph_engine")


def load_bench_ledger(path: str) -> Optional[Dict[str, Any]]:
    """Parse ``path`` as a bench ledger, or None when it isn't one.

    A ledger is a single JSON object with an ``entries`` list (the
    ``BENCH_runtime.json`` shape) — distinct from a JSONL trace, whose
    first line is a complete JSON record.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(data, dict) and isinstance(data.get("entries"), list):
        return data
    return None


def validate_bench_ledger(data: Mapping[str, Any]) -> List[str]:
    """Flag ledger entries missing the normalized key set."""
    errors: List[str] = []
    entries = data.get("entries")
    if not isinstance(entries, list):
        return ["'entries' is missing or not a list"]
    for index, entry in enumerate(entries, start=1):
        if not isinstance(entry, dict):
            errors.append(f"entry {index}: not an object")
            continue
        missing = [
            key for key in BENCH_ENTRY_REQUIRED_KEYS if key not in entry
        ]
        kind = entry.get("kind", "?")
        if missing:
            errors.append(
                f"entry {index} (kind={kind}): missing required "
                f"key(s) {', '.join(missing)}"
            )
        # Entries written before the marker existed are implicitly
        # version 1; both accepted versions validate identically today.
        version = entry.get("schema_version", 1)
        if version not in ACCEPTED_BENCH_SCHEMA_VERSIONS:
            errors.append(
                f"entry {index} (kind={kind}): unsupported "
                f"schema_version {version!r} (accepted: "
                f"{', '.join(str(v) for v in ACCEPTED_BENCH_SCHEMA_VERSIONS)})"
            )
    return errors


# ----------------------------------------------------------------------
# trace-report rendering
# ----------------------------------------------------------------------


def summarize_spans(
    records: Iterable[Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Aggregate span records by name → calls/total/max duration."""
    by_name: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        entry = by_name.setdefault(
            record["name"], {"calls": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["calls"] += 1
        entry["total_s"] += record["dur_s"]
        entry["max_s"] = max(entry["max_s"], record["dur_s"])
    return by_name


def summarize_trajectory(
    records: Iterable[Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Aggregate trajectory records by rule → tried/accepted plus the
    R/S values after the rule's last accepted snapshot."""
    by_rule: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "trajectory":
            continue
        entry = by_rule.setdefault(
            record["rule"],
            {"tried": 0, "accepted": 0, "last_r": None, "last_s": None},
        )
        entry["tried"] += 1
        if record["accepted"]:
            entry["accepted"] += 1
            entry["last_r"] = record["r"]
            entry["last_s"] = record["s"]
    return by_rule


def render_trace_report(
    records: List[Dict[str, Any]], *, top: int = 5
) -> str:
    """Human summary of one trace: counts, per-pass time, trajectory
    timeline per rule, top-N slowest spans."""
    spans = [r for r in records if r.get("type") == "span"]
    trajectory = [r for r in records if r.get("type") == "trajectory"]
    metrics = [r for r in records if r.get("type") == "metrics"]
    meta = next((r for r in records if r.get("type") == "meta"), None)

    lines: List[str] = []
    if meta is not None:
        lines.append(f"command      : {meta.get('command', '?')}")
    lines.append(
        f"records      : {len(records)} "
        f"(spans {len(spans)}, trajectory {len(trajectory)}, "
        f"metrics {len(metrics)})"
    )

    if spans:
        by_name = summarize_spans(spans)
        width = max(len(name) for name in by_name)
        lines.append("")
        lines.append("per-pass time:")
        lines.append(
            f"  {'span':<{width}s}  {'calls':>6s}  {'total_s':>9s}  "
            f"{'mean_s':>9s}  {'max_s':>9s}"
        )
        for name in sorted(
            by_name, key=lambda n: (-by_name[n]["total_s"], n)
        ):
            entry = by_name[name]
            mean = entry["total_s"] / entry["calls"]
            lines.append(
                f"  {name:<{width}s}  {entry['calls']:>6d}  "
                f"{entry['total_s']:>9.4f}  {mean:>9.4f}  "
                f"{entry['max_s']:>9.4f}"
            )

    if trajectory:
        realization = trajectory[-1].get("realization", "?")
        accepted = sum(1 for r in trajectory if r["accepted"])
        lines.append("")
        lines.append(
            f"trajectory   : {len(trajectory)} snapshots, "
            f"{accepted} accepted (realization={realization})"
        )
        by_rule = summarize_trajectory(trajectory)
        width = max(len(rule) for rule in by_rule)
        lines.append(
            f"  {'rule':<{width}s}  {'tried':>6s}  {'accepted':>8s}  "
            f"{'R_after':>8s}  {'S_after':>8s}"
        )
        for rule in sorted(by_rule):
            entry = by_rule[rule]
            r_after = "-" if entry["last_r"] is None else str(entry["last_r"])
            s_after = "-" if entry["last_s"] is None else str(entry["last_s"])
            lines.append(
                f"  {rule:<{width}s}  {entry['tried']:>6d}  "
                f"{entry['accepted']:>8d}  {r_after:>8s}  {s_after:>8s}"
            )
        first, last = trajectory[0], trajectory[-1]
        lines.append(
            f"  R {first['r']} -> {last['r']}, "
            f"S {first['s']} -> {last['s']}, "
            f"depth {first['depth']} -> {last['depth']}, "
            f"size {first['size']} -> {last['size']}"
        )

    if spans and top > 0:
        slowest: List[Tuple[float, Dict[str, Any]]] = sorted(
            ((record["dur_s"], record) for record in spans),
            key=lambda pair: (-pair[0], pair[1]["span_id"]),
        )[:top]
        lines.append("")
        lines.append(f"top {len(slowest)} slowest spans:")
        for rank, (dur, record) in enumerate(slowest, start=1):
            lines.append(
                f"  {rank}. {record['name']} "
                f"(span {record['span_id']}) "
                f"start={record['start_s']:.4f}s dur={dur:.4f}s"
            )

    if metrics:
        lines.append("")
        lines.append(
            render_profile(
                metrics[-1].get("metrics", {}),
                title="final metrics snapshot",
                canonicalize=False,
            )
        )

    return "\n".join(lines)


# ----------------------------------------------------------------------
# Differential trace comparison (trace-report --compare)
# ----------------------------------------------------------------------

#: Trajectory fields that must agree trial-for-trial between two runs
#: of the same deterministic flow (timings are deliberately absent).
_TRAJECTORY_KEYS = (
    "iteration",
    "rule",
    "accepted",
    "r",
    "s",
    "depth",
    "size",
    "complemented_edges",
    "realization",
)


def _final_metrics(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    snapshot: Dict[str, Any] = {}
    for record in records:
        if record.get("type") == "metrics":
            snapshot = dict(record.get("metrics", {}) or {})
    return snapshot


def compare_traces(
    a_records: List[Dict[str, Any]], b_records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Structured differential of two traces.

    Returns a dict with three sections:

    * ``spans`` — per-name (calls, total_s) for both sides plus the
      delta, sorted by absolute time delta (span *timings* always
      differ between runs; they are reported, never failed on);
    * ``metrics`` — final-snapshot deltas split into ``deterministic``
      (machine-independent counters: any delta is divergence) and
      ``timing`` (wall-clock-valued: informational);
    * ``trajectory`` — the first trial where the two runs' R/S paths
      diverge (or None), plus a count mismatch if one run recorded
      more trials.

    ``diverged`` is True iff a deterministic counter or the trajectory
    differs — the machine-independent definition of "these two runs did
    not do the same work".
    """
    a_spans = summarize_spans(a_records)
    b_spans = summarize_spans(b_records)
    span_rows = []
    for name in sorted(set(a_spans) | set(b_spans)):
        a_entry = a_spans.get(name, {"calls": 0, "total_s": 0.0})
        b_entry = b_spans.get(name, {"calls": 0, "total_s": 0.0})
        span_rows.append(
            {
                "name": name,
                "a_calls": a_entry["calls"],
                "b_calls": b_entry["calls"],
                "a_total_s": a_entry["total_s"],
                "b_total_s": b_entry["total_s"],
                "delta_s": b_entry["total_s"] - a_entry["total_s"],
            }
        )
    span_rows.sort(key=lambda row: (-abs(row["delta_s"]), row["name"]))

    a_metrics = _final_metrics(a_records)
    b_metrics = _final_metrics(b_records)
    deterministic_deltas = []
    timing_deltas = []
    for name in sorted(set(a_metrics) | set(b_metrics)):
        a_value = a_metrics.get(name)
        b_value = b_metrics.get(name)
        if a_value == b_value:
            continue
        row = {"name": name, "a": a_value, "b": b_value}
        if deterministic_metric(name):
            deterministic_deltas.append(row)
        else:
            timing_deltas.append(row)

    a_trajectory = [r for r in a_records if r.get("type") == "trajectory"]
    b_trajectory = [r for r in b_records if r.get("type") == "trajectory"]
    first_divergence = None
    for index, (a_rec, b_rec) in enumerate(
        zip(a_trajectory, b_trajectory)
    ):
        if any(
            a_rec.get(key) != b_rec.get(key) for key in _TRAJECTORY_KEYS
        ):
            first_divergence = {
                "trial": index,
                "a": {key: a_rec.get(key) for key in _TRAJECTORY_KEYS},
                "b": {key: b_rec.get(key) for key in _TRAJECTORY_KEYS},
            }
            break
    trajectory = {
        "a_trials": len(a_trajectory),
        "b_trials": len(b_trajectory),
        "first_divergence": first_divergence,
    }
    diverged = bool(
        deterministic_deltas
        or first_divergence is not None
        or len(a_trajectory) != len(b_trajectory)
    )
    return {
        "spans": span_rows,
        "metrics": {
            "deterministic": deterministic_deltas,
            "timing": timing_deltas,
        },
        "trajectory": trajectory,
        "diverged": diverged,
    }


def render_trace_compare(
    comparison: Mapping[str, Any],
    *,
    a_label: str,
    b_label: str,
    top: int = 10,
) -> str:
    """Human rendering of :func:`compare_traces`."""
    lines = [f"compare      : A={a_label}  B={b_label}"]

    span_rows = comparison["spans"]
    if span_rows:
        shown = span_rows[: max(0, top)] if top else span_rows
        width = max(len(row["name"]) for row in shown)
        lines.append("")
        lines.append(
            f"span-tree differential (top {len(shown)} by |time delta|):"
        )
        lines.append(
            f"  {'span':<{width}s}  {'A calls':>7s}  {'B calls':>7s}  "
            f"{'A total_s':>9s}  {'B total_s':>9s}  {'delta_s':>8s}"
        )
        for row in shown:
            lines.append(
                f"  {row['name']:<{width}s}  {row['a_calls']:>7d}  "
                f"{row['b_calls']:>7d}  {row['a_total_s']:>9.4f}  "
                f"{row['b_total_s']:>9.4f}  {row['delta_s']:>+8.4f}"
            )

    metric_deltas = comparison["metrics"]
    lines.append("")
    if metric_deltas["deterministic"]:
        lines.append("deterministic counter divergence:")
        for row in metric_deltas["deterministic"]:
            lines.append(f"  {row['name']}: A={row['a']}  B={row['b']}")
    else:
        lines.append("deterministic counters: identical")
    if metric_deltas["timing"]:
        lines.append("timing metric deltas (informational):")
        for row in metric_deltas["timing"]:
            lines.append(f"  {row['name']}: A={row['a']}  B={row['b']}")

    trajectory = comparison["trajectory"]
    lines.append("")
    if trajectory["a_trials"] == 0 and trajectory["b_trials"] == 0:
        lines.append("trajectory   : no trajectory records in either trace")
    elif trajectory["first_divergence"] is not None:
        divergence = trajectory["first_divergence"]
        a_rec, b_rec = divergence["a"], divergence["b"]
        lines.append(
            f"trajectory   : diverges at trial {divergence['trial']}"
        )
        for label, rec in (("A", a_rec), ("B", b_rec)):
            lines.append(
                f"  {label}: rule={rec['rule']} accepted={rec['accepted']} "
                f"R={rec['r']} S={rec['s']} depth={rec['depth']} "
                f"size={rec['size']}"
            )
    elif trajectory["a_trials"] != trajectory["b_trials"]:
        lines.append(
            f"trajectory   : common prefix identical, but A recorded "
            f"{trajectory['a_trials']} trials vs B "
            f"{trajectory['b_trials']}"
        )
    else:
        lines.append(
            f"trajectory   : identical ({trajectory['a_trials']} trials)"
        )

    lines.append("")
    lines.append(
        "verdict      : "
        + ("DIVERGED" if comparison["diverged"] else "IDENTICAL")
    )
    return "\n".join(lines)
