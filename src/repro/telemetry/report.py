"""Rendering: the unified ``--profile`` formatter and ``trace-report``.

Historically each CLI subcommand grew its own profile dump (`synth`
printed a fixed key list, `table2` sorted a merged dict, `fuzz` printed
seconds per stage with yet another alignment).  :func:`render_profile`
replaces all of them: canonical catalog names, sorted, stable widths,
so goldens diff cleanly across subcommands.

:func:`render_trace_report` turns a ``--trace`` JSONL file into the
human summary the ``trace-report`` subcommand prints: per-pass
time breakdown, the R/S trajectory timeline per rule, and the top-N
slowest spans.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .schema import canonical_profile, validate_metric_names, validate_record


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_profile(
    profile: Optional[Mapping[str, Any]],
    *,
    title: str,
    canonicalize: bool = True,
) -> str:
    """The one profile format: header plus sorted ``name : value`` rows.

    ``canonicalize`` maps legacy per-run keys (``full_recomputes``)
    onto catalog names (``costview.full_recomputes``); pass ``False``
    when the caller already speaks canonical names.
    """
    if not profile:
        return f"profile      : (no {title} recorded)"
    flat = canonical_profile(profile) if canonicalize else dict(profile)
    width = max(len(name) for name in flat)
    lines = [f"profile      : {title}"]
    for name in sorted(flat):
        lines.append(f"  {name:<{width}s} : {_format_value(flat[name])}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace loading / validation
# ----------------------------------------------------------------------


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file; raises ``ValueError`` on bad JSON."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}")
    return records


def validate_trace(records: Iterable[Any]) -> List[str]:
    """Validate every record; returns ``line N: ...`` error strings.

    ``metrics`` records additionally have every snapshot key checked
    against the catalog in :mod:`repro.telemetry.schema` — an unknown
    metric name is a schema violation, so instrumentation drift fails
    ``trace-report --validate`` (and CI) instead of passing silently.
    """
    errors = []
    for index, record in enumerate(records, start=1):
        record_errors = validate_record(record)
        if (
            not record_errors
            and isinstance(record, dict)
            and record.get("type") == "metrics"
        ):
            record_errors = validate_metric_names(record["metrics"])
        for error in record_errors:
            errors.append(f"record {index}: {error}")
    return errors


# ----------------------------------------------------------------------
# Bench-ledger validation (BENCH_runtime.json)
# ----------------------------------------------------------------------

#: Keys every bench-ledger entry must carry, whatever its kind — the
#: normalized schema ``repro.flows.bench`` stamps via ``_entry_common``
#: (``effort`` may be None for flows without the knob, but the key must
#: exist so entries stay diffable/comparable across kinds).
BENCH_ENTRY_REQUIRED_KEYS = ("kind", "seconds", "effort", "graph_engine")


def load_bench_ledger(path: str) -> Optional[Dict[str, Any]]:
    """Parse ``path`` as a bench ledger, or None when it isn't one.

    A ledger is a single JSON object with an ``entries`` list (the
    ``BENCH_runtime.json`` shape) — distinct from a JSONL trace, whose
    first line is a complete JSON record.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(data, dict) and isinstance(data.get("entries"), list):
        return data
    return None


def validate_bench_ledger(data: Mapping[str, Any]) -> List[str]:
    """Flag ledger entries missing the normalized key set."""
    errors: List[str] = []
    entries = data.get("entries")
    if not isinstance(entries, list):
        return ["'entries' is missing or not a list"]
    for index, entry in enumerate(entries, start=1):
        if not isinstance(entry, dict):
            errors.append(f"entry {index}: not an object")
            continue
        missing = [
            key for key in BENCH_ENTRY_REQUIRED_KEYS if key not in entry
        ]
        if missing:
            kind = entry.get("kind", "?")
            errors.append(
                f"entry {index} (kind={kind}): missing required "
                f"key(s) {', '.join(missing)}"
            )
    return errors


# ----------------------------------------------------------------------
# trace-report rendering
# ----------------------------------------------------------------------


def summarize_spans(
    records: Iterable[Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Aggregate span records by name → calls/total/max duration."""
    by_name: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        entry = by_name.setdefault(
            record["name"], {"calls": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["calls"] += 1
        entry["total_s"] += record["dur_s"]
        entry["max_s"] = max(entry["max_s"], record["dur_s"])
    return by_name


def summarize_trajectory(
    records: Iterable[Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Aggregate trajectory records by rule → tried/accepted plus the
    R/S values after the rule's last accepted snapshot."""
    by_rule: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "trajectory":
            continue
        entry = by_rule.setdefault(
            record["rule"],
            {"tried": 0, "accepted": 0, "last_r": None, "last_s": None},
        )
        entry["tried"] += 1
        if record["accepted"]:
            entry["accepted"] += 1
            entry["last_r"] = record["r"]
            entry["last_s"] = record["s"]
    return by_rule


def render_trace_report(
    records: List[Dict[str, Any]], *, top: int = 5
) -> str:
    """Human summary of one trace: counts, per-pass time, trajectory
    timeline per rule, top-N slowest spans."""
    spans = [r for r in records if r.get("type") == "span"]
    trajectory = [r for r in records if r.get("type") == "trajectory"]
    metrics = [r for r in records if r.get("type") == "metrics"]
    meta = next((r for r in records if r.get("type") == "meta"), None)

    lines: List[str] = []
    if meta is not None:
        lines.append(f"command      : {meta.get('command', '?')}")
    lines.append(
        f"records      : {len(records)} "
        f"(spans {len(spans)}, trajectory {len(trajectory)}, "
        f"metrics {len(metrics)})"
    )

    if spans:
        by_name = summarize_spans(spans)
        width = max(len(name) for name in by_name)
        lines.append("")
        lines.append("per-pass time:")
        lines.append(
            f"  {'span':<{width}s}  {'calls':>6s}  {'total_s':>9s}  "
            f"{'mean_s':>9s}  {'max_s':>9s}"
        )
        for name in sorted(
            by_name, key=lambda n: (-by_name[n]["total_s"], n)
        ):
            entry = by_name[name]
            mean = entry["total_s"] / entry["calls"]
            lines.append(
                f"  {name:<{width}s}  {entry['calls']:>6d}  "
                f"{entry['total_s']:>9.4f}  {mean:>9.4f}  "
                f"{entry['max_s']:>9.4f}"
            )

    if trajectory:
        realization = trajectory[-1].get("realization", "?")
        accepted = sum(1 for r in trajectory if r["accepted"])
        lines.append("")
        lines.append(
            f"trajectory   : {len(trajectory)} snapshots, "
            f"{accepted} accepted (realization={realization})"
        )
        by_rule = summarize_trajectory(trajectory)
        width = max(len(rule) for rule in by_rule)
        lines.append(
            f"  {'rule':<{width}s}  {'tried':>6s}  {'accepted':>8s}  "
            f"{'R_after':>8s}  {'S_after':>8s}"
        )
        for rule in sorted(by_rule):
            entry = by_rule[rule]
            r_after = "-" if entry["last_r"] is None else str(entry["last_r"])
            s_after = "-" if entry["last_s"] is None else str(entry["last_s"])
            lines.append(
                f"  {rule:<{width}s}  {entry['tried']:>6d}  "
                f"{entry['accepted']:>8d}  {r_after:>8s}  {s_after:>8s}"
            )
        first, last = trajectory[0], trajectory[-1]
        lines.append(
            f"  R {first['r']} -> {last['r']}, "
            f"S {first['s']} -> {last['s']}, "
            f"depth {first['depth']} -> {last['depth']}, "
            f"size {first['size']} -> {last['size']}"
        )

    if spans and top > 0:
        slowest: List[Tuple[float, Dict[str, Any]]] = sorted(
            ((record["dur_s"], record) for record in spans),
            key=lambda pair: (-pair[0], pair[1]["span_id"]),
        )[:top]
        lines.append("")
        lines.append(f"top {len(slowest)} slowest spans:")
        for rank, (dur, record) in enumerate(slowest, start=1):
            lines.append(
                f"  {rank}. {record['name']} "
                f"(span {record['span_id']}) "
                f"start={record['start_s']:.4f}s dur={dur:.4f}s"
            )

    if metrics:
        lines.append("")
        lines.append(
            render_profile(
                metrics[-1].get("metrics", {}),
                title="final metrics snapshot",
                canonicalize=False,
            )
        )

    return "\n".join(lines)
