"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

A from-scratch BDD package used as the substrate for the BDD-based
RRAM-synthesis baseline [11] the paper compares against.  Classic
design: hash-consed ``(var, lo, hi)`` nodes over the two terminals,
an ITE core with memoization, and Boolean operators layered on ITE.

Nodes are integers: 0 is the FALSE terminal, 1 is the TRUE terminal,
gate nodes are ≥ 2.  Variables are indexed by *level*: level 0 is
tested first (root side).  The manager holds a node limit so runaway
functions fail loudly instead of consuming the machine.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

FALSE = 0
TRUE = 1


class BddOverflowError(RuntimeError):
    """Raised when the node table exceeds the configured limit."""


class Bdd:
    """An ROBDD manager over a fixed number of variables."""

    def __init__(self, num_vars: int, node_limit: int = 1_000_000) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.node_limit = node_limit
        # Parallel arrays: index -> (level, lo, hi); terminals use var
        # index num_vars so terminals sort below every variable.
        self._level: List[int] = [num_vars, num_vars]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------

    @property
    def num_nodes_allocated(self) -> int:
        """Total nodes ever created, including terminals."""
        return len(self._level)

    def level_of(self, node: int) -> int:
        """The variable level a node tests (``num_vars`` for terminals)."""
        return self._level[node]

    def lo(self, node: int) -> int:
        """The else-cofactor (variable = 0) child."""
        return self._lo[node]

    def hi(self, node: int) -> int:
        """The then-cofactor (variable = 1) child."""
        return self._hi[node]

    def is_terminal(self, node: int) -> bool:
        """True for the FALSE/TRUE terminals."""
        return node <= 1

    def mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)`` (reduced)."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._level) >= self.node_limit:
            raise BddOverflowError(
                f"BDD node limit {self.node_limit} exceeded"
            )
        node = len(self._level)
        self._level.append(level)
        self._lo.append(lo)
        self._hi.append(hi)
        self._unique[key] = node
        return node

    def var(self, level: int) -> int:
        """The projection function of the variable at ``level``."""
        if not 0 <= level < self.num_vars:
            raise ValueError(f"variable level {level} out of range")
        return self.mk(level, FALSE, TRUE)

    # ------------------------------------------------------------------
    # ITE core
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """``f ? g : h`` — the universal ternary operator."""
        # Terminal shortcuts.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        lo = self.ite(f0, g0, h0)
        hi = self.ite(f1, g1, h1)
        result = self.mk(level, lo, hi)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # Boolean operators
    # ------------------------------------------------------------------

    def apply_not(self, f: int) -> int:
        """Negation."""
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    def apply_maj(self, f: int, g: int, h: int) -> int:
        """Ternary majority."""
        return self.apply_or(
            self.apply_and(f, g),
            self.apply_or(self.apply_and(f, h), self.apply_and(g, h)),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def reachable(self, roots: Sequence[int]) -> Set[int]:
        """All non-terminal nodes reachable from ``roots``."""
        seen: Set[int] = set()
        stack = [r for r in roots if r > 1]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for child in (self._lo[node], self._hi[node]):
                if child > 1 and child not in seen:
                    stack.append(child)
        return seen

    def count_nodes(self, roots: Sequence[int]) -> int:
        """Number of internal nodes shared among ``roots``."""
        return len(self.reachable(roots))

    def nodes_per_level(self, roots: Sequence[int]) -> List[int]:
        """Histogram of reachable nodes by variable level."""
        histogram = [0] * self.num_vars
        for node in self.reachable(roots):
            histogram[self._level[node]] += 1
        return histogram

    def evaluate(self, root: int, assignment: Sequence[bool]) -> bool:
        """Evaluate the function for one input assignment.

        ``assignment[level]`` is the value of the variable at ``level``.
        """
        node = root
        while node > 1:
            if assignment[self._level[node]]:
                node = self._hi[node]
            else:
                node = self._lo[node]
        return node == TRUE

    def satisfy_count(self, root: int) -> int:
        """Number of satisfying assignments over all variables."""
        cache: Dict[int, int] = {}

        def count(node: int) -> int:
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << self.num_vars
            if node in cache:
                return cache[node]
            # Counting over all `num_vars` variables, the cofactors are
            # independent of this node's variable, so each contributes
            # exactly half of its own (even) count.
            result = (count(self._lo[node]) + count(self._hi[node])) >> 1
            cache[node] = result
            return result

        return count(root)

    def support(self, root: int) -> Tuple[int, ...]:
        """Variable levels the function depends on."""
        return tuple(
            sorted({self._level[node] for node in self.reachable([root])})
        )
