"""ROBDD package and the BDD-based RRAM synthesis baseline [11]."""

from .bdd import FALSE, TRUE, Bdd, BddOverflowError
from .build import build_bdd_from_netlist, build_best_order, dfs_variable_order
from .sifting import sift_bdd
from .synthesis import (
    DEFAULT_PORT_LIMIT,
    BddRealizationCosts,
    bdd_rram_costs,
    compile_bdd,
)

__all__ = [
    "FALSE",
    "TRUE",
    "Bdd",
    "BddOverflowError",
    "build_bdd_from_netlist",
    "build_best_order",
    "dfs_variable_order",
    "sift_bdd",
    "DEFAULT_PORT_LIMIT",
    "BddRealizationCosts",
    "bdd_rram_costs",
    "compile_bdd",
]
