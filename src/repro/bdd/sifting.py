"""Dynamic variable reordering by sifting (Rudell, ICCAD'93).

Operates on a mutable level-table representation converted from a
:class:`~repro.bdd.Bdd`: nodes live in per-level unique tables, ids are
stable, and merged nodes are handled through a forwarding map with path
compression.  The classic adjacent-swap is the primitive: swapping the
variables at positions ``i``/``i+1`` only rewrites nodes at those two
positions, so sifting one variable across all positions costs a series
of local operations rather than global rebuilds.

Use :func:`sift_bdd` to reorder a built BDD; it returns a fresh manager,
re-rooted functions, and the final variable order (as a permutation of
the original level indices).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .bdd import Bdd, FALSE, TRUE


class _LevelTable:
    """Mutable BDD with per-level unique tables and id forwarding."""

    def __init__(self, manager: Bdd, roots: Sequence[int]) -> None:
        self.num_vars = manager.num_vars
        # node id -> [level, lo, hi]; terminals keep ids 0/1.
        self.level: Dict[int, int] = {0: self.num_vars, 1: self.num_vars}
        self.lo: Dict[int, int] = {0: 0, 1: 1}
        self.hi: Dict[int, int] = {0: 0, 1: 1}
        self.forward: Dict[int, int] = {}
        self.unique: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(self.num_vars)
        ]
        self.roots: List[int] = []
        # `position_of[original_level] = current position`, and its
        # inverse tells callers which original variable sits where.
        self.variable_at: List[int] = list(range(self.num_vars))

        for node in sorted(manager.reachable(roots)):
            level = manager.level_of(node)
            self.level[node] = level
            self.lo[node] = manager.lo(node)
            self.hi[node] = manager.hi(node)
            self.unique[level][(manager.lo(node), manager.hi(node))] = node
        self._next_id = manager.num_nodes_allocated
        self.roots = list(roots)

    # ------------------------------------------------------------------

    def find(self, node: int) -> int:
        """Resolve forwarding with path compression."""
        seen = []
        while node in self.forward:
            seen.append(node)
            node = self.forward[node]
        for item in seen:
            self.forward[item] = node
        return node

    def _fresh(self, level: int, lo: int, hi: int) -> int:
        node = self._next_id
        self._next_id += 1
        self.level[node] = level
        self.lo[node] = lo
        self.hi[node] = hi
        self.unique[level][(lo, hi)] = node
        return node

    def mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create with reduction at ``level``."""
        lo = self.find(lo)
        hi = self.find(hi)
        if lo == hi:
            return lo
        found = self.unique[level].get((lo, hi))
        if found is not None:
            return found
        return self._fresh(level, lo, hi)

    def size(self) -> int:
        """Live node count from the roots."""
        seen = set()
        stack = [self.find(r) for r in self.roots]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self.find(self.lo[node]))
            stack.append(self.find(self.hi[node]))
        return len(seen)

    # ------------------------------------------------------------------

    def swap(self, position: int) -> None:
        """Exchange the variables at ``position`` and ``position + 1``.

        Only nodes at these two positions are touched; references from
        above stay valid because affected nodes mutate in place (their
        id is preserved) and vacated nodes are forwarded.
        """
        upper = position
        lower = position + 1
        upper_nodes = list(self.unique[upper].values())
        # Collect live references into the lower level from *above* the
        # pair (and the roots) before mutating, so surviving B-nodes can
        # be relocated afterwards.
        self.unique[upper] = {}

        rebuilt: List[Tuple[int, int, int, int, int]] = []
        movers: List[int] = []
        for node in upper_nodes:
            node = self.find(node)
            if self.level.get(node) != upper:
                continue
            lo = self.find(self.lo[node])
            hi = self.find(self.hi[node])
            lo_tests_lower = self.level.get(lo) == lower
            hi_tests_lower = self.level.get(hi) == lower
            if not lo_tests_lower and not hi_tests_lower:
                # Node is independent of the lower variable: it simply
                # moves down one position (it still tests A).
                movers.append(node)
                continue
            l0, l1 = (
                (self.find(self.lo[lo]), self.find(self.hi[lo]))
                if lo_tests_lower
                else (lo, lo)
            )
            h0, h1 = (
                (self.find(self.lo[hi]), self.find(self.hi[hi]))
                if hi_tests_lower
                else (hi, hi)
            )
            rebuilt.append((node, l0, h0, l1, h1))

        # Surviving lower-level (B) nodes move up to `upper`.  A node
        # survives if anything other than the rebuilt uppers still
        # references it; conservatively move all of them — unreferenced
        # ones simply become dead entries that `size()` ignores.
        lower_nodes = list(self.unique[lower].values())
        self.unique[lower] = {}
        for node in lower_nodes:
            node = self.find(node)
            if self.level.get(node) != lower:
                continue
            self._place(node, upper)

        for node in movers:
            self._place(node, lower)

        for node, l0, h0, l1, h1 in rebuilt:
            # After the swap the node tests B at `upper`; its children
            # test A at `lower`.
            new_lo = self.mk(lower, l0, h0)
            new_hi = self.mk(lower, l1, h1)
            if new_lo == new_hi:
                # The node reduces away entirely: forward it.
                self._vacate(node)
                self.forward[node] = new_lo
                continue
            existing = self.unique[upper].get((new_lo, new_hi))
            if existing is not None and existing != node:
                self._vacate(node)
                self.forward[node] = existing
                continue
            self.level[node] = upper
            self.lo[node] = new_lo
            self.hi[node] = new_hi
            self.unique[upper][(new_lo, new_hi)] = node

        self.variable_at[upper], self.variable_at[lower] = (
            self.variable_at[lower],
            self.variable_at[upper],
        )

    def _place(self, node: int, level: int) -> None:
        """Re-register ``node`` at ``level``, merging duplicates."""
        key = (self.find(self.lo[node]), self.find(self.hi[node]))
        existing = self.unique[level].get(key)
        if existing is not None and existing != node:
            self._vacate(node)
            self.forward[node] = existing
            return
        self.level[node] = level
        self.lo[node], self.hi[node] = key
        self.unique[level][key] = node

    def _vacate(self, node: int) -> None:
        self.level.pop(node, None)
        self.lo.pop(node, None)
        self.hi.pop(node, None)

    # ------------------------------------------------------------------

    def export(self) -> Tuple[Bdd, List[int], List[int]]:
        """Rebuild a fresh hash-consed :class:`Bdd` from the table."""
        manager = Bdd(self.num_vars, node_limit=max(1 << 20, 4 * self.size()))
        memo: Dict[int, int] = {0: FALSE, 1: TRUE}

        def convert(node: int) -> int:
            node = self.find(node)
            if node in memo:
                return memo[node]
            result = manager.mk(
                self.level[node],
                convert(self.lo[node]),
                convert(self.hi[node]),
            )
            memo[node] = result
            return result

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * self.num_vars * 64 + 10000))
        try:
            roots = [convert(root) for root in self.roots]
        finally:
            sys.setrecursionlimit(old_limit)
        return manager, roots, list(self.variable_at)


def sift_bdd(
    manager: Bdd,
    roots: Sequence[int],
    *,
    max_growth: float = 1.2,
    rounds: int = 1,
) -> Tuple[Bdd, List[int], List[int]]:
    """Sift every variable to its locally best position.

    Variables are processed in decreasing order of their level
    population; each is moved to every position via adjacent swaps,
    recording the best, with early abort when the table grows past
    ``max_growth`` times the best size seen.  Returns ``(manager,
    roots, variable_at)`` where ``variable_at[p]`` is the *original*
    level index now tested at position ``p``.
    """
    table = _LevelTable(manager, roots)
    num_vars = table.num_vars

    for _round in range(rounds):
        # Population census (live nodes only).
        population = [0] * num_vars
        seen = set()
        stack = [table.find(r) for r in table.roots]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            population[table.level[node]] += 1
            stack.append(table.find(table.lo[node]))
            stack.append(table.find(table.hi[node]))
        order = sorted(
            range(num_vars), key=lambda p: population[p], reverse=True
        )

        improved = False
        for start_variable in [table.variable_at[p] for p in order]:
            position = table.variable_at.index(start_variable)
            best_size = table.size()
            best_position = position
            size_limit = best_size * max_growth + 16

            # Sift down to the bottom...
            current = position
            while current < num_vars - 1:
                table.swap(current)
                current += 1
                size = table.size()
                if size < best_size:
                    best_size, best_position = size, current
                if size > size_limit:
                    break
            # ...then up to the top...
            while current > 0:
                table.swap(current - 1)
                current -= 1
                size = table.size()
                if size < best_size:
                    best_size, best_position = size, current
                if size > size_limit and current < best_position:
                    break
            # ...then settle at the best position seen.
            while current < best_position:
                table.swap(current)
                current += 1
            if best_position != position:
                improved = True
        if not improved:
            break

    return table.export()
