"""BDD-based RRAM synthesis baseline (reimplementation of [11]).

Chakraborti et al. map each BDD node to a 2:1 multiplexer evaluated
with material implication on RRAM devices.  Their tool is not
available, so this module implements a concrete, *executable* mapping
in the same spirit and derives its cost model from it (DESIGN.md §3):

* every BDD node ``v = (x ? h : l)`` is computed as
  ``v = (!x + h) AND (x + l)`` with IMP/FALSE micro-ops — six steps per
  node group: one load step and five implication steps;
* nodes of the same variable level are electrically independent and
  evaluate in parallel, but at most ``port_limit`` per group (voltage
  driver ports are shared — this is what makes BDD step counts grow
  with node count on wide functions, the effect the paper's comparison
  exposes);
* levels are processed terminal-side first; node values live in
  dedicated devices until their last parent is evaluated (device reuse
  via free list, as in the MIG compiler).

``bdd_rram_costs`` computes steps/devices analytically;
``compile_bdd`` emits the actual micro-program (identical step count by
construction, asserted in the test-suite) on the shared
:mod:`repro.rram` ISA so the baseline is functionally verifiable on the
same array simulator as the paper's approach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..rram.isa import Imp, LoadInput, MicroOp, Program, Step, WriteCopy, WriteLiteral
from .bdd import FALSE, TRUE, Bdd

DEFAULT_PORT_LIMIT = 16

# Steps per node group: load + [x IMP w1 / SN setup] + [SN IMP w2] +
# [w2 IMP t] + [w1 IMP t] + [t IMP out].
STEPS_PER_GROUP = 6
WORKING_DEVICES_PER_NODE = 4  # w1, w2, t, out(result register)


@dataclass(frozen=True)
class BddRealizationCosts:
    """Cost summary of the BDD-based RRAM realization."""

    rrams: int
    steps: int
    nodes: int
    levels_used: int
    port_limit: int

    def as_row(self) -> Tuple[int, int]:
        """``(R, S)`` in the layout of the paper's Table III."""
        return (self.rrams, self.steps)


def _levelize(
    manager: Bdd, roots: Sequence[int]
) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
    """Group reachable nodes by level; compute last-use levels.

    Returns ``(nodes_by_level, last_parent_level)`` where the last-use
    level of a node is the *smallest* level index among its parents
    (levels are processed from large indices down to 0).
    """
    reachable = manager.reachable(roots)
    by_level: Dict[int, List[int]] = {}
    for node in sorted(reachable):
        by_level.setdefault(manager.level_of(node), []).append(node)
    last_parent: Dict[int, int] = {}
    for node in reachable:
        level = manager.level_of(node)
        for child in (manager.lo(node), manager.hi(node)):
            if child > 1:
                previous = last_parent.get(child)
                if previous is None or level < previous:
                    last_parent[child] = level
    for root in roots:
        if root > 1:
            last_parent[root] = -1  # outputs live to the end
    return by_level, last_parent


def bdd_rram_costs(
    manager: Bdd,
    roots: Sequence[int],
    *,
    port_limit: int = DEFAULT_PORT_LIMIT,
) -> BddRealizationCosts:
    """Analytic step/device counts of the mapping (no program built)."""
    by_level, last_parent = _levelize(manager, roots)
    steps = 0
    # Devices: one register per input variable, the two constants, one
    # inverted-select device per used level (transient), plus working
    # and result devices tracked through lifetimes.
    live_results = 0
    peak = 0
    used_levels = sorted(by_level, reverse=True)
    for level in used_levels:
        nodes = by_level[level]
        groups = math.ceil(len(nodes) / port_limit)
        steps += STEPS_PER_GROUP * groups
        # During this level: alive = previous results + this level's
        # working devices (bounded by one group at a time) + SN.
        group_peak = min(len(nodes), port_limit) * WORKING_DEVICES_PER_NODE + 1
        peak = max(peak, live_results + group_peak)
        live_results += len(nodes)
        # Free values whose last parent is this level.
        for node, last in list(last_parent.items()):
            if last == level:
                live_results -= 1
                del last_parent[node]
        peak = max(peak, live_results)
    rrams = manager.num_vars + 2 + peak
    return BddRealizationCosts(
        rrams=rrams,
        steps=steps,
        nodes=sum(len(v) for v in by_level.values()),
        levels_used=len(used_levels),
        port_limit=port_limit,
    )


class _Allocator:
    def __init__(self) -> None:
        self._free: List[int] = []
        self._next = 0

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        index = self._next
        self._next += 1
        return index

    def release(self, index: int) -> None:
        self._free.append(index)

    @property
    def high_water(self) -> int:
        return self._next


def compile_bdd(
    manager: Bdd,
    roots: Sequence[int],
    level_to_input: Optional[Sequence[int]] = None,
    *,
    port_limit: int = DEFAULT_PORT_LIMIT,
    name: str = "bdd",
) -> Program:
    """Emit the executable micro-program for the BDD mapping.

    ``level_to_input[level]`` is the primary-input index feeding the
    variable at ``level`` (identity by default — supply the inverse of
    the variable order used at build time for reordered BDDs).
    """
    if level_to_input is None:
        level_to_input = list(range(manager.num_vars))
    by_level, last_parent = _levelize(manager, roots)

    allocator = _Allocator()
    steps: List[Step] = []

    var_device: Dict[int, int] = {}
    initial_ops: List[MicroOp] = []
    for level in range(manager.num_vars):
        device = allocator.allocate()
        var_device[level] = device
        initial_ops.append(LoadInput(device, level_to_input[level]))
    const_false = allocator.allocate()
    const_true = allocator.allocate()
    initial_ops.append(WriteLiteral(const_false, False))
    initial_ops.append(WriteLiteral(const_true, True))

    value_device: Dict[int, int] = {FALSE: const_false, TRUE: const_true}

    first_group = True
    for level in sorted(by_level, reverse=True):
        nodes = by_level[level]
        select = var_device[level]
        for start in range(0, len(nodes), port_limit):
            group = nodes[start : start + port_limit]
            sn = allocator.allocate()  # holds !select for this group
            blocks: List[Tuple[int, int, int, int, int]] = []
            load_ops: List[MicroOp] = [WriteLiteral(sn, False)]
            if first_group:
                load_ops = initial_ops + load_ops
                first_group = False
            for node in group:
                w1 = allocator.allocate()
                w2 = allocator.allocate()
                t = allocator.allocate()
                out = allocator.allocate()
                blocks.append((node, w1, w2, t, out))
                # Terminal children become literal writes: the constant
                # registers are only initialized within this very step,
                # and intra-step reads see pre-step state.
                for slot, child in ((w1, manager.hi(node)), (w2, manager.lo(node))):
                    if manager.is_terminal(child):
                        load_ops.append(WriteLiteral(slot, child == 1))
                    else:
                        load_ops.append(WriteCopy(slot, value_device[child]))
                load_ops.append(WriteLiteral(t, False))
                load_ops.append(WriteLiteral(out, False))
            steps.append(Step(load_ops, f"bdd-L{level}-load"))
            # Five implication steps, all nodes of the group in parallel.
            steps.append(
                Step(
                    [Imp(select, sn)]
                    + [Imp(select, w1) for _n, w1, _w2, _t, _o in blocks],
                    f"bdd-L{level}-imp1",
                )
            )
            steps.append(
                Step(
                    [Imp(sn, w2) for _n, _w1, w2, _t, _o in blocks],
                    f"bdd-L{level}-imp2",
                )
            )
            steps.append(
                Step(
                    [Imp(w2, t) for _n, _w1, w2, t, _o in blocks],
                    f"bdd-L{level}-imp3",
                )
            )
            steps.append(
                Step(
                    [Imp(w1, t) for _n, w1, _w2, t, _o in blocks],
                    f"bdd-L{level}-imp4",
                )
            )
            steps.append(
                Step(
                    [Imp(t, out) for _n, _w1, _w2, t, out in blocks],
                    f"bdd-L{level}-imp5",
                )
            )
            for node, w1, w2, t, out in blocks:
                value_device[node] = out
                allocator.release(w1)
                allocator.release(w2)
                allocator.release(t)
            allocator.release(sn)
        # Free child values whose last parent level is this one.
        for node, last in list(last_parent.items()):
            if last == level and node in value_device:
                allocator.release(value_device.pop(node))
                del last_parent[node]

    if first_group:
        # Degenerate diagram (constant outputs only): the constants
        # still need their loading step.
        steps.append(Step(initial_ops, "bdd-load"))

    output_devices = {}
    for index, root in enumerate(roots):
        output_devices[index] = value_device[root]

    program = Program(
        name=name,
        realization="bdd-imp",
        num_devices=allocator.high_water,
        steps=steps,
        num_inputs=manager.num_vars,
        output_devices=output_devices,
    )
    program.validate()
    return program
