"""Building BDDs from netlists, with variable-ordering heuristics.

The variable order dominates BDD size; the builder supports an explicit
order, the classic depth-first fanin traversal heuristic (good static
orders for the ISCAS-style circuits used here), and a best-of-N search
over seeded candidate orders — a pragmatic stand-in for dynamic sifting
(documented in DESIGN.md §3; the baseline paper [11] reports results
with static orders as well).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..network import GateType, Netlist
from .bdd import Bdd, BddOverflowError, FALSE, TRUE


def dfs_variable_order(netlist: Netlist) -> List[str]:
    """Depth-first fanin traversal order from the outputs.

    Inputs encountered first on deep paths are tested first — the
    classic static ordering heuristic of Malik et al.
    """
    order: List[str] = []
    seen = set()

    def visit(net: str) -> None:
        if net in seen:
            return
        seen.add(net)
        if net in netlist.inputs:
            order.append(net)
            return
        for operand in netlist.gate(net).operands:
            visit(operand)

    for output in netlist.outputs:
        visit(output)
    # Unreferenced inputs go last.
    for name in netlist.inputs:
        if name not in seen:
            order.append(name)
    return order


def build_bdd_from_netlist(
    netlist: Netlist,
    variable_order: Optional[Sequence[str]] = None,
    node_limit: int = 1_000_000,
) -> Tuple[Bdd, List[int]]:
    """Build one shared BDD for all outputs of a netlist.

    Returns the manager and the per-output root list (in netlist output
    order).  Raises :class:`BddOverflowError` past ``node_limit``.
    """
    netlist.validate()
    if variable_order is None:
        variable_order = dfs_variable_order(netlist)
    if sorted(variable_order) != sorted(netlist.inputs):
        raise ValueError("variable_order must be a permutation of the inputs")

    manager = Bdd(len(variable_order), node_limit=node_limit)
    values: Dict[str, int] = {
        name: manager.var(level) for level, name in enumerate(variable_order)
    }

    for gate in netlist.topological_order():
        operands = [values[op] for op in gate.operands]
        values[gate.name] = _lower_gate(manager, gate.gate_type, operands)

    roots = [values[name] for name in netlist.outputs]
    return manager, roots


def _lower_gate(manager: Bdd, gate_type: GateType, operands: List[int]) -> int:
    if gate_type is GateType.CONST0:
        return FALSE
    if gate_type is GateType.CONST1:
        return TRUE
    if gate_type is GateType.BUF:
        return operands[0]
    if gate_type is GateType.NOT:
        return manager.apply_not(operands[0])
    if gate_type in (GateType.AND, GateType.NAND):
        acc = TRUE
        for operand in operands:
            acc = manager.apply_and(acc, operand)
        return acc if gate_type is GateType.AND else manager.apply_not(acc)
    if gate_type in (GateType.OR, GateType.NOR):
        acc = FALSE
        for operand in operands:
            acc = manager.apply_or(acc, operand)
        return acc if gate_type is GateType.OR else manager.apply_not(acc)
    if gate_type in (GateType.XOR, GateType.XNOR):
        acc = FALSE
        for operand in operands:
            acc = manager.apply_xor(acc, operand)
        return acc if gate_type is GateType.XOR else manager.apply_not(acc)
    if gate_type is GateType.MAJ:
        return manager.apply_maj(*operands)
    if gate_type is GateType.MUX:
        sel, then, other = operands
        return manager.ite(sel, then, other)
    raise ValueError(f"cannot lower gate type {gate_type} to BDD")


def build_best_order(
    netlist: Netlist,
    *,
    candidates: int = 4,
    node_limit: int = 1_000_000,
    seed: int = 0xB0D,
) -> Tuple[Bdd, List[int], List[str]]:
    """Best-of-N static-order search.

    Tries the DFS heuristic order, the declaration order, their
    reversals, and ``candidates`` seeded shuffles; returns the manager,
    roots, and the winning order.  Orders that overflow the node limit
    are skipped (at least one order must fit).
    """
    rng = random.Random(seed)
    base = dfs_variable_order(netlist)
    orders: List[List[str]] = [
        base,
        list(reversed(base)),
        netlist.inputs,
        list(reversed(netlist.inputs)),
    ]
    for _ in range(candidates):
        shuffled = list(base)
        rng.shuffle(shuffled)
        orders.append(shuffled)

    best: Optional[Tuple[int, Bdd, List[int], List[str]]] = None
    last_error: Optional[BddOverflowError] = None
    for order in orders:
        try:
            manager, roots = build_bdd_from_netlist(
                netlist, order, node_limit=node_limit
            )
        except BddOverflowError as exc:
            last_error = exc
            continue
        size = manager.count_nodes(roots)
        if best is None or size < best[0]:
            best = (size, manager, roots, list(order))
    if best is None:
        assert last_error is not None
        raise last_error
    return best[1], best[2], best[3]
