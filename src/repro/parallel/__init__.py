"""Deterministic parallel execution layer.

A :class:`~concurrent.futures.ProcessPoolExecutor`-based scheduler
with ordered result aggregation, derived per-task seeds, summed
worker-side profiling counters, and graceful inline fallback at
``jobs=1``.  Flows built on it (Table II/III, the fuzz campaign,
packed verification) produce bit-identical results for any job count;
only the wall-clock changes.  See ``docs/PERFORMANCE.md`` for the
determinism contract.
"""

from .scheduler import (
    SEED_STRIDE,
    derive_seed,
    merge_counters,
    merged_counters,
    resolve_jobs,
    run_ordered,
    run_ordered_stream,
)

__all__ = [
    "SEED_STRIDE",
    "derive_seed",
    "merge_counters",
    "merged_counters",
    "resolve_jobs",
    "run_ordered",
    "run_ordered_stream",
]
