"""Deterministic multi-process task scheduler.

The contract every flow built on this layer inherits:

* **Ordered aggregation** — results come back in submission order, no
  matter which worker finished first, so downstream tables and reports
  are byte-identical for any job count.
* **Derived seeds** — randomized tasks get their seed from
  :func:`derive_seed`\\ ``(base, index)``, a pure function of the task
  index; scheduling order can never leak into a task's behaviour.
* **Inline fallback** — ``jobs <= 1`` (or a single task) runs in the
  calling process with zero pool overhead, byte-identical to the
  multi-process path.
* **Merged counters** — worker-side profiling dicts are summed by
  :func:`merge_counters` instead of being dropped with the worker.

Workers must be module-level functions (the ``ProcessPoolExecutor``
pickles them by reference); :mod:`repro.parallel.workers` hosts the
ones the built-in flows use.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, TypeVar

Payload = TypeVar("Payload")
Result = TypeVar("Result")

#: Per-task seed derivation multiplier — deliberately the same constant
#: as :meth:`repro.fuzz.harness.FuzzConfig.case_seed`, so the parallel
#: campaign replays the sequential campaign's cases bit-for-bit.
SEED_STRIDE = 1_000_003


def derive_seed(base: int, index: int) -> int:
    """Deterministic per-task seed: pure in ``(base, index)``."""
    return (base * SEED_STRIDE + index) & 0x7FFFFFFF


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def run_ordered(
    worker: Callable[[Payload], Result],
    payloads: Sequence[Payload],
    *,
    jobs: int = 1,
) -> List[Result]:
    """Run ``worker`` over every payload; results in payload order.

    ``jobs <= 1`` executes inline.  Above that a process pool fans the
    payloads out with ``chunksize=1`` (tasks here are coarse — whole
    benchmarks or fuzz cases — so latency balance beats batching) and
    ``Executor.map`` restores submission order on collection.
    """
    from ..telemetry import metrics

    if jobs <= 1 or len(payloads) <= 1:
        results = [worker(payload) for payload in payloads]
    else:
        workers = min(jobs, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(worker, payloads, chunksize=1))
    metrics().counter("parallel.tasks_completed").inc(len(results))
    return results


def run_ordered_stream(
    worker: Callable[[Payload], Result],
    payloads: Iterator[Payload],
    *,
    jobs: int = 1,
    wave_size: Optional[int] = None,
    should_continue: Optional[Callable[[], bool]] = None,
) -> Iterator[Result]:
    """Stream an unbounded payload iterator through the pool in waves.

    Pulls ``wave_size`` payloads (default ``2 * jobs``), runs the wave
    to completion, yields its results in order, then consults
    ``should_continue`` before pulling the next wave.  Time-budgeted
    campaigns use this: the budget decides how many *waves* run, never
    what any task does, so every completed task is replayable.
    """
    from ..telemetry import metrics

    completed = metrics().counter("parallel.tasks_completed")
    jobs = max(1, jobs)
    if wave_size is None:
        wave_size = max(1, 2 * jobs)
    if jobs == 1:
        wave_size = 1
    pool = ProcessPoolExecutor(max_workers=jobs) if jobs > 1 else None
    try:
        exhausted = False
        while not exhausted:
            wave: List[Payload] = []
            for payload in payloads:
                wave.append(payload)
                if len(wave) >= wave_size:
                    break
            else:
                exhausted = True
            if not wave:
                break
            if pool is None:
                for payload in wave:
                    result = worker(payload)
                    completed.inc()
                    yield result
            else:
                for result in pool.map(worker, wave, chunksize=1):
                    completed.inc()
                    yield result
            if should_continue is not None and not should_continue():
                break
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def merge_counters(
    target: Dict[str, float], source: Optional[Dict[str, float]]
) -> Dict[str, float]:
    """Sum a worker's numeric counters into ``target`` (in place)."""
    if source:
        for key, value in source.items():
            if isinstance(value, (int, float)):
                target[key] = target.get(key, 0) + value
    return target


def merged_counters(
    sources: Sequence[Optional[Dict[str, float]]]
) -> Dict[str, float]:
    """Sum many counter dicts into a fresh one."""
    total: Dict[str, float] = {}
    for source in sources:
        merge_counters(total, source)
    return total
