"""Module-level worker functions for the built-in parallel flows.

Each worker is a pure function of its payload (plus the deterministic
on-disk benchmark data), so running it in-process or in a pool worker
is indistinguishable — the property the jobs-count bit-identity tests
pin down.  Heavy imports happen lazily inside the functions: this
module is imported by the flow modules themselves, and in pool workers
it is re-imported fresh, so lazy imports also keep child start-up
cheap for flows that never need the whole stack.
"""

from __future__ import annotations

from typing import Dict, Tuple


def table2_task(payload: Tuple[str, str, int, bool]):
    """One Table II cell: ``(benchmark, config, effort, verify)``."""
    from ..flows.experiments import table2_cell

    name, config, effort, verify = payload
    return name, config, table2_cell(name, config, effort, verify)


def table3_task(payload: Tuple[str, str, int, bool, Dict[str, object]]):
    """One Table III row: ``(baseline, benchmark, effort, verify, opts)``."""
    from ..flows.experiments import table3_row

    baseline, name, effort, verify, opts = payload
    return name, table3_row(baseline, name, effort, verify, **opts)


def fuzz_case_task(payload):
    """One fuzz-campaign case: ``(config, index, corpus_names)``."""
    from ..fuzz.harness import run_case

    config, index, corpus_names = payload
    return run_case(config, index, corpus_names)


def verify_chunk_task(payload):
    """One packed verification window: ``(program, mig, start, count)``.

    Returns the lowest mismatching assignment index in the window, or
    ``-1`` when the program matches the MIG on every packed lane.
    """
    from ..rram.verify import verify_window

    program, mig, start, count = payload
    return verify_window(program, mig, start, count)
