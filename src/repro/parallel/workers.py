"""Module-level worker functions for the built-in parallel flows.

Each worker is a pure function of its payload (plus the deterministic
on-disk benchmark data), so running it in-process or in a pool worker
is indistinguishable — the property the jobs-count bit-identity tests
pin down.  Heavy imports happen lazily inside the functions: this
module is imported by the flow modules themselves, and in pool workers
it is re-imported fresh, so lazy imports also keep child start-up
cheap for flows that never need the whole stack.

Telemetry: every task body runs under
:func:`repro.telemetry.isolated_registry` and ships the resulting
metrics snapshot back with its result.  The parent absorbs snapshots in
submission order, so metrics arrive via the identical commutative path
whether the task ran inline (``jobs=1``) or in a pool worker — merged
metrics are bit-identical for any job count.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..telemetry import isolated_registry


def table2_task(payload: Tuple[str, str, int, bool]):
    """One Table II cell: ``(benchmark, config, effort, verify)``.

    Returns ``(benchmark, config, cell, metrics_snapshot)``.
    """
    from ..flows.experiments import table2_cell

    name, config, effort, verify = payload
    with isolated_registry() as registry:
        cell = table2_cell(name, config, effort, verify)
        snapshot = registry.snapshot()
    return name, config, cell, snapshot


def table3_task(payload: Tuple[str, str, int, bool, Dict[str, object]]):
    """One Table III row: ``(baseline, benchmark, effort, verify, opts)``.

    Returns ``(benchmark, row, metrics_snapshot)``.
    """
    from ..flows.experiments import table3_row

    baseline, name, effort, verify, opts = payload
    with isolated_registry() as registry:
        row = table3_row(baseline, name, effort, verify, **opts)
        snapshot = registry.snapshot()
    return name, row, snapshot


def crossbar_task(payload):
    """One crossbar mapping cell:
    ``(benchmark, realization, effort, verify, width, height)``.

    Returns ``(benchmark, realization, cell, metrics_snapshot)``.
    """
    from ..flows.experiments import crossbar_cell

    name, realization, effort, verify, width, height = payload
    with isolated_registry() as registry:
        cell = crossbar_cell(name, realization, effort, verify, width, height)
        snapshot = registry.snapshot()
    return name, realization, cell, snapshot


def fuzz_case_task(payload):
    """One fuzz-campaign case: ``(config, index, corpus_names)``.

    The outcome dict gains a ``"telemetry"`` metrics snapshot.
    """
    from ..fuzz.harness import run_case

    config, index, corpus_names = payload
    with isolated_registry() as registry:
        outcome = run_case(config, index, corpus_names)
        outcome["telemetry"] = registry.snapshot()
    return outcome


def verify_chunk_task(payload):
    """One packed verification window: ``(program, mig, start, count)``.

    Returns the lowest mismatching assignment index in the window, or
    ``-1`` when the program matches the MIG on every packed lane.
    """
    from ..rram.verify import verify_window

    program, mig, start, count = payload
    return verify_window(program, mig, start, count)
