"""ISCAS89 ``.bench`` format reader and writer.

The ``.bench`` format describes gate-level circuits one definition per
line (``G10 = NAND(G1, G3)``) with ``INPUT(..)`` / ``OUTPUT(..)``
declarations.  Sequential elements (``DFF``) are converted to
pseudo-primary-inputs/outputs, which is the standard *combinational
profile* treatment used by the ISCAS89 benchmark literature [17].
"""

from __future__ import annotations

import re
from typing import List, Tuple

from ..network import GateType, Netlist, NetlistError

_GATE_TYPES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "MAJ": GateType.MAJ,
    "MUX": GateType.MUX,
}

_REVERSE_GATE_TYPES = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.MAJ: "MAJ",
    GateType.MUX: "MUX",
}

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^(\S+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*)\s*\)$")


class BenchFormatError(ValueError):
    """Raised on malformed ``.bench`` input."""


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a :class:`Netlist`."""
    netlist = Netlist(name)
    outputs: List[str] = []
    dff_pairs: List[Tuple[str, str]] = []  # (state_output_net, next_state_net)
    gate_lines: List[Tuple[int, str, str, List[str]]] = []

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            keyword, net = decl.group(1).upper(), decl.group(2).strip()
            if keyword == "INPUT":
                netlist.add_input(net)
            else:
                outputs.append(net)
            continue
        gate = _GATE_RE.match(line)
        if not gate:
            raise BenchFormatError(f"line {line_no}: cannot parse {line!r}")
        target, func, args = gate.group(1), gate.group(2).upper(), gate.group(3)
        operands = [a.strip() for a in args.split(",") if a.strip()]
        if func == "DFF":
            if len(operands) != 1:
                raise BenchFormatError(
                    f"line {line_no}: DFF takes one operand, got {len(operands)}"
                )
            dff_pairs.append((target, operands[0]))
            continue
        if func not in _GATE_TYPES:
            raise BenchFormatError(f"line {line_no}: unknown gate {func!r}")
        gate_lines.append((line_no, target, func, operands))

    # Combinational profile: DFF outputs become pseudo-PIs, next-state
    # nets become pseudo-POs.
    for state_net, _next_net in dff_pairs:
        netlist.add_input(state_net)

    for line_no, target, func, operands in gate_lines:
        try:
            netlist.add_gate(target, _GATE_TYPES[func], operands)
        except NetlistError as exc:
            raise BenchFormatError(f"line {line_no}: {exc}") from exc

    for net in outputs:
        netlist.set_output(net)
    for _state_net, next_net in dff_pairs:
        netlist.set_output(next_net)

    try:
        netlist.validate()
    except NetlistError as exc:
        raise BenchFormatError(str(exc)) from exc
    return netlist


def read_bench(path: str) -> Netlist:
    """Read and parse a ``.bench`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_bench(handle.read(), name=path)


def write_bench(netlist: Netlist) -> str:
    """Render a :class:`Netlist` as ``.bench`` source text.

    MUX gates are not part of the classic format but are accepted by
    this library's own parser; writing a netlist containing them keeps
    round-trips lossless within the library.
    """
    lines = [f"# {netlist.name}"]
    for name in netlist.inputs:
        lines.append(f"INPUT({name})")
    for name in netlist.outputs:
        lines.append(f"OUTPUT({name})")
    for gate in netlist.topological_order():
        if gate.gate_type in (GateType.CONST0, GateType.CONST1):
            # Encode constants with the conventional XOR/XNOR self trick
            # only if an input exists; otherwise fail loudly.
            raise BenchFormatError(
                "the .bench format has no constant gates; "
                "remove constants before writing"
            )
        keyword = _REVERSE_GATE_TYPES[gate.gate_type]
        args = ", ".join(gate.operands)
        lines.append(f"{gate.name} = {keyword}({args})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: str) -> None:
    """Write a :class:`Netlist` to a ``.bench`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_bench(netlist))
