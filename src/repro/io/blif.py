"""Berkeley Logic Interchange Format (BLIF) reader and writer.

Supports the combinational subset used by the LGsynth91 benchmarks:
``.model``, ``.inputs``, ``.outputs``, ``.names`` with single-output
covers (on-set and off-set), constants, and ``.latch`` (converted to
pseudo-PI/PO pairs, the combinational-profile treatment).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..network import GateType, Netlist, NetlistError


class BlifFormatError(ValueError):
    """Raised on malformed BLIF input."""


def _logical_lines(text: str):
    """Yield (line_no, line) with backslash continuations joined."""
    pending = ""
    pending_no = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if line.endswith("\\"):
            if not pending:
                pending_no = line_no
            pending += line[:-1] + " "
            continue
        if pending:
            yield pending_no, (pending + line).strip()
            pending = ""
        elif line.strip():
            yield line_no, line.strip()
    if pending:
        yield pending_no, pending.strip()


class _Cover:
    """A single-output ``.names`` cover before gate lowering."""

    def __init__(self, inputs: List[str], output: str):
        self.inputs = inputs
        self.output = output
        self.rows: List[Tuple[str, str]] = []  # (input cube, output char)


def _lower_cover(netlist: Netlist, cover: _Cover, fresh: "_NameGen") -> None:
    """Lower one cover into AND/OR/NOT gates on the netlist."""
    if not cover.inputs:
        # Constant node: value is 1 iff any row outputs '1'.
        value = any(out_char == "1" for _cube, out_char in cover.rows)
        netlist.add_gate(
            cover.output, GateType.CONST1 if value else GateType.CONST0, []
        )
        return
    if not cover.rows:
        netlist.add_gate(cover.output, GateType.CONST0, [])
        return

    out_chars = {out_char for _cube, out_char in cover.rows}
    if len(out_chars) != 1:
        raise BlifFormatError(
            f"cover for {cover.output!r} mixes on-set and off-set rows"
        )
    is_offset = out_chars == {"0"}

    def literal(net: str, positive: bool) -> str:
        if positive:
            return net
        inv_name = fresh.get(f"{net}_n")
        netlist.add_gate(inv_name, GateType.NOT, [net])
        return inv_name

    product_nets: List[str] = []
    for cube, _out_char in cover.rows:
        if len(cube) != len(cover.inputs):
            raise BlifFormatError(
                f"cube {cube!r} width mismatch for {cover.output!r}"
            )
        literals = []
        for char, net in zip(cube, cover.inputs):
            if char == "1":
                literals.append(literal(net, True))
            elif char == "0":
                literals.append(literal(net, False))
            elif char != "-":
                raise BlifFormatError(f"invalid cube character {char!r}")
        if not literals:
            # A full don't-care cube means the cover is a tautology.
            const = GateType.CONST0 if is_offset else GateType.CONST1
            netlist.add_gate(cover.output, const, [])
            return
        if len(literals) == 1:
            product_nets.append(literals[0])
        else:
            product = fresh.get(f"{cover.output}_p")
            netlist.add_gate(product, GateType.AND, literals)
            product_nets.append(product)

    final_type = GateType.NOR if is_offset else GateType.OR
    if len(product_nets) == 1 and not is_offset:
        netlist.add_gate(cover.output, GateType.BUF, product_nets)
    else:
        netlist.add_gate(cover.output, final_type, product_nets)


class _NameGen:
    """Generates fresh net names that cannot collide with user nets."""

    def __init__(self) -> None:
        self._used: Dict[str, int] = {}

    def get(self, base: str) -> str:
        count = self._used.get(base, 0)
        self._used[base] = count + 1
        return f"__{base}_{count}"


def parse_blif(text: str, name: Optional[str] = None) -> Netlist:
    """Parse BLIF source text into a :class:`Netlist`."""
    model_name = name or "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    latches: List[Tuple[str, str]] = []  # (data_in, data_out)
    covers: List[_Cover] = []
    current: Optional[_Cover] = None
    seen_end = False

    for line_no, line in _logical_lines(text):
        if seen_end:
            break
        tokens = line.split()
        keyword = tokens[0]
        if keyword.startswith("."):
            current = None
        if keyword == ".model":
            if name is None and len(tokens) > 1:
                model_name = tokens[1]
        elif keyword == ".inputs":
            inputs.extend(tokens[1:])
        elif keyword == ".outputs":
            outputs.extend(tokens[1:])
        elif keyword == ".names":
            if len(tokens) < 2:
                raise BlifFormatError(f"line {line_no}: .names needs an output")
            current = _Cover(tokens[1:-1], tokens[-1])
            covers.append(current)
        elif keyword == ".latch":
            if len(tokens) < 3:
                raise BlifFormatError(f"line {line_no}: bad .latch")
            latches.append((tokens[1], tokens[2]))
        elif keyword == ".end":
            seen_end = True
        elif keyword.startswith("."):
            # Ignore unsupported directives (.clock, .default_input_arrival…)
            continue
        else:
            if current is None:
                raise BlifFormatError(
                    f"line {line_no}: cover row outside .names: {line!r}"
                )
            if len(tokens) == 1 and not current.inputs:
                current.rows.append(("", tokens[0]))
            elif len(tokens) == 2:
                current.rows.append((tokens[0], tokens[1]))
            else:
                raise BlifFormatError(f"line {line_no}: bad cover row {line!r}")

    netlist = Netlist(model_name)
    for net in inputs:
        netlist.add_input(net)
    for _data_in, data_out in latches:
        netlist.add_input(data_out)

    fresh = _NameGen()
    for cover in covers:
        _lower_cover(netlist, cover, fresh)

    for net in outputs:
        netlist.set_output(net)
    for data_in, _data_out in latches:
        netlist.set_output(data_in)

    netlist.validate()
    return netlist


def read_blif(path: str) -> Netlist:
    """Read and parse a BLIF file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read())


_SIMPLE_COVERS = {
    GateType.BUF: ["1 1"],
    GateType.NOT: ["0 1"],
    GateType.MAJ: ["11- 1", "1-1 1", "-11 1"],
    GateType.MUX: ["11- 1", "0-1 1"],
}


def write_blif(netlist: Netlist) -> str:
    """Render a :class:`Netlist` as BLIF source text."""
    lines = [f".model {netlist.name}"]
    lines.append(".inputs " + " ".join(netlist.inputs))
    lines.append(".outputs " + " ".join(netlist.outputs))
    for gate in netlist.topological_order():
        lines.append(".names " + " ".join(gate.operands + (gate.name,)))
        arity = len(gate.operands)
        if gate.gate_type is GateType.CONST0:
            pass  # empty cover is constant 0
        elif gate.gate_type is GateType.CONST1:
            lines.append("1")
        elif gate.gate_type in _SIMPLE_COVERS:
            lines.extend(_SIMPLE_COVERS[gate.gate_type])
        elif gate.gate_type is GateType.AND:
            lines.append("1" * arity + " 1")
        elif gate.gate_type is GateType.NAND:
            lines.append("1" * arity + " 0")
        elif gate.gate_type is GateType.OR:
            for i in range(arity):
                lines.append("-" * i + "1" + "-" * (arity - i - 1) + " 1")
        elif gate.gate_type is GateType.NOR:
            lines.append("0" * arity + " 1")
        elif gate.gate_type in (GateType.XOR, GateType.XNOR):
            want_odd = gate.gate_type is GateType.XOR
            for pattern in range(1 << arity):
                ones = bin(pattern).count("1")
                if (ones % 2 == 1) == want_odd:
                    cube = "".join(
                        "1" if (pattern >> i) & 1 else "0" for i in range(arity)
                    )
                    lines.append(f"{cube} 1")
        else:
            raise NetlistError(f"cannot render {gate.gate_type} to BLIF")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_blif(netlist: Netlist, path: str) -> None:
    """Write a :class:`Netlist` to a BLIF file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_blif(netlist))
