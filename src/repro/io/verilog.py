"""Structural Verilog writer.

Emits a synthesizable gate-level module from a :class:`Netlist` using
Verilog primitives plus ``assign`` expressions for MAJ/MUX (which have
no primitive gate).  Write-only: round-tripping is covered by the
``.bench``/BLIF formats; this exists for handing results to downstream
EDA tools.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..network import GateType, Netlist

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-legal identifier (escaped-identifier syntax if needed)."""
    if _IDENT.match(name):
        return name
    return f"\\{name} "


def write_verilog(netlist: Netlist, module_name: str = "") -> str:
    """Render a :class:`Netlist` as a structural Verilog module."""
    netlist.validate()
    module = module_name or re.sub(r"\W", "_", netlist.name) or "top"
    if not _IDENT.match(module):
        module = f"_{module}"

    inputs = [_escape(name) for name in netlist.inputs]
    # Outputs must be distinct ports; alias duplicates through wires.
    out_ports: List[str] = []
    out_drivers: List[str] = []
    used: Dict[str, int] = {}
    for name in netlist.outputs:
        count = used.get(name, 0)
        used[name] = count + 1
        port = name if count == 0 else f"{name}_dup{count}"
        out_ports.append(_escape(port))
        out_drivers.append(_escape(name))

    lines = [f"module {module} ("]
    lines.append("    " + ",\n    ".join(inputs + out_ports))
    lines.append(");")
    for name in inputs:
        lines.append(f"  input {name};")
    for port in out_ports:
        lines.append(f"  output {port};")

    output_set = set(netlist.outputs)
    for gate in netlist.topological_order():
        if gate.name not in output_set:
            lines.append(f"  wire {_escape(gate.name)};")

    for gate in netlist.topological_order():
        target = _escape(gate.name)
        operands = [_escape(op) for op in gate.operands]
        kind = gate.gate_type
        if kind is GateType.CONST0:
            lines.append(f"  assign {target} = 1'b0;")
        elif kind is GateType.CONST1:
            lines.append(f"  assign {target} = 1'b1;")
        elif kind is GateType.BUF:
            lines.append(f"  buf({target}, {operands[0]});")
        elif kind is GateType.NOT:
            lines.append(f"  not({target}, {operands[0]});")
        elif kind in (
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ):
            lines.append(
                f"  {kind.value}({target}, {', '.join(operands)});"
            )
        elif kind is GateType.MAJ:
            a, b, c = operands
            lines.append(
                f"  assign {target} = ({a} & {b}) | ({a} & {c}) | ({b} & {c});"
            )
        elif kind is GateType.MUX:
            s, t, e = operands
            lines.append(f"  assign {target} = {s} ? {t} : {e};")
        else:  # pragma: no cover - exhaustive over GateType
            raise ValueError(f"cannot render {kind} to Verilog")

    for port, driver in zip(out_ports, out_drivers):
        if port != driver:
            lines.append(f"  assign {port} = {driver};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(netlist: Netlist, path: str, module_name: str = "") -> None:
    """Write a :class:`Netlist` to a Verilog file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(netlist, module_name))
