"""Espresso PLA format reader and writer.

Supports the common subset used by the MCNC two-level benchmarks:
``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type`` (``f``/``fr``/
``fd`` treated as ON-set specifications), cube rows, and ``.e``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..network import GateType, Netlist
from ..truth import TruthTable


class PlaFormatError(ValueError):
    """Raised on malformed PLA input."""


class PlaCover:
    """A parsed two-level cover: cubes over inputs with per-output tags."""

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        input_labels: Optional[List[str]] = None,
        output_labels: Optional[List[str]] = None,
        name: str = "pla",
    ) -> None:
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.input_labels = input_labels or [f"x{i}" for i in range(num_inputs)]
        self.output_labels = output_labels or [f"f{i}" for i in range(num_outputs)]
        self.name = name
        self.cubes: List[Tuple[str, str]] = []  # (input part, output part)

    def add_cube(self, input_part: str, output_part: str) -> None:
        """Append a product-term row after validating its width."""
        if len(input_part) != self.num_inputs:
            raise PlaFormatError(
                f"cube input width {len(input_part)} != .i {self.num_inputs}"
            )
        if len(output_part) != self.num_outputs:
            raise PlaFormatError(
                f"cube output width {len(output_part)} != .o {self.num_outputs}"
            )
        for char in input_part:
            if char not in "01-":
                raise PlaFormatError(f"invalid input cube char {char!r}")
        for char in output_part:
            if char not in "01-~4":
                raise PlaFormatError(f"invalid output cube char {char!r}")
        self.cubes.append((input_part, output_part))


def parse_pla(text: str, name: str = "pla") -> PlaCover:
    """Parse PLA source text into a :class:`PlaCover`."""
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    input_labels: Optional[List[str]] = None
    output_labels: Optional[List[str]] = None
    rows: List[Tuple[int, str, str]] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".i":
            num_inputs = int(tokens[1])
        elif keyword == ".o":
            num_outputs = int(tokens[1])
        elif keyword == ".ilb":
            input_labels = tokens[1:]
        elif keyword == ".ob":
            output_labels = tokens[1:]
        elif keyword in (".p", ".type", ".phase", ".pair", ".mv"):
            continue
        elif keyword == ".e" or keyword == ".end":
            break
        elif keyword.startswith("."):
            continue  # tolerate unknown directives
        else:
            if len(tokens) == 2:
                rows.append((line_no, tokens[0], tokens[1]))
            elif len(tokens) == 1 and num_outputs is not None and num_inputs:
                # Some writers put no space between parts.
                cube = tokens[0]
                rows.append(
                    (line_no, cube[:num_inputs], cube[num_inputs:])
                )
            else:
                raise PlaFormatError(f"line {line_no}: bad cube row {line!r}")

    if num_inputs is None or num_outputs is None:
        raise PlaFormatError("missing .i or .o declaration")

    cover = PlaCover(num_inputs, num_outputs, input_labels, output_labels, name)
    for line_no, input_part, output_part in rows:
        try:
            cover.add_cube(input_part, output_part)
        except PlaFormatError as exc:
            raise PlaFormatError(f"line {line_no}: {exc}") from exc
    return cover


def read_pla(path: str) -> PlaCover:
    """Read and parse a PLA file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_pla(handle.read(), name=path)


def pla_to_netlist(cover: PlaCover) -> Netlist:
    """Lower a two-level cover into an AND/OR/NOT netlist."""
    netlist = Netlist(cover.name)
    for label in cover.input_labels:
        netlist.add_input(label)

    inverter_cache = {}

    def inverted(net: str) -> str:
        if net not in inverter_cache:
            inv = f"__{net}_n"
            netlist.add_gate(inv, GateType.NOT, [net])
            inverter_cache[net] = inv
        return inverter_cache[net]

    product_nets: List[Optional[str]] = []
    for index, (input_part, _output_part) in enumerate(cover.cubes):
        literals = []
        for char, label in zip(input_part, cover.input_labels):
            if char == "1":
                literals.append(label)
            elif char == "0":
                literals.append(inverted(label))
        if not literals:
            product_nets.append(None)  # tautology cube
            continue
        if len(literals) == 1:
            product_nets.append(literals[0])
        else:
            product = f"__p{index}"
            netlist.add_gate(product, GateType.AND, literals)
            product_nets.append(product)

    for out_index, label in enumerate(cover.output_labels):
        terms = []
        tautology = False
        for cube_index, (_input_part, output_part) in enumerate(cover.cubes):
            if output_part[out_index] in ("1", "4"):
                net = product_nets[cube_index]
                if net is None:
                    tautology = True
                    break
                terms.append(net)
        if tautology:
            netlist.add_gate(label, GateType.CONST1, [])
        elif not terms:
            netlist.add_gate(label, GateType.CONST0, [])
        elif len(terms) == 1:
            netlist.add_gate(label, GateType.BUF, terms)
        else:
            netlist.add_gate(label, GateType.OR, terms)
        netlist.set_output(label)

    netlist.validate()
    return netlist


def pla_truth_tables(cover: PlaCover) -> List[TruthTable]:
    """Evaluate a cover exhaustively into per-output truth tables."""
    return pla_to_netlist(cover).truth_tables()


def write_pla(cover: PlaCover) -> str:
    """Render a :class:`PlaCover` as PLA source text."""
    lines = [
        f".i {cover.num_inputs}",
        f".o {cover.num_outputs}",
        ".ilb " + " ".join(cover.input_labels),
        ".ob " + " ".join(cover.output_labels),
        f".p {len(cover.cubes)}",
    ]
    for input_part, output_part in cover.cubes:
        lines.append(f"{input_part} {output_part}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def tables_to_pla(
    tables: Sequence[TruthTable],
    name: str = "pla",
    input_labels: Optional[List[str]] = None,
    output_labels: Optional[List[str]] = None,
) -> PlaCover:
    """Build a minterm-canonical cover from truth tables (small n only)."""
    if not tables:
        raise PlaFormatError("need at least one output table")
    num_vars = tables[0].num_vars
    if any(t.num_vars != num_vars for t in tables):
        raise PlaFormatError("all output tables must share the variable count")
    if num_vars > 16:
        raise PlaFormatError("refusing canonical cover for more than 16 inputs")
    cover = PlaCover(num_vars, len(tables), input_labels, output_labels, name)
    for assignment in range(1 << num_vars):
        output_part = "".join(
            "1" if table.value_at(assignment) else "0" for table in tables
        )
        if "1" not in output_part:
            continue
        input_part = "".join(
            "1" if (assignment >> i) & 1 else "0" for i in range(num_vars)
        )
        cover.add_cube(input_part, output_part)
    return cover


def save_pla(cover: PlaCover, path: str) -> None:
    """Write a :class:`PlaCover` to a PLA file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_pla(cover))
