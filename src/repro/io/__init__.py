"""Benchmark file formats: ISCAS89 ``.bench``, BLIF, and espresso PLA."""

from .bench import (
    BenchFormatError,
    parse_bench,
    read_bench,
    save_bench,
    write_bench,
)
from .blif import BlifFormatError, parse_blif, read_blif, save_blif, write_blif
from .verilog import save_verilog, write_verilog
from .verilog_reader import VerilogFormatError, parse_verilog, read_verilog
from .pla import (
    PlaCover,
    PlaFormatError,
    parse_pla,
    pla_to_netlist,
    pla_truth_tables,
    read_pla,
    save_pla,
    tables_to_pla,
    write_pla,
)

__all__ = [
    "BenchFormatError",
    "parse_bench",
    "read_bench",
    "save_bench",
    "write_bench",
    "BlifFormatError",
    "parse_blif",
    "read_blif",
    "save_blif",
    "write_blif",
    "PlaCover",
    "PlaFormatError",
    "parse_pla",
    "pla_to_netlist",
    "pla_truth_tables",
    "read_pla",
    "save_pla",
    "tables_to_pla",
    "write_pla",
    "save_verilog",
    "write_verilog",
    "VerilogFormatError",
    "parse_verilog",
    "read_verilog",
]
