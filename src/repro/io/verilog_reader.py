"""Structural Verilog reader (the subset the writer emits, and a bit
more).

Supported constructs:

* one ``module`` with a port list, ``input``/``output``/``wire``
  declarations (scalar nets only);
* gate primitives ``and/nand/or/nor/xor/xnor/not/buf(out, in...)``;
* ``assign target = expr;`` where *expr* is built from identifiers,
  ``1'b0``/``1'b1``, parentheses, ``~``, ``&``, ``^``, ``|`` and the
  ternary ``?:`` (standard precedence) — enough for the majority/mux
  assigns :func:`~repro.io.verilog.write_verilog` produces;
* escaped identifiers (``\\name ``).

Expressions are lowered to netlist gates with fresh intermediate nets.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..network import GateType, Netlist

_TOKEN_RE = re.compile(
    r"""
    (?P<escaped>\\[^\s]+\s)
  | (?P<const>1'b[01])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<symbol>[()?:~&^|,;=])
    """,
    re.VERBOSE,
)

_GATE_KEYWORDS = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}


class VerilogFormatError(ValueError):
    """Raised on unsupported or malformed Verilog input."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    text = _strip_comments(text)
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise VerilogFormatError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        if match.lastgroup == "escaped":
            tokens.append(match.group().strip()[1:])  # drop backslash
        else:
            tokens.append(match.group())
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.position = 0
        self.netlist: Optional[Netlist] = None
        self.outputs: List[str] = []
        self.fresh_counter = 0

    # -- token helpers -------------------------------------------------

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise VerilogFormatError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise VerilogFormatError(f"expected {token!r}, got {got!r}")

    # -- module structure ----------------------------------------------

    def parse_module(self) -> Netlist:
        self.expect("module")
        name = self.take()
        self.netlist = Netlist(name)
        self.expect("(")
        while self.peek() != ")":
            self.take()  # port names repeat in the declarations
            if self.peek() == ",":
                self.take()
        self.expect(")")
        self.expect(";")

        while self.peek() != "endmodule":
            keyword = self.take()
            if keyword == "input":
                for port in self._name_list():
                    self.netlist.add_input(port)
            elif keyword == "output":
                self.outputs.extend(self._name_list())
            elif keyword == "wire":
                self._name_list()  # declarations carry no information
            elif keyword in _GATE_KEYWORDS:
                self._gate_instance(_GATE_KEYWORDS[keyword])
            elif keyword == "assign":
                self._assign()
            else:
                raise VerilogFormatError(
                    f"unsupported construct {keyword!r}"
                )
        self.take()  # endmodule

        for port in self.outputs:
            self.netlist.set_output(port)
        self.netlist.validate()
        return self.netlist

    def _name_list(self) -> List[str]:
        names = [self.take()]
        while self.peek() == ",":
            self.take()
            names.append(self.take())
        self.expect(";")
        return names

    def _gate_instance(self, gate_type: GateType) -> None:
        assert self.netlist is not None
        # Optional instance name before the parenthesis.
        if self.peek() != "(":
            self.take()
        self.expect("(")
        operands = [self.take()]
        while self.peek() == ",":
            self.take()
            operands.append(self.take())
        self.expect(")")
        self.expect(";")
        target, sources = operands[0], operands[1:]
        self.netlist.add_gate(target, gate_type, sources)

    # -- expressions ----------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self.fresh_counter += 1
        return f"__{prefix}_{self.fresh_counter}"

    def _emit(self, gate_type: GateType, operands: List[str]) -> str:
        assert self.netlist is not None
        net = self._fresh(gate_type.value)
        self.netlist.add_gate(net, gate_type, operands)
        return net

    def _assign(self) -> None:
        assert self.netlist is not None
        target = self.take()
        self.expect("=")
        result = self._ternary()
        self.expect(";")
        self.netlist.add_gate(target, GateType.BUF, [result])

    def _ternary(self) -> str:
        condition = self._or_expr()
        if self.peek() != "?":
            return condition
        self.take()
        then_net = self._ternary()
        self.expect(":")
        else_net = self._ternary()
        return self._emit(GateType.MUX, [condition, then_net, else_net])

    def _or_expr(self) -> str:
        left = self._xor_expr()
        while self.peek() == "|":
            self.take()
            left = self._emit(GateType.OR, [left, self._xor_expr()])
        return left

    def _xor_expr(self) -> str:
        left = self._and_expr()
        while self.peek() == "^":
            self.take()
            left = self._emit(GateType.XOR, [left, self._and_expr()])
        return left

    def _and_expr(self) -> str:
        left = self._unary()
        while self.peek() == "&":
            self.take()
            left = self._emit(GateType.AND, [left, self._unary()])
        return left

    def _unary(self) -> str:
        token = self.peek()
        if token == "~":
            self.take()
            return self._emit(GateType.NOT, [self._unary()])
        if token == "(":
            self.take()
            inner = self._ternary()
            self.expect(")")
            return inner
        if token in ("1'b0", "1'b1"):
            self.take()
            gate_type = (
                GateType.CONST1 if token == "1'b1" else GateType.CONST0
            )
            return self._emit(gate_type, [])
        return self.take()


def parse_verilog(text: str) -> Netlist:
    """Parse structural Verilog source into a :class:`Netlist`."""
    return _Parser(_tokenize(text)).parse_module()


def read_verilog(path: str) -> Netlist:
    """Read and parse a structural Verilog file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read())
