"""The differential oracle: every representation against every other.

For one generated circuit the oracle asserts, in order:

1. **Cross-representation equivalence** — the MIG, AIG, and BDD
   lowerings all compute the netlist's reference function.
2. **Flow preservation** — every optimizer flow (the paper's
   Algorithms 1–4, complement annealing, cut rewriting) leaves the
   function intact and the structural invariants unbroken, and the
   incremental :class:`~repro.mig.costview.CostView` agrees with the
   from-scratch ``rram_costs`` on the result.
3. **CostView differential** — each building-block pass run twice on
   identical clones, once with a CostView attached and once without,
   must produce identical outcomes (the PR-1 invalidation protocol's
   core claim, here checked on adversarial inputs instead of the
   benchmark set).
4. **Transaction differential** — every optimizer flow run twice on
   identical clones, once under the transactional undo-journal engine
   and once under the legacy clone-based rollback engine, must leave
   *structurally identical* graphs (the bit-identity contract of the
   checkpoint/rollback/commit journal, checked on adversarial inputs).
5. **Graph-engine differential** — every optimizer flow run twice from
   the same netlist, once on the object-dict storage engine and once on
   the numpy-slab engine (with the vectorized kernels force-enabled so
   the small fuzz circuits actually exercise them), must produce
   bit-identical graphs and identical Table I costs (the
   ``REPRO_GRAPH`` migration oracle).
6. **Batch differential** — every batch-reachable optimizer flow run
   twice on slab clones, once with batched trial evaluation
   force-enabled (``REPRO_BATCH_MIN_NODES=0`` so the small fuzz
   circuits actually take the vectorized scoring paths) and once with
   it disabled, must produce bit-identical graphs and identical
   Table I costs (the ``REPRO_BATCH`` oracle).
7. **Compile cost triangle** — for both realizations, the analytic
   ``S = K_S·D + L`` equals the CostView's incremental answer equals
   the compiler's measured step count, and the compiled program
   replayed on the device-level array simulator matches the MIG.
8. **PLiM backend** — the serial RM3 stream computes the same function.
9. **Crossbar mapping** — both realizations placed onto an auto-fitted
   W×H array and rescheduled into row-parallel steps must stay within
   the sequential step count, survive the full legality audit, and be
   bit-identical to the sequential program over the whole assignment
   space (sequential-vs-placed differential).

Any violation is returned as an :class:`OracleFailure` naming the check
that tripped; ``None`` means the case is clean.  Checks run on clones,
so a failure leaves the original circuit available for shrinking.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..aig import aig_from_netlist
from ..bdd import build_bdd_from_netlist, dfs_variable_order
from ..mig import (
    CostView,
    Mig,
    Realization,
    anneal_complements,
    graph_engine,
    mig_from_netlist,
    mig_matches_netlist,
    optimize_area,
    optimize_area_plus,
    optimize_depth,
    optimize_rram,
    optimize_steps,
    rram_costs,
    transaction_engine,
)
from ..mig.algorithms import (
    clear_complemented_levels,
    eliminate,
    inverter_propagation_pass,
    push_up,
)
from ..network import Netlist
from ..rram import compile_mig, compile_plim, verify_compiled
from ..sim import (
    evaluate_bdd_slices,
    execute_program_slices,
    first_difference,
    iter_assignment_chunks,
)

#: Check identifiers, in the order the oracle runs them.
CHECKS: Tuple[str, ...] = (
    "xrep-mig",
    "xrep-aig",
    "xrep-bdd",
    "flow-area",
    "flow-depth",
    "flow-rram",
    "flow-steps",
    "flow-anneal",
    "flow-rewrite",
    "costview-diff",
    "tx-diff",
    "graph-diff",
    "batch-diff",
    "compile-imp",
    "compile-maj",
    "plim-exec",
    "crossbar-imp",
    "crossbar-maj",
)


@dataclass
class OracleFailure:
    """One oracle violation, attributable to a specific check."""

    check: str
    detail: str
    #: Filled in by the harness: generator kind and case seed.
    case: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> Dict[str, object]:
        return {"check": self.check, "detail": self.detail, **self.case}


def _guarded(check: str, fn: Callable[[], Optional[OracleFailure]]):
    """Run one check, converting an unexpected crash into a failure —
    a pass that *raises* on a legal circuit is as much a bug as one
    that corrupts it."""
    try:
        return fn()
    except Exception:  # noqa: BLE001 - the whole point is catching bugs
        trace = traceback.format_exc(limit=6)
        return OracleFailure(check, f"unexpected exception:\n{trace}")


def _check_representations(netlist: Netlist) -> Optional[OracleFailure]:
    reference = netlist.truth_tables()
    mig_tables = mig_from_netlist(netlist).truth_tables()
    if mig_tables != reference:
        return OracleFailure("xrep-mig", "MIG truth tables diverge from netlist")
    aig_tables = aig_from_netlist(netlist).truth_tables()
    if aig_tables != reference:
        return OracleFailure("xrep-aig", "AIG truth tables diverge from netlist")
    num_inputs = len(netlist.inputs)
    if num_inputs <= 8:
        manager, roots = build_bdd_from_netlist(netlist)
        order = dfs_variable_order(netlist)
        position = {name: i for i, name in enumerate(netlist.inputs)}
        for chunk in iter_assignment_chunks(num_inputs):
            # chunk.slices pack the circuit inputs; the BDD kernel wants
            # them in manager level order.
            var_slices = [chunk.slices[position[name]] for name in order]
            bdd_words = evaluate_bdd_slices(
                manager, roots, var_slices, chunk.mask
            )
            for word, table in zip(bdd_words, reference):
                expected = (table.bits >> chunk.start) & chunk.mask
                mismatch = first_difference(word, expected)
                if mismatch >= 0:
                    assignment = chunk.start + mismatch
                    return OracleFailure(
                        "xrep-bdd",
                        f"BDD disagrees on assignment {assignment:0{num_inputs}b}",
                    )
    return None


_FLOWS: Tuple[Tuple[str, Callable[[Mig, int], object]], ...] = (
    ("flow-area", lambda mig, effort: optimize_area(mig, effort)),
    ("flow-depth", lambda mig, effort: optimize_depth(mig, effort)),
    (
        "flow-rram",
        lambda mig, effort: optimize_rram(mig, Realization.MAJ, effort),
    ),
    (
        "flow-steps",
        lambda mig, effort: optimize_steps(mig, Realization.IMP, effort),
    ),
    (
        "flow-anneal",
        lambda mig, effort: anneal_complements(
            mig, Realization.MAJ, iterations=60 * effort, seed=0x5A
        ),
    ),
    (
        "flow-rewrite",
        lambda mig, effort: optimize_area_plus(mig, max(2, effort // 2)),
    ),
)


def _check_flow(
    name: str,
    runner: Callable[[Mig, int], object],
    base: Mig,
    netlist: Netlist,
    effort: int,
) -> Optional[OracleFailure]:
    mig = base.clone()
    runner(mig, effort)
    mig.check_invariants()
    if not mig_matches_netlist(mig, netlist):
        return OracleFailure(name, "optimized MIG no longer matches reference")
    for realization in (Realization.IMP, Realization.MAJ):
        scratch = rram_costs(mig, realization)
        view_costs = CostView(mig).costs(realization)
        if scratch != view_costs:
            return OracleFailure(
                name,
                f"CostView {realization.value} costs {view_costs.as_row()} "
                f"!= from-scratch {scratch.as_row()} on optimized MIG",
            )
    return None


_PASSES: Tuple[Tuple[str, Callable[[Mig, Optional[CostView]], object]], ...] = (
    ("eliminate", lambda mig, view: eliminate(mig, view=view)),
    ("push_up", lambda mig, view: push_up(mig, view=view)),
    (
        "invprop-maj",
        lambda mig, view: inverter_propagation_pass(
            mig, Realization.MAJ, view=view
        ),
    ),
    (
        "invprop-imp",
        lambda mig, view: inverter_propagation_pass(
            mig, Realization.IMP, cases=None, view=view
        ),
    ),
    (
        "clear-levels-maj",
        lambda mig, view: clear_complemented_levels(
            mig, Realization.MAJ, view=view
        ),
    ),
    (
        "clear-levels-imp",
        lambda mig, view: clear_complemented_levels(
            mig, Realization.IMP, view=view
        ),
    ),
)


def _check_costview_differential(
    base: Mig, netlist: Netlist
) -> Optional[OracleFailure]:
    """Each pass with and without a CostView must be result-identical."""
    for pass_name, runner in _PASSES:
        with_view = base.clone()
        without_view = base.clone()
        view = CostView(with_view)
        changed_with = runner(with_view, view)
        changed_without = runner(without_view, None)
        view.assert_consistent()
        if bool(changed_with) != bool(changed_without):
            return OracleFailure(
                "costview-diff",
                f"pass {pass_name}: changed={bool(changed_with)} with view, "
                f"{bool(changed_without)} without",
            )
        for realization in (Realization.IMP, Realization.MAJ):
            costs_with = rram_costs(with_view, realization)
            costs_without = rram_costs(without_view, realization)
            if costs_with != costs_without:
                return OracleFailure(
                    "costview-diff",
                    f"pass {pass_name}: {realization.value} costs diverge "
                    f"{costs_with.as_row()} (view) vs "
                    f"{costs_without.as_row()} (scratch)",
                )
        if not mig_matches_netlist(with_view, netlist):
            return OracleFailure(
                "costview-diff",
                f"pass {pass_name} with view broke the function",
            )
        if not mig_matches_netlist(without_view, netlist):
            return OracleFailure(
                "costview-diff",
                f"pass {pass_name} without view broke the function",
            )
    return None


def _check_tx_differential(
    base: Mig, netlist: Netlist, effort: int
) -> Optional[OracleFailure]:
    """Transactional vs clone-based rollback must be bit-identical.

    Every optimizer flow runs twice on identical clones — once with the
    undo-journal engine, once with the legacy whole-graph-clone engine
    — and the resulting graphs must be *structurally* equal (same node
    arrays, same output signals), not merely functionally equivalent.
    """
    for name, runner in _FLOWS:
        tx_mig = base.clone()
        legacy_mig = base.clone()
        with transaction_engine(True):
            runner(tx_mig, effort)
        with transaction_engine(False):
            runner(legacy_mig, effort)
        if (
            tx_mig._children != legacy_mig._children
            or tx_mig._pos != legacy_mig._pos
        ):
            return OracleFailure(
                "tx-diff",
                f"flow {name}: transactional and clone-based engines "
                f"produced structurally different graphs "
                f"({tx_mig.num_gates()} vs {legacy_mig.num_gates()} gates)",
            )
        tx_mig.check_invariants()
        if not mig_matches_netlist(tx_mig, netlist):
            return OracleFailure(
                "tx-diff",
                f"flow {name} under transactions broke the function",
            )
    return None


def _check_graph_differential(
    netlist: Netlist, effort: int
) -> Optional[OracleFailure]:
    """Object-dict vs numpy-slab storage must be bit-identical.

    Both engines build the MIG from the same netlist and run every
    optimizer flow; the resulting graphs must be *structurally* equal
    (same children arrays, same output signals) and agree on the
    Table I cost model.  The slab clone force-enables the vectorized
    kernels (``KERNEL_MIN_NODES = 0``) so the fuzz corpus — far below
    the production cutover size — still exercises the numpy paths.
    """
    with graph_engine("object"):
        object_base = mig_from_netlist(netlist)
    with graph_engine("slab"):
        slab_base = mig_from_netlist(netlist)
    if (
        object_base._children != slab_base._children
        or object_base._pos != slab_base._pos
    ):
        return OracleFailure(
            "graph-diff",
            "object and slab engines built structurally different MIGs "
            "from the same netlist",
        )
    for name, runner in _FLOWS:
        object_mig = object_base.clone()
        slab_mig = slab_base.clone()
        slab_mig.KERNEL_MIN_NODES = 0
        runner(object_mig, effort)
        runner(slab_mig, effort)
        if (
            object_mig._children != slab_mig._children
            or object_mig._pos != slab_mig._pos
        ):
            return OracleFailure(
                "graph-diff",
                f"flow {name}: object and slab engines produced "
                f"structurally different graphs "
                f"({object_mig.num_gates()} vs {slab_mig.num_gates()} gates)",
            )
        slab_mig.check_invariants()
        for realization in (Realization.IMP, Realization.MAJ):
            object_costs = rram_costs(object_mig, realization)
            slab_costs = rram_costs(slab_mig, realization)
            if object_costs != slab_costs:
                return OracleFailure(
                    "graph-diff",
                    f"flow {name}: {realization.value} costs diverge "
                    f"{object_costs.as_row()} (object) vs "
                    f"{slab_costs.as_row()} (slab kernel)",
                )
        if not mig_matches_netlist(slab_mig, netlist):
            return OracleFailure(
                "graph-diff",
                f"flow {name} on the slab engine broke the function",
            )
    return None


#: Flows whose optimizers consult the batch layer (inverter
#: propagation, complemented-level clearing, annealing's census init).
#: ``flow-area``/``flow-depth``/``flow-rewrite`` never reach batched
#: code — cut_rewrite is excluded by design — so running them under
#: the batch differential would compare two identical scalar runs and
#: only burn fuzz budget.
_BATCH_FLOWS: Tuple[str, ...] = ("flow-rram", "flow-steps", "flow-anneal")


def _check_batch_differential(
    netlist: Netlist, effort: int
) -> Optional[OracleFailure]:
    """Batched vs scalar trial evaluation must be bit-identical.

    Every batch-reachable optimizer flow (``_BATCH_FLOWS``) runs twice
    on identical slab clones — once with the batched candidate scorer
    force-enabled (the cutover ``REPRO_BATCH_MIN_NODES`` dropped to 0
    so the fuzz corpus, far below the production 4096-node threshold,
    actually exercises the vectorized paths) and once with batching
    disabled — and the resulting graphs must be *structurally* equal
    with identical Table I costs.  This is the acceptance-order
    contract of the batch layer checked on adversarial inputs instead
    of the benchmark set.
    """
    import os

    from ..mig import batch_evaluation

    with graph_engine("slab"):
        base = mig_from_netlist(netlist)
    saved = os.environ.get("REPRO_BATCH_MIN_NODES")
    os.environ["REPRO_BATCH_MIN_NODES"] = "0"
    try:
        for name, runner in _FLOWS:
            if name not in _BATCH_FLOWS:
                continue
            scalar_mig = base.clone()
            batch_mig = base.clone()
            with batch_evaluation(False):
                runner(scalar_mig, effort)
            with batch_evaluation(True):
                runner(batch_mig, effort)
            if (
                scalar_mig._children != batch_mig._children
                or scalar_mig._pos != batch_mig._pos
            ):
                return OracleFailure(
                    "batch-diff",
                    f"flow {name}: scalar and batched evaluation produced "
                    f"structurally different graphs "
                    f"({scalar_mig.num_gates()} vs "
                    f"{batch_mig.num_gates()} gates)",
                )
            batch_mig.check_invariants()
            for realization in (Realization.IMP, Realization.MAJ):
                scalar_costs = rram_costs(scalar_mig, realization)
                batch_costs = rram_costs(batch_mig, realization)
                if scalar_costs != batch_costs:
                    return OracleFailure(
                        "batch-diff",
                        f"flow {name}: {realization.value} costs diverge "
                        f"{scalar_costs.as_row()} (scalar) vs "
                        f"{batch_costs.as_row()} (batched)",
                    )
            if not mig_matches_netlist(batch_mig, netlist):
                return OracleFailure(
                    "batch-diff",
                    f"flow {name} under batched evaluation broke the "
                    f"function",
                )
    finally:
        if saved is None:
            os.environ.pop("REPRO_BATCH_MIN_NODES", None)
        else:
            os.environ["REPRO_BATCH_MIN_NODES"] = saved
    return None


def _check_compile(
    base: Mig, netlist: Netlist, realization: Realization, effort: int
) -> Optional[OracleFailure]:
    check = f"compile-{realization.value}"
    mig = base.clone()
    optimize_steps(mig, realization, effort)
    report = compile_mig(mig, realization)
    analytic = rram_costs(mig, realization)
    view_costs = CostView(mig).costs(realization)
    if report.analytic != analytic:
        return OracleFailure(
            check,
            f"compiler analytic {report.analytic.as_row()} != "
            f"rram_costs {analytic.as_row()}",
        )
    if view_costs != analytic:
        return OracleFailure(
            check,
            f"CostView {view_costs.as_row()} != analytic {analytic.as_row()}",
        )
    if not report.steps_match_model:
        return OracleFailure(
            check,
            f"measured steps {report.measured_steps} != model "
            f"S={analytic.steps} (depth {analytic.depth})",
        )
    if not verify_compiled(mig, report):
        return OracleFailure(
            check, "compiled program disagrees with the MIG on the array"
        )
    if not mig_matches_netlist(mig, netlist):
        return OracleFailure(check, "optimize_steps broke the function")
    return None


def _check_plim(base: Mig, netlist: Netlist) -> Optional[OracleFailure]:
    mig = base.clone()
    plim = compile_plim(mig)
    num_inputs = mig.num_pis
    plim.program.validate()
    for chunk in iter_assignment_chunks(num_inputs):
        expected = mig.simulate_words(chunk.slices, chunk.mask)
        actual = execute_program_slices(
            plim.program, chunk.slices, chunk.mask, validate=False
        )
        for expected_word, actual_word in zip(expected, actual):
            mismatch = first_difference(expected_word, actual_word)
            if mismatch >= 0:
                assignment = chunk.start + mismatch
                return OracleFailure(
                    "plim-exec",
                    f"PLiM stream wrong on assignment "
                    f"{assignment:0{num_inputs}b}",
                )
    return None


def _check_crossbar(
    base: Mig, realization: Realization
) -> Optional[OracleFailure]:
    """Sequential-vs-placed differential for one realization."""
    from ..crossbar import MappingError, check_placed, map_program

    check = f"crossbar-{realization.value}"
    mig = base.clone()
    report = compile_mig(mig, realization)
    program = report.program
    try:
        placed = map_program(program)
    except MappingError as error:
        return OracleFailure(
            check, f"auto-fit mapping refused a compilable program: {error}"
        )
    if placed.num_parallel_steps > program.num_steps:
        return OracleFailure(
            check,
            f"parallel schedule ({placed.num_parallel_steps} steps) "
            f"exceeds sequential S={program.num_steps}",
        )
    try:
        check_placed(placed)
    except MappingError as error:
        return OracleFailure(check, f"legality audit failed: {error}")
    parallel = placed.as_program()
    num_inputs = program.num_inputs
    for chunk in iter_assignment_chunks(num_inputs):
        sequential_words = execute_program_slices(
            program, chunk.slices, chunk.mask, validate=False
        )
        parallel_words = execute_program_slices(
            parallel, chunk.slices, chunk.mask, validate=False
        )
        for sequential_word, parallel_word in zip(
            sequential_words, parallel_words
        ):
            mismatch = first_difference(sequential_word, parallel_word)
            if mismatch >= 0:
                assignment = chunk.start + mismatch
                return OracleFailure(
                    check,
                    f"placed schedule diverges on assignment "
                    f"{assignment:0{num_inputs}b}",
                )
    return None


def check_case(
    netlist: Netlist,
    mig: Optional[Mig] = None,
    *,
    effort: int = 4,
    checks: Optional[List[str]] = None,
) -> Optional[OracleFailure]:
    """Run the full differential oracle on one circuit.

    ``mig`` optionally supplies the structured MIG the netlist was
    exported from (it may carry dead nodes the netlist cannot express).
    ``checks`` restricts to a subset of :data:`CHECKS` — the shrinker
    uses this to re-test only the check that originally failed.
    """
    enabled = set(checks) if checks is not None else None

    def on(check: str) -> bool:
        # Prefix-tolerant: a crash inside the representation block is
        # attributed to "xrep", which must still match "xrep-bdd" when
        # the shrinker re-runs only the originally failing check.
        if enabled is None:
            return True
        return any(
            check.startswith(c) or c.startswith(check) for c in enabled
        )

    if on("xrep"):
        failure = _guarded("xrep", lambda: _check_representations(netlist))
        if failure is not None:
            return failure

    base = mig if mig is not None else mig_from_netlist(netlist)

    for name, runner in _FLOWS:
        if not on(name):
            continue
        failure = _guarded(
            name, lambda: _check_flow(name, runner, base, netlist, effort)
        )
        if failure is not None:
            return failure

    if on("costview-diff"):
        failure = _guarded(
            "costview-diff",
            lambda: _check_costview_differential(base, netlist),
        )
        if failure is not None:
            return failure

    if on("tx-diff"):
        failure = _guarded(
            "tx-diff",
            lambda: _check_tx_differential(base, netlist, effort),
        )
        if failure is not None:
            return failure

    if on("graph-diff"):
        failure = _guarded(
            "graph-diff",
            lambda: _check_graph_differential(netlist, effort),
        )
        if failure is not None:
            return failure

    if on("batch-diff"):
        failure = _guarded(
            "batch-diff",
            lambda: _check_batch_differential(netlist, effort),
        )
        if failure is not None:
            return failure

    for realization in (Realization.IMP, Realization.MAJ):
        check = f"compile-{realization.value}"
        if not on(check):
            continue
        failure = _guarded(
            check,
            lambda: _check_compile(base, netlist, realization, effort),
        )
        if failure is not None:
            return failure

    if on("plim-exec") and len(netlist.inputs) <= 8:
        failure = _guarded("plim-exec", lambda: _check_plim(base, netlist))
        if failure is not None:
            return failure

    if len(netlist.inputs) <= 8:
        for realization in (Realization.IMP, Realization.MAJ):
            check = f"crossbar-{realization.value}"
            if not on(check):
                continue
            failure = _guarded(
                check, lambda: _check_crossbar(base, realization)
            )
            if failure is not None:
                return failure

    return None
