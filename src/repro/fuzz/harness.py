"""The fuzzing campaign driver behind ``repro-synth fuzz``.

Two campaign modes share one time budget and one seed:

* **differential** (default) — round-robin the generators, run every
  case through the full oracle (:mod:`repro.fuzz.oracle`); any failure
  is delta-debugged to a minimal reproducer and persisted as a bundle.
* **fault injection** (``fault_classes`` non-empty) — sweep single
  faults of each class over compiled programs of the small-circuit
  corpus (bundled benchmarks first, generated circuits after) and
  measure how often the functional verifier catches them.  Misses —
  faults that corrupted an internal sensed value yet were masked at
  every output — are shrunk and bundled exactly like oracle failures.

Everything is deterministic in ``(seed, case index)``; the wall-clock
budget only decides *how many* cases run, never what any case does, so
every failure replays from the seed recorded in its bundle.

With ``jobs > 1`` the per-case work (:func:`run_case`) fans out across
worker processes in waves (:func:`repro.parallel.run_ordered_stream`);
outcomes aggregate in case order, worker-side stage profiles are
summed into the report instead of dying with the worker, and shrinking
plus bundle writing stay in the parent so ``out_dir`` is written from
one process only.  A case's verdict never depends on the job count —
only how many cases fit the time budget does (exactly as wall-clock
already did sequentially).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..benchmarks import fuzz_corpus_names, load_netlist
from ..mig import Realization, mig_from_netlist
from ..network import Netlist
from ..parallel import merge_counters, run_ordered_stream
from ..parallel.workers import fuzz_case_task
from ..rram import (
    FAULT_CLASSES,
    FaultCampaignStats,
    clean_references,
    compile_mig,
    enumerate_fault_models,
    probe_fault,
    verification_vectors,
)
from ..telemetry import metrics, publish_profile, span
from .generators import GENERATOR_KINDS, case_circuit
from .oracle import OracleFailure, check_case
from .shrink import shrink_netlist, write_bundle

DEFAULT_OUT_DIR = "results/fuzz"


@dataclass
class FuzzConfig:
    """One campaign's knobs (the CLI maps onto this 1:1)."""

    seconds: float = 30.0
    seed: int = 1
    effort: int = 4
    #: Empty → differential mode; else the fault classes to sweep.
    fault_classes: Tuple[str, ...] = ()
    out_dir: str = DEFAULT_OUT_DIR
    #: Hard case cap (mainly for tests); None = time budget only.
    max_cases: Optional[int] = None
    #: Max fault sites probed per (program, class); sites beyond this
    #: are randomly sampled, and the sampling is seeded.
    max_fault_sites: int = 48
    shrink_seconds: float = 10.0
    min_detection: float = 0.95
    #: Include the bundled small-benchmark corpus in the fault sweep.
    use_benchmark_corpus: bool = True
    #: Worker processes; 1 = run every case inline (no pool).
    jobs: int = 1

    def case_seed(self, index: int) -> int:
        """The deterministic per-case seed (recorded in bundles)."""
        return (self.seed * 1_000_003 + index) & 0x7FFFFFFF


@dataclass
class FuzzReport:
    """Everything one campaign learned."""

    config: FuzzConfig
    cases_run: int = 0
    elapsed: float = 0.0
    failures: List[Dict[str, object]] = field(default_factory=list)
    bundles: List[str] = field(default_factory=list)
    cases_by_kind: Dict[str, int] = field(default_factory=dict)
    fault_stats: Dict[str, FaultCampaignStats] = field(default_factory=dict)
    #: Seconds spent per stage (generate/oracle/faults/shrink).
    profile: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Campaign verdict: no oracle failures and every swept fault
        class at or above the detection floor."""
        if self.failures:
            return False
        return all(
            stats.detection_rate >= self.config.min_detection
            for stats in self.fault_stats.values()
        )

    def detection_summary(self) -> Dict[str, Dict[str, object]]:
        return {
            fault_class: {
                "sites": stats.sites,
                "detected": stats.detected,
                "missed": stats.missed,
                "latent": stats.latent,
                "detection_rate": round(stats.detection_rate, 4),
            }
            for fault_class, stats in self.fault_stats.items()
        }


def _charge(profile: Dict[str, float], stage: str, start: float) -> float:
    now = time.perf_counter()
    profile[stage] = profile.get(stage, 0.0) + (now - start)
    return now


def _shrink_and_bundle(
    report: FuzzReport,
    netlist: Netlist,
    predicate,
    case_id: str,
    info: Dict[str, object],
) -> None:
    config = report.config
    start = time.perf_counter()
    original_stats = netlist.stats()
    try:
        shrunk = shrink_netlist(
            netlist, predicate, max_seconds=config.shrink_seconds
        )
    except Exception:  # noqa: BLE001 - never lose the unshrunk repro
        shrunk = netlist
    _charge(report.profile, "shrink", start)
    info = dict(info)
    info["shrink"] = {
        "original": original_stats,
        "shrunk": shrunk.stats(),
    }
    bundle_dir = write_bundle(config.out_dir, case_id, shrunk, info)
    report.bundles.append(bundle_dir)


def run_case(
    config: FuzzConfig, index: int, corpus_names: Sequence[str]
) -> Dict[str, object]:
    """Run one campaign case — pure in ``(config, index, corpus_names)``.

    This is the unit the parallel scheduler ships to pool workers; it
    returns a picklable outcome (verdicts, stats, stage profile) and
    performs no I/O.  Shrinking and bundle writing happen in the
    parent, which regenerates the deterministic circuit from the
    provenance recorded here.
    """
    case_seed = config.case_seed(index)
    kind = GENERATOR_KINDS[index % len(GENERATOR_KINDS)]
    case_id = f"seed{config.seed}_case{index:04d}_{kind}"
    with span("fuzz.case", case_id=case_id, seed=case_seed, kind=kind):
        return _run_case_body(
            config, index, corpus_names, case_seed, kind, case_id
        )


def _run_case_body(
    config: FuzzConfig,
    index: int,
    corpus_names: Sequence[str],
    case_seed: int,
    kind: str,
    case_id: str,
) -> Dict[str, object]:
    profile: Dict[str, float] = {}
    if config.fault_classes:
        rng = random.Random(case_seed)
        realization = Realization.MAJ if index % 2 == 0 else Realization.IMP
        if index < len(corpus_names):
            name = corpus_names[index]
            netlist = load_netlist(name)
            case_id = f"seed{config.seed}_case{index:04d}_{name}"
            provenance: Dict[str, object] = {"benchmark": name}
        else:
            start = time.perf_counter()
            netlist, _ = case_circuit(kind, case_seed, small=True)
            _charge(profile, "generate", start)
            provenance = {"kind": kind, "seed": case_seed}
        provenance["realization"] = realization.value
        classes: Dict[str, FaultCampaignStats] = {}
        for fault_class in config.fault_classes:
            start = time.perf_counter()
            classes[fault_class] = _campaign_stats(
                netlist, fault_class, realization, rng, config.max_fault_sites
            )
            _charge(profile, "faults", start)
        return {
            "mode": "fault",
            "index": index,
            "case_id": case_id,
            "kind_label": provenance.get("benchmark", kind),
            "provenance": provenance,
            "realization": realization.value,
            "classes": classes,
            "profile": profile,
        }
    start = time.perf_counter()
    netlist, mig = case_circuit(kind, case_seed)
    start = _charge(profile, "generate", start)
    failure = check_case(netlist, mig, effort=config.effort)
    _charge(profile, "oracle", start)
    failure_info: Optional[Dict[str, object]] = None
    if failure is not None:
        failure.case = {"kind": kind, "seed": case_seed, "case_id": case_id}
        failure_info = failure.describe()
    return {
        "mode": "diff",
        "index": index,
        "case_id": case_id,
        "kind_label": kind,
        "kind": kind,
        "seed": case_seed,
        "failure": failure_info,
        "profile": profile,
    }


def _campaign_stats(
    netlist: Netlist,
    fault_class: str,
    realization: Realization,
    rng: random.Random,
    max_sites: int,
) -> FaultCampaignStats:
    """Sweep single faults of one class over one compiled program."""
    mig = mig_from_netlist(netlist)
    compiled = compile_mig(mig, realization)
    vectors = verification_vectors(mig.num_pis)
    references = clean_references(compiled.program, vectors)
    models = enumerate_fault_models(compiled.program, fault_class)
    if len(models) > max_sites:
        models = rng.sample(models, max_sites)
    stats = FaultCampaignStats(fault_class)
    for model in models:
        verdict = probe_fault(compiled, model, vectors, references)
        if verdict.detected:
            stats.detected += 1
        elif verdict.missed:
            stats.missed += 1
            stats.misses.append(verdict)
        else:
            stats.latent += 1
    return stats


def _netlist_has_miss(
    netlist: Netlist, fault_class: str, realization: Realization
) -> bool:
    """Shrinking predicate: the class still has a verification escape."""
    mig = mig_from_netlist(netlist)
    compiled = compile_mig(mig, realization)
    vectors = verification_vectors(mig.num_pis)
    references = clean_references(compiled.program, vectors)
    for model in enumerate_fault_models(compiled.program, fault_class):
        if probe_fault(compiled, model, vectors, references).missed:
            return True
    return False


def _case_netlist_from_provenance(
    provenance: Dict[str, object]
) -> Netlist:
    """Regenerate a case's circuit in the parent (determinism contract:
    cases are pure in their recorded provenance)."""
    if "benchmark" in provenance:
        return load_netlist(str(provenance["benchmark"]))
    return case_circuit(
        str(provenance["kind"]), int(provenance["seed"]), small=True  # type: ignore[arg-type]
    )[0]


def _absorb_outcome(report: FuzzReport, outcome: Dict[str, object]) -> None:
    """Fold one case outcome into the report, shrinking and bundling
    any failure in the parent process."""
    config = report.config
    merge_counters(report.profile, outcome.get("profile"))  # type: ignore[arg-type]
    registry = metrics()
    registry.counter("fuzz.cases").inc()
    registry.absorb(outcome.get("telemetry"))  # type: ignore[arg-type]
    label = str(outcome["kind_label"])
    report.cases_by_kind[label] = report.cases_by_kind.get(label, 0) + 1
    case_id = str(outcome["case_id"])

    if outcome["mode"] == "diff":
        failure = outcome["failure"]
        if failure is None:
            return
        report.failures.append(failure)  # type: ignore[arg-type]
        netlist, _ = case_circuit(
            str(outcome["kind"]), int(outcome["seed"])  # type: ignore[arg-type]
        )
        check = str(failure["check"])  # type: ignore[index]

        def same_check_fails(candidate: Netlist) -> bool:
            return (
                check_case(candidate, effort=config.effort, checks=[check])
                is not None
            )

        _shrink_and_bundle(
            report, netlist, same_check_fails, case_id, {"failure": failure}
        )
        return

    realization = Realization(str(outcome["realization"]))
    provenance: Dict[str, object] = dict(outcome["provenance"])  # type: ignore[arg-type]
    classes: Dict[str, FaultCampaignStats] = outcome["classes"]  # type: ignore[assignment]
    for fault_class, stats in classes.items():
        report.fault_stats.setdefault(
            fault_class, FaultCampaignStats(fault_class)
        ).merge(stats)
        if not stats.misses:
            continue
        netlist = _case_netlist_from_provenance(provenance)
        miss_labels = [v.model.label for v in stats.misses]
        _shrink_and_bundle(
            report,
            netlist,
            lambda candidate: _netlist_has_miss(
                candidate, fault_class, realization
            ),
            f"{case_id}_{fault_class}",
            {
                "failure": {
                    "check": f"fault-miss:{fault_class}",
                    "detail": (
                        f"{len(stats.misses)} exercised-but-undetected "
                        f"fault(s): {', '.join(miss_labels[:8])}"
                    ),
                    **provenance,
                },
                "fault": {
                    "class": fault_class,
                    "realization": realization.value,
                    "missed_sites": miss_labels,
                },
            },
        )


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run one campaign to its time budget; returns the full report.

    ``config.jobs > 1`` fans cases out across worker processes in
    waves; each case's verdict is identical to a sequential run — the
    budget (or ``max_cases``) only decides how many cases complete.
    """
    for fault_class in config.fault_classes:
        if fault_class not in FAULT_CLASSES:
            raise ValueError(
                f"unknown fault class {fault_class!r}; "
                f"expected one of {FAULT_CLASSES}"
            )
    report = FuzzReport(config=config)
    started = time.perf_counter()
    deadline = started + config.seconds
    fault_mode = bool(config.fault_classes)
    corpus_names: List[str] = (
        list(fuzz_corpus_names())
        if fault_mode and config.use_benchmark_corpus
        else []
    )

    def payloads() -> Iterator[Tuple[FuzzConfig, int, List[str]]]:
        index = 0
        while config.max_cases is None or index < config.max_cases:
            yield (config, index, corpus_names)
            index += 1

    def within_budget() -> bool:
        return time.perf_counter() < deadline

    for outcome in run_ordered_stream(
        fuzz_case_task,
        payloads(),
        jobs=max(1, config.jobs),
        should_continue=within_budget,
    ):
        _absorb_outcome(report, outcome)
        report.cases_run += 1

    report.elapsed = time.perf_counter() - started
    publish_profile(report.profile)
    return report
