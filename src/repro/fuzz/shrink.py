"""Delta-debugging case shrinking and on-disk repro bundles.

When the oracle (or the fault campaign) trips on a generated circuit,
the raw case is rarely the story — a 30-gate soup hides the 3-gate
interaction that actually matters.  :func:`shrink_netlist` minimizes a
failing netlist against an arbitrary predicate with three reduction
passes run to fixpoint:

1. **output reduction** — keep the smallest output subset that still
   fails (single outputs first, then ddmin-style halves);
2. **gate collapse** — replace each gate by one of its operands or a
   constant, dropping its whole cone when nothing else references it;
3. **input pruning** — drop primary inputs no surviving gate reads.

Every candidate is re-validated and re-tested through the predicate, so
the result is *by construction* a failing circuit.  The shrunk case is
persisted by :func:`write_bundle` as a ``.blif`` plus a JSON metadata
file under ``results/fuzz/`` — everything needed to replay the failure
(`repro-synth synth results/fuzz/<case>/repro.blif` or the recorded
seed) without the fuzzing session that found it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..io import save_blif, write_blif
from ..network import Gate, GateType, Netlist

Predicate = Callable[[Netlist], bool]

DEFAULT_SHRINK_SECONDS = 15.0


def _with_outputs(netlist: Netlist, outputs: Sequence[str]) -> Netlist:
    """A copy of ``netlist`` exposing only ``outputs``."""
    reduced = Netlist(netlist.name)
    for name in netlist.inputs:
        reduced.add_input(name)
    for gate in netlist.gates():
        reduced.add_gate(gate.name, gate.gate_type, gate.operands)
    for name in outputs:
        reduced.set_output(name)
    return reduced


def _collapse_gate(
    netlist: Netlist, victim: str, replacement: Optional[str]
) -> Optional[Netlist]:
    """A copy with gate ``victim`` removed and its net rewired to
    ``replacement`` (another net, or None for constant 0)."""
    reduced = Netlist(netlist.name)
    for name in netlist.inputs:
        reduced.add_input(name)
    const_name = "_shrink_const0"
    already_has_const = any(
        gate.name == const_name for gate in netlist.gates()
    )
    needs_const = replacement is None and not already_has_const
    substitute = const_name if replacement is None else replacement

    def rewire(net: str) -> str:
        return substitute if net == victim else net

    if needs_const:
        reduced.add_gate(const_name, GateType.CONST0, ())
    for gate in netlist.gates():
        if gate.name == victim:
            continue
        reduced.add_gate(
            gate.name, gate.gate_type, [rewire(op) for op in gate.operands]
        )
    for name in netlist.outputs:
        reduced.set_output(rewire(name))
    try:
        reduced.validate()
    except Exception:  # noqa: BLE001 - rejected candidate, not an error
        return None
    return reduced


def _prune(netlist: Netlist) -> Netlist:
    """Drop gates no output depends on and inputs nothing reads."""
    needed: set = set()
    stack = list(netlist.outputs)
    while stack:
        net = stack.pop()
        if net in needed:
            continue
        needed.add(net)
        if net not in netlist.inputs:
            stack.extend(netlist.gate(net).operands)
    reduced = Netlist(netlist.name)
    for name in netlist.inputs:
        if name in needed:
            reduced.add_input(name)
    for gate in netlist.gates():
        if gate.name in needed:
            reduced.add_gate(gate.name, gate.gate_type, gate.operands)
    for name in netlist.outputs:
        reduced.set_output(name)
    reduced.validate()
    return reduced


def shrink_netlist(
    netlist: Netlist,
    predicate: Predicate,
    *,
    max_seconds: float = DEFAULT_SHRINK_SECONDS,
) -> Netlist:
    """Minimize ``netlist`` while ``predicate`` keeps returning True.

    The predicate must already hold on ``netlist`` (the caller observed
    the failure); it is assumed deterministic.  Predicate exceptions
    count as "does not fail" so shrinking never escalates one bug into
    another silently.
    """

    deadline = time.perf_counter() + max_seconds

    def still_fails(candidate: Optional[Netlist]) -> bool:
        if candidate is None:
            return False
        try:
            return bool(predicate(candidate))
        except Exception:  # noqa: BLE001 - different crash ≠ same bug
            return False

    current = _prune(netlist)
    if not still_fails(current):
        current = netlist  # pruning changed the behaviour; keep raw

    # Pass 1: output reduction (single outputs, then halves).
    outputs = current.outputs
    if len(outputs) > 1:
        for name in outputs:
            candidate = _with_outputs(current, [name])
            if still_fails(_prune(candidate)):
                current = _prune(candidate)
                break
        else:
            half = len(outputs) // 2
            for subset in (outputs[:half], outputs[half:]):
                if not subset:
                    continue
                candidate = _with_outputs(current, subset)
                if still_fails(_prune(candidate)):
                    current = _prune(candidate)
                    break

    # Pass 2/3: gate collapse to fixpoint, pruning as we go.
    progress = True
    while progress and time.perf_counter() < deadline:
        progress = False
        gates: List[Gate] = list(current.gates())
        # Deepest-last order: collapsing near the outputs first removes
        # the most logic per accepted step.
        for gate in reversed(gates):
            if time.perf_counter() >= deadline:
                break
            replacements: List[Optional[str]] = list(gate.operands) + [None]
            for replacement in replacements:
                if replacement == gate.name:
                    continue
                candidate = _collapse_gate(current, gate.name, replacement)
                if candidate is None:
                    continue
                candidate = _prune(candidate)
                if still_fails(candidate):
                    current = candidate
                    progress = True
                    break
            else:
                continue
            break  # restart the sweep over the shrunken netlist
    return current


def write_bundle(
    out_dir: str,
    case_id: str,
    netlist: Netlist,
    info: Dict[str, object],
) -> str:
    """Persist one repro bundle; returns the bundle directory.

    Layout: ``<out_dir>/<case_id>/repro.blif`` (the shrunk circuit) and
    ``repro.json`` (generator seed, failing check, fault descriptor,
    shrink statistics — whatever the caller recorded in ``info``).
    """
    bundle_dir = os.path.join(out_dir, case_id)
    os.makedirs(bundle_dir, exist_ok=True)
    blif_path = os.path.join(bundle_dir, "repro.blif")
    save_blif(netlist, blif_path)
    payload = dict(info)
    payload.setdefault("circuit", {})
    payload["circuit"] = {
        **netlist.stats(),
        "name": netlist.name,
        **payload["circuit"],  # type: ignore[dict-item]
    }
    payload["files"] = {"blif": "repro.blif"}
    with open(os.path.join(bundle_dir, "repro.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return bundle_dir


def bundle_blif_text(netlist: Netlist) -> str:
    """The BLIF text a bundle would contain (for in-memory tests)."""
    return write_blif(netlist)
