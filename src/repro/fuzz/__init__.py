"""Differential fuzzing and fault-injection verification.

An always-on adversary for the synthesis stack: seeded random circuit
generators (:mod:`.generators`), a differential oracle cross-checking
every representation, optimizer flow, cost view, and compiled RRAM
program against each other (:mod:`.oracle`), delta-debugging case
shrinking with on-disk repro bundles (:mod:`.shrink`), and the
time-budgeted campaign driver behind ``repro-synth fuzz``
(:mod:`.harness`), including the fault-injection sensitivity sweep
built on :mod:`repro.rram.faults`.
"""

from .generators import (
    GENERATOR_KINDS,
    MigFuzzSpec,
    case_circuit,
    case_netlist,
    random_gate_netlist,
    random_mig,
    random_mig_netlist,
    random_table_netlist,
)
from .oracle import CHECKS, OracleFailure, check_case
from .shrink import shrink_netlist, write_bundle
from .harness import FuzzConfig, FuzzReport, run_fuzz

__all__ = [
    "GENERATOR_KINDS",
    "MigFuzzSpec",
    "case_circuit",
    "case_netlist",
    "random_gate_netlist",
    "random_mig",
    "random_mig_netlist",
    "random_table_netlist",
    "CHECKS",
    "OracleFailure",
    "check_case",
    "shrink_netlist",
    "write_bundle",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
]
