"""Seeded random circuit generators for the fuzzing harness.

Three complementary sources, so fuzzing is not limited to the 50 paper
benchmarks:

* :func:`random_mig` — *structured* MIGs built gate by gate with
  configurable complement density, reconvergence bias, and deliberate
  dead nodes.  This exercises the graph layer the way the optimizers
  see it (sorted triples, strashing, Ω.M reduction already applied).
* :func:`random_table_netlist` — netlists lowered from random truth
  tables via Shannon decomposition, covering function space uniformly
  rather than structure space.
* :func:`random_gate_netlist` — unstructured gate soups over the full
  primitive palette (including NAND/NOR/XNOR/MUX chains the paper
  benchmarks rarely produce), stressing the format writers and the
  three representation lowerings.

Everything is driven by explicit seeds: a (kind, seed, parameters)
triple always yields the same circuit, which is what makes every fuzz
failure replayable from its repro bundle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..mig import Mig, Signal, mig_from_truth_tables, mig_to_netlist, signal_not
from ..network import GateType, Netlist
from ..truth import TruthTable

#: Generator kinds the harness round-robins over.
GENERATOR_KINDS: Tuple[str, ...] = ("mig", "table", "gates")


@dataclass(frozen=True)
class MigFuzzSpec:
    """Parameters of one structured random MIG."""

    num_inputs: int
    num_gates: int
    num_outputs: int
    seed: int
    #: Probability that any operand / output edge is complemented.
    complement_density: float = 0.35
    #: Probability an operand is drawn from the most recent signals
    #: (high values produce deep reconvergent chains; low values
    #: produce wide, shallow fan-in).
    reconvergence: float = 0.5
    #: Fraction of gates deliberately left unreferenced by the outputs
    #: (dead logic the views and sweeps must ignore).
    dead_node_rate: float = 0.15

    def describe(self) -> dict:
        return {
            "kind": "mig",
            "num_inputs": self.num_inputs,
            "num_gates": self.num_gates,
            "num_outputs": self.num_outputs,
            "seed": self.seed,
            "complement_density": self.complement_density,
            "reconvergence": self.reconvergence,
            "dead_node_rate": self.dead_node_rate,
        }


def _maybe_complement(rng: random.Random, signal: Signal, density: float) -> Signal:
    return signal_not(signal) if rng.random() < density else signal


def random_mig(spec: MigFuzzSpec) -> Mig:
    """Build the structured random MIG described by ``spec``.

    Gates draw operands either from a recent window (reconvergence) or
    from the whole signal pool; the constant node is mixed in at low
    rate so AND/OR-shaped triples appear.  Because ``make_maj``
    strashes and Ω.M-reduces, the realized gate count can be below
    ``num_gates`` — the generator keeps creating until the target count
    of *distinct* gates is reached or the attempt budget runs out.
    """
    rng = random.Random(spec.seed)
    mig = Mig(f"fuzz_mig_{spec.seed:x}")
    pool: List[Signal] = [mig.add_pi(f"x{i}") for i in range(spec.num_inputs)]
    gate_signals: List[Signal] = []
    attempts = 0
    max_attempts = spec.num_gates * 8 + 32
    while len(gate_signals) < spec.num_gates and attempts < max_attempts:
        attempts += 1
        operands: List[Signal] = []
        for _ in range(3):
            if rng.random() < 0.06:
                operands.append(0)  # constant (complemented below → 1)
                continue
            window = max(3, len(pool) // 3)
            if gate_signals and rng.random() < spec.reconvergence:
                source = pool[-window:]
            else:
                source = pool
            operands.append(source[rng.randrange(len(source))])
        a, b, c = (
            _maybe_complement(rng, s, spec.complement_density)
            for s in operands
        )
        before = mig.num_nodes_allocated
        signal = mig.make_maj(a, b, c)
        if mig.num_nodes_allocated == before:
            continue  # reduced or strashed into an existing signal
        gate_signals.append(signal)
        pool.append(signal)

    candidates = gate_signals or pool
    live_share = [
        s
        for s in candidates
        if rng.random() >= spec.dead_node_rate or len(candidates) <= 2
    ]
    if not live_share:
        live_share = candidates[-1:]
    for index in range(spec.num_outputs):
        # Bias outputs toward late (deep) signals so depth is exercised.
        position = len(live_share) - 1 - min(
            index, rng.randrange(max(1, len(live_share)))
        )
        signal = live_share[max(0, position)]
        mig.add_po(
            _maybe_complement(rng, signal, spec.complement_density),
            f"f{index}",
        )
    return mig


def random_mig_netlist(spec: MigFuzzSpec) -> Netlist:
    """The structured random MIG of ``spec``, exported as a netlist."""
    netlist = mig_to_netlist(random_mig(spec))
    netlist.name = f"fuzz_mig_{spec.seed:x}"
    return netlist


def random_table_netlist(
    num_inputs: int, num_outputs: int, seed: int
) -> Netlist:
    """A netlist computing ``num_outputs`` random truth tables.

    Lowered through Shannon decomposition (``mig_from_truth_tables``),
    so the circuit realizes an *arbitrary* function — the corner the
    structural generators cannot reach.
    """
    rng = random.Random(seed)
    tables = [
        TruthTable(num_inputs, rng.getrandbits(1 << num_inputs))
        for _ in range(num_outputs)
    ]
    mig = mig_from_truth_tables(tables, f"fuzz_table_{seed:x}")
    netlist = mig_to_netlist(mig)
    netlist.name = f"fuzz_table_{seed:x}"
    return netlist


_GATE_PALETTE: Tuple[Tuple[GateType, int], ...] = (
    (GateType.AND, 2),
    (GateType.NAND, 2),
    (GateType.OR, 2),
    (GateType.NOR, 2),
    (GateType.XOR, 2),
    (GateType.XNOR, 2),
    (GateType.NOT, 1),
    (GateType.BUF, 1),
    (GateType.MAJ, 3),
    (GateType.MUX, 3),
    (GateType.AND, 3),  # n-ary variants as .bench files produce them
    (GateType.OR, 3),
)


def random_gate_netlist(
    seed: int,
    *,
    num_inputs: int = 5,
    num_gates: int = 16,
    num_outputs: int = 2,
) -> Netlist:
    """An unstructured random gate netlist over the full palette."""
    rng = random.Random(seed)
    netlist = Netlist(f"fuzz_gates_{seed:x}")
    nets = [netlist.add_input(f"x{i}") for i in range(num_inputs)]
    for index in range(num_gates):
        gate_type, arity = _GATE_PALETTE[rng.randrange(len(_GATE_PALETTE))]
        operands = [nets[rng.randrange(len(nets))] for _ in range(arity)]
        netlist.add_gate(f"g{index}", gate_type, operands)
        nets.append(f"g{index}")
    for _ in range(num_outputs):
        netlist.set_output(nets[rng.randrange(num_inputs, len(nets))])
    netlist.validate()
    return netlist


def case_circuit(
    kind: str, seed: int, *, small: bool = False
) -> Tuple[Netlist, "Mig | None"]:
    """The harness's per-case entry point: one seeded circuit of
    ``kind`` (round-robined from :data:`GENERATOR_KINDS`).

    Returns ``(netlist, mig)`` where ``mig`` is the raw structured MIG
    for the ``"mig"`` kind — kept separately because exporting to a
    netlist drops its deliberate dead nodes, which the oracle wants the
    optimizers and cost views to chew on.  ``small`` selects the
    tighter interface used by the fault campaign (exhaustive
    verification vectors stay cheap).
    """
    rng = random.Random(seed ^ 0x5EED)
    if kind == "mig":
        spec = MigFuzzSpec(
            num_inputs=rng.randint(3, 5 if small else 7),
            num_gates=rng.randint(6, 14 if small else 30),
            num_outputs=rng.randint(1, 2 if small else 3),
            seed=seed,
            complement_density=rng.choice((0.15, 0.35, 0.6)),
            reconvergence=rng.choice((0.2, 0.5, 0.8)),
            dead_node_rate=rng.choice((0.0, 0.15, 0.3)),
        )
        mig = random_mig(spec)
        netlist = mig_to_netlist(mig)
        netlist.name = mig.name
        return netlist, mig
    if kind == "table":
        return (
            random_table_netlist(
                rng.randint(3, 4 if small else 6),
                rng.randint(1, 2),
                seed,
            ),
            None,
        )
    if kind == "gates":
        return (
            random_gate_netlist(
                seed,
                num_inputs=rng.randint(3, 5 if small else 7),
                num_gates=rng.randint(6, 12 if small else 24),
                num_outputs=rng.randint(1, 3),
            ),
            None,
        )
    raise ValueError(f"unknown generator kind {kind!r}")


def case_netlist(kind: str, seed: int, *, small: bool = False) -> Netlist:
    """Netlist-only convenience wrapper over :func:`case_circuit`."""
    return case_circuit(kind, seed, small=small)[0]
