"""Machine-readable runtime benchmarking behind ``repro-synth bench``.

Two measurements, both appended to ``BENCH_runtime.json`` as entries
under an ``"entries"`` list (existing keys in the file are preserved,
so historical records like ``baseline_pre_costview`` survive):

* **table2** — wall-clock of the whole-set Table II flow at a given
  effort and job count, with the CostView profile counters merged
  across every (benchmark, config) cell.
* **fuzz-smoke** — the packed-kernel speedup claim: functional
  verification of compiled programs over the fuzz smoke corpus, timed
  once through the bit-packed engine (:func:`repro.rram.verify_window`)
  and once through the per-assignment scalar device simulator
  (:func:`repro.rram.run_program`), asserting identical verdicts and
  recording the ratio.
* **crossbar** — the crossbar mapping claim: the step-optimized flow
  mapped onto auto-fitted arrays (:func:`repro.flows.experiments.run_crossbar`),
  recording per-benchmark array geometry, utilization, and the
  parallel-steps/S ratio, with every cell asserted bit-identical to
  its sequential program.
* **tx-engine** — the transactional-rollback claim: each proposed flow
  (``rram``/``steps`` × ``imp``/``maj``) timed over the large set under
  the undo-journal engine and under the legacy clone-based engine,
  asserting identical per-benchmark gate totals (bit-identity) and
  recording both wall-clocks plus the speedup against the recorded
  ``baseline_pre_costview`` clone-based numbers.

* **scale** — the EPFL-class large-circuit tier: generated ripple
  adders / Wallace multipliers up to >100k MIG gates, each built and
  run through the Ω.I inverter-propagation flow with Table I R/S, wall
  time, and the optimizer counters (``moves_tried``/``predicted_skips``
  and the ``batch.*`` family) recorded per realization
  (:func:`bench_scale`).
* **batch-engine** — the batched trial-evaluation claim: the scale-tier
  Ω.I flow timed per realization with the batch kernels off and on
  (``repro.mig.batch``), asserting bit-identical graphs and non-batch
  counters, and recording both wall-clocks plus the speedup
  (:func:`bench_batch_engine`).

Every entry records ``seconds``, ``effort``, and ``graph_engine`` (the
slab/object storage-engine switch) — ``trace-report --validate``
enforces this schema on the ledger — and the file is written with
sorted keys so diffs stay reviewable.  Entries are plain dicts so
downstream tooling (CI trend checks, EXPERIMENTS.md tables) can consume
them without importing this module.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

DEFAULT_BENCH_PATH = "BENCH_runtime.json"


def _observe_flow_seconds(seconds: float) -> None:
    """Feed a flow wall-clock into the telemetry histogram."""
    from ..telemetry import metrics

    metrics().histogram("bench.flow_seconds").observe(round(seconds, 4))


def _machine_info() -> Dict[str, object]:
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def _entry_common(effort: Optional[int]) -> Dict[str, object]:
    """Fields every ledger entry must carry so diffs are comparable:
    the effort knob (None where the flow has no such knob), the graph
    storage engine the numbers were measured on, and the entry schema
    version (historical entries without the marker are implicitly
    version 1; ``repro.telemetry.ledger`` documents the versions)."""
    from ..mig.graph import graph_engine_name
    from ..telemetry import BENCH_SCHEMA_VERSION

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "effort": effort,
        "graph_engine": graph_engine_name(),
        **_machine_info(),
    }


def bench_table2(
    names: Optional[Sequence[str]] = None,
    *,
    effort: int = 10,
    jobs: int = 1,
    verify: bool = False,
) -> Dict[str, object]:
    """Time the whole-set Table II flow; returns one bench entry."""
    from .experiments import run_table2

    start = time.perf_counter()
    result = run_table2(list(names) if names else None, effort=effort,
                        verify=verify, jobs=jobs)
    seconds = time.perf_counter() - start
    _observe_flow_seconds(seconds)
    return {
        "kind": "table2",
        "seconds": round(seconds, 3),
        "jobs": jobs,
        "benchmarks": len(result.rows),
        "profile": result.merged_profile(),
        **_entry_common(effort),
    }


def _scalar_mismatch(program, mig) -> int:
    """Reference per-assignment sweep: first mismatch or -1.

    Deliberately the pre-packing implementation shape — one device-level
    :func:`repro.rram.run_program` replay per assignment — kept here so
    the speedup of the packed engine is measured against the real
    former hot path, and so ``bench`` re-checks verdict agreement
    between the two executors on every run.
    """
    from ..rram import run_program

    num_inputs = mig.num_pis
    for assignment in range(1 << num_inputs):
        vector = [bool((assignment >> i) & 1) for i in range(num_inputs)]
        words = [1 if bit else 0 for bit in vector]
        expected = [bool(w & 1) for w in mig.simulate_words(words, 1)]
        if run_program(program, vector) != expected:
            return assignment
    return -1


def bench_fuzz_smoke(*, jobs: int = 1) -> Dict[str, object]:
    """Measure packed-vs-scalar verification speedup on the fuzz corpus.

    Compiles every smoke-corpus benchmark for both realizations, then
    verifies each program exhaustively twice — packed engine vs scalar
    device simulator — requiring identical verdicts.  Returns one bench
    entry with both wall-clocks and the speedup ratio.
    """
    from ..benchmarks import fuzz_corpus_names, load_netlist
    from ..mig import Realization, mig_from_netlist
    from ..rram import compile_mig, find_first_mismatch

    compiled: List = []
    for name in fuzz_corpus_names():
        netlist = load_netlist(name)
        mig = mig_from_netlist(netlist)
        for realization in (Realization.IMP, Realization.MAJ):
            compiled.append((name, mig, compile_mig(mig, realization)))

    start = time.perf_counter()
    packed_verdicts = [
        find_first_mismatch(mig, report, jobs=jobs) is None
        for _name, mig, report in compiled
    ]
    packed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar_verdicts = [
        _scalar_mismatch(report.program, mig) < 0
        for _name, mig, report in compiled
    ]
    scalar_seconds = time.perf_counter() - start

    if packed_verdicts != scalar_verdicts:
        raise AssertionError(
            "packed and scalar verification disagree on the smoke corpus"
        )
    _observe_flow_seconds(packed_seconds)
    speedup = scalar_seconds / packed_seconds if packed_seconds > 0 else 0.0
    return {
        "kind": "fuzz-smoke",
        "seconds": round(packed_seconds + scalar_seconds, 4),
        "programs": len(compiled),
        "verdicts_all_pass": all(packed_verdicts),
        "packed_seconds": round(packed_seconds, 4),
        "scalar_seconds": round(scalar_seconds, 4),
        "speedup": round(speedup, 2),
        "jobs": jobs,
        **_entry_common(None),
    }


def bench_tx_engine(
    names: Optional[Sequence[str]] = None, *, effort: int = 10
) -> Dict[str, object]:
    """Time the proposed flows under both mutation engines.

    Runs ``optimize_rram``/``optimize_steps`` for both realizations
    over the large set (or ``names``), once with the transactional
    undo-journal engine and once with the legacy clone-based engine,
    requiring identical per-benchmark gate totals.  The recorded
    speedups are against ``baseline_pre_costview`` — the original
    whole-graph-clone implementation this engine replaces.
    """
    from ..benchmarks import large_names, load_mig
    from ..mig import (
        Realization,
        optimize_rram,
        optimize_steps,
        transaction_engine,
    )

    flows = {
        "rram_imp": lambda mig: optimize_rram(mig, Realization.IMP, effort),
        "rram_maj": lambda mig: optimize_rram(mig, Realization.MAJ, effort),
        "steps_imp": lambda mig: optimize_steps(mig, Realization.IMP, effort),
        "steps_maj": lambda mig: optimize_steps(mig, Realization.MAJ, effort),
    }
    corpus = list(names) if names else large_names()
    bench_start = time.perf_counter()
    entry: Dict[str, object] = {
        "kind": "tx-engine",
        "benchmarks": len(corpus),
        "flows": {},
        **_entry_common(effort),
    }
    baseline: Dict[str, float] = {}
    if os.path.exists(DEFAULT_BENCH_PATH):
        with open(DEFAULT_BENCH_PATH, "r", encoding="utf-8") as handle:
            baseline = (
                json.load(handle)
                .get("baseline_pre_costview", {})
                .get("whole_set_seconds", {})
            )

    for label, run in flows.items():
        timings: Dict[str, float] = {}
        totals: Dict[str, List] = {}
        profile: Dict[str, int] = {}
        for engine, enabled in (("tx", True), ("legacy", False)):
            with transaction_engine(enabled):
                start = time.perf_counter()
                sizes = []
                for name in corpus:
                    mig = load_mig(name)
                    result = run(mig)
                    sizes.append(mig.num_gates())
                    if enabled:
                        for key, value in (result.profile or {}).items():
                            profile[key] = profile.get(key, 0) + value
                timings[engine] = round(time.perf_counter() - start, 3)
                totals[engine] = sizes
                if enabled:
                    _observe_flow_seconds(timings[engine])
        if totals["tx"] != totals["legacy"]:
            raise AssertionError(
                f"{label}: transactional and clone-based engines diverge"
            )
        flow_entry: Dict[str, object] = {
            "tx_seconds": timings["tx"],
            "legacy_seconds": timings["legacy"],
            "total_gates": sum(totals["tx"]),
            "profile": profile,
        }
        recorded = baseline.get(label)
        if recorded:
            flow_entry["speedup_vs_clone_baseline"] = round(
                recorded / timings["tx"], 2
            )
        entry["flows"][label] = flow_entry  # type: ignore[index]
    entry["seconds"] = round(time.perf_counter() - bench_start, 3)
    return entry


def bench_crossbar(
    names: Optional[Sequence[str]] = None,
    *,
    effort: int = 10,
    jobs: int = 1,
) -> Dict[str, object]:
    """Measure crossbar mapping over the Table II set; one bench entry.

    Records, per benchmark and realization, the array geometry, cell
    utilization, and parallel-steps/S ratio, asserting on every cell
    that the row-parallel schedule never exceeds the sequential step
    count and is bit-identical to the sequential program under the
    packed kernels (``verify=True`` in the flow).
    """
    from .experiments import run_crossbar

    start = time.perf_counter()
    result = run_crossbar(
        list(names) if names else None, effort=effort, verify=True,
        jobs=jobs,
    )
    seconds = time.perf_counter() - start
    _observe_flow_seconds(seconds)
    benchmarks: Dict[str, object] = {}
    for name, row in result.rows.items():
        benchmarks[name] = {
            realization: {
                "array": f"{cell.width}x{cell.height}",
                "utilization": round(cell.utilization, 4),
                "sequential_steps": cell.sequential_steps,
                "parallel_steps": cell.parallel_steps,
                "parallel_over_s": round(cell.step_ratio, 4),
                "identical": cell.identical,
            }
            for realization, cell in row.items()
        }
    totals = result.totals()
    aggregate = {
        realization: {
            "sequential_steps": seq_total,
            "parallel_steps": par_total,
            "parallel_over_s": round(par_total / max(1, seq_total), 4),
        }
        for realization, (seq_total, par_total) in totals.items()
    }
    return {
        "kind": "crossbar",
        "seconds": round(seconds, 3),
        "jobs": jobs,
        "benchmarks": benchmarks,
        "totals": aggregate,
        **_entry_common(effort),
    }


def bench_scale(
    names: Optional[Sequence[str]] = None, *, effort: int = 2
) -> Dict[str, object]:
    """Time a synthesis flow over the EPFL-class *scale* tier.

    For each generated large circuit (``repro.benchmarks.scale`` —
    ripple adders and Wallace multipliers up to >100k MIG gates): build
    the MIG, then for each realization run the Ω.I inverter-propagation
    pass (``effort`` bounds its rounds) against an attached CostView and
    record Table I R/S before and after plus per-phase wall-clocks.
    The full Alg. 1–4 ladders are quadratic in graph size and stay
    restricted to the paper's corpus; Ω.I is the flow whose per-node
    cost is bounded, which is what makes the ≥100k-gate datapoint
    tractable at all (see PERFORMANCE.md).
    """
    from ..benchmarks.scale import load_scale_mig, scale_names
    from ..mig import CostView, Realization
    from ..mig.algorithms import inverter_propagation_pass

    corpus = list(names) if names else scale_names()
    benchmarks: Dict[str, object] = {}
    total_seconds = 0.0
    for name in corpus:
        build_start = time.perf_counter()
        base = load_scale_mig(name)
        build_seconds = time.perf_counter() - build_start
        cell: Dict[str, object] = {
            "gates": base.num_gates(),
            "build_seconds": round(build_seconds, 3),
        }
        for realization in (Realization.IMP, Realization.MAJ):
            mig = base.clone()
            view = CostView(mig)
            before = view.costs(realization)
            opt_start = time.perf_counter()
            inverter_propagation_pass(
                mig,
                realization,
                max_rounds=max(1, effort),
                view=view,
            )
            opt_seconds = time.perf_counter() - opt_start
            after = view.costs(realization)
            counters = view.counters.as_dict()
            cell[realization.value] = {
                "rrams_before": before.rrams,
                "steps_before": before.steps,
                "rrams": after.rrams,
                "steps": after.steps,
                "depth": after.depth,
                "optimize_seconds": round(opt_seconds, 3),
                # The batching win must show in the perf trajectory,
                # not just wall time (see docs/PERFORMANCE.md).
                "counters": {
                    key: counters[key]
                    for key in (
                        "moves_tried",
                        "predicted_skips",
                        "batch_score_calls",
                        "batch_candidates_scored",
                        "batch_group_calls",
                        "batch_strash_probes",
                    )
                },
            }
            total_seconds += opt_seconds
        total_seconds += build_seconds
        benchmarks[name] = cell
        _observe_flow_seconds(build_seconds)
    return {
        "kind": "scale",
        "seconds": round(total_seconds, 3),
        "benchmarks": benchmarks,
        **_entry_common(effort),
    }


def bench_batch_engine(
    names: Optional[Sequence[str]] = None, *, effort: int = 1
) -> Dict[str, object]:
    """Measure the batched trial-evaluation speedup on the scale tier.

    For each scale benchmark (default: ``wallace128``, the ≥100k-gate
    datapoint) and each realization, runs the Ω.I inverter-propagation
    flow once with the batch kernels disabled and once enabled
    (:class:`repro.mig.batch.batch_evaluation`), requiring bit-identical
    result graphs and identical non-batch CostView counters, and
    records both wall-clocks plus the ratio.  One bench entry.
    """
    from ..benchmarks.scale import load_scale_mig
    from ..mig import CostView, Realization, batch_evaluation
    from ..mig.algorithms import inverter_propagation_pass
    from ..mig.costview import CostViewCounters

    corpus = list(names) if names else ["wallace128"]
    benchmarks: Dict[str, object] = {}
    total_seconds = 0.0
    for name in corpus:
        base = load_scale_mig(name)
        cell: Dict[str, object] = {"gates": base.num_gates()}
        for realization in (Realization.IMP, Realization.MAJ):
            timings: Dict[str, float] = {}
            graphs: Dict[str, List] = {}
            counters: Dict[str, Dict[str, int]] = {}
            for label, enabled in (("scalar", False), ("batch", True)):
                mig = base.clone()
                view = CostView(mig)
                with batch_evaluation(enabled):
                    start = time.perf_counter()
                    inverter_propagation_pass(
                        mig,
                        realization,
                        max_rounds=max(1, effort),
                        view=view,
                    )
                    timings[label] = time.perf_counter() - start
                graphs[label] = [
                    mig.children(node) for node in mig.reachable_nodes()
                ]
                counters[label] = view.counters.as_dict()
            if graphs["scalar"] != graphs["batch"]:
                raise AssertionError(
                    f"{name}/{realization.value}: batch and scalar "
                    "optimizer runs diverge"
                )
            batch_only = set(CostViewCounters.BATCH_ONLY)
            for key, value in counters["scalar"].items():
                if key not in batch_only and counters["batch"][key] != value:
                    raise AssertionError(
                        f"{name}/{realization.value}: counter {key} "
                        f"diverges ({value} scalar vs "
                        f"{counters['batch'][key]} batch)"
                    )
            total_seconds += timings["scalar"] + timings["batch"]
            cell[realization.value] = {
                "scalar_seconds": round(timings["scalar"], 4),
                "batch_seconds": round(timings["batch"], 4),
                "speedup": round(
                    timings["scalar"] / timings["batch"], 2
                )
                if timings["batch"] > 0
                else 0.0,
                "batch_score_calls": counters["batch"]["batch_score_calls"],
                "batch_candidates_scored": counters["batch"][
                    "batch_candidates_scored"
                ],
            }
            _observe_flow_seconds(timings["batch"])
        benchmarks[name] = cell
    return {
        "kind": "batch-engine",
        "seconds": round(total_seconds, 3),
        "benchmarks": benchmarks,
        **_entry_common(effort),
    }


def append_bench_entry(
    entry: Dict[str, object], path: str = DEFAULT_BENCH_PATH
) -> Dict[str, object]:
    """Append one entry to the bench file, preserving existing keys."""
    data: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    entries = data.setdefault("entries", [])
    if not isinstance(entries, list):  # defensive: never clobber data
        raise ValueError(f"{path}: 'entries' exists but is not a list")
    entries.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data
