"""Plain-text rendering of the reproduced tables.

The renderers print each measured row next to the paper's published
number (from :mod:`repro.benchmarks.paperdata`), in the layout of the
original tables, so a reader can eyeball shape agreement directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..benchmarks import benchmark, paperdata
from .experiments import (
    CrossbarResult,
    SummaryStatistics,
    Table2Result,
    Table3Result,
)

_CONFIG_TITLES = {
    "area_imp": "Area-IMP",
    "depth_imp": "Depth-IMP",
    "rram_imp": "RRAM-IMP",
    "rram_maj": "RRAM-MAJ",
    "step_imp": "Step-IMP",
    "step_maj": "Step-MAJ",
}


def _pair(value: Tuple[int, int]) -> str:
    return f"{value[0]:>6d} {value[1]:>5d}"


def render_table2(result: Table2Result, *, with_paper: bool = True) -> str:
    """Render a Table II run (optionally with the published numbers)."""
    lines: List[str] = []
    header = f"{'benchmark':<11s}"
    for config in _CONFIG_TITLES.values():
        header += f" | {config + ' R':>8s} {'S':>5s}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in result.rows.items():
        line = f"{name:<11s}"
        for config in _CONFIG_TITLES:
            cell = row[config]
            line += f" | {cell.rrams:>8d} {cell.steps:>5d}"
        lines.append(line)
        if with_paper and name in paperdata.TABLE2:
            paper_line = f"{'  (paper)':<11s}"
            for config in _CONFIG_TITLES:
                pr, ps = paperdata.TABLE2[name][config]
                paper_line += f" | {pr:>8d} {ps:>5d}"
            lines.append(paper_line)
    totals = result.totals()
    total_line = f"{'SUM':<11s}"
    for config in _CONFIG_TITLES:
        r_total, s_total = totals[config]
        total_line += f" | {r_total:>8d} {s_total:>5d}"
    lines.append("-" * len(header))
    lines.append(total_line)
    if with_paper:
        paper_total = f"{'SUM (paper)':<11s}"
        for config in _CONFIG_TITLES:
            pr, ps = paperdata.TABLE2_TOTALS[config]
            paper_total += f" | {pr:>8d} {ps:>5d}"
        lines.append(paper_total)
    return "\n".join(lines)


def render_table3(result: Table3Result, *, with_paper: bool = True) -> str:
    """Render a Table III run (either half)."""
    is_bdd = result.baseline == "bdd"
    title = "BDD [11]" if is_bdd else "AIG [12]"
    lines: List[str] = []
    header = (
        f"{'benchmark':<11s} | {title + ' R':>9s} {'S':>6s}"
        f" | {'MIG-IMP R':>9s} {'S':>5s} | {'MIG-MAJ R':>9s} {'S':>5s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in result.rows.items():
        base_r = f"{row.baseline_rrams:>9d}" if row.baseline_rrams is not None else "        -"
        line = (
            f"{name:<11s} | {base_r} {row.baseline_steps:>6d}"
            f" | {row.mig_imp[0]:>9d} {row.mig_imp[1]:>5d}"
            f" | {row.mig_maj[0]:>9d} {row.mig_maj[1]:>5d}"
        )
        if row.note:
            line += f"   # {row.note}"
        lines.append(line)
        if with_paper:
            paper_cells = _paper_table3_row(result.baseline, name)
            if paper_cells is not None:
                lines.append(f"{'  (paper)':<11s} | {paper_cells}")
    totals = result.totals()
    lines.append("-" * len(header))
    lines.append(
        f"{'SUM':<11s} | {'':>9s} {totals['baseline_steps']:>6d}"
        f" | {totals['mig_imp_rrams']:>9d} {totals['mig_imp_steps']:>5d}"
        f" | {totals['mig_maj_rrams']:>9d} {totals['mig_maj_steps']:>5d}"
    )
    maj_ratio, imp_ratio = result.step_ratios()
    lines.append(
        f"step ratios: {title}/MIG-MAJ = {maj_ratio:.1f}x, "
        f"{title}/MIG-IMP = {imp_ratio:.1f}x"
    )
    if with_paper:
        if is_bdd:
            pr, ps = paperdata.TABLE3_BDD_TOTALS
            lines.append(
                f"paper totals: BDD R={pr} S={ps}; paper step ratio "
                f"BDD/MIG-MAJ ≈ {paperdata.PAPER_CLAIMS['bdd_over_mig_maj_steps']}x"
            )
        else:
            s, imp, maj = paperdata.TABLE3_AIG_TOTALS
            lines.append(
                f"paper totals: AIG S={s}, MIG-IMP {imp}, MIG-MAJ {maj}; "
                f"paper ratios ≈ {paperdata.PAPER_CLAIMS['aig_over_mig_maj_steps']}x (MAJ), "
                f"{paperdata.PAPER_CLAIMS['aig_over_mig_imp_steps']}x (IMP)"
            )
    return "\n".join(lines)


def _paper_table3_row(baseline: str, name: str) -> Optional[str]:
    if baseline == "bdd":
        pair = paperdata.TABLE3_BDD.get(name)
        mig = paperdata.TABLE2.get(name)
        if pair is None or mig is None:
            return None
        imp = mig["rram_imp"]
        maj = mig["rram_maj"]
        return (
            f"{pair[0]:>9d} {pair[1]:>6d}"
            f" | {imp[0]:>9d} {imp[1]:>5d} | {maj[0]:>9d} {maj[1]:>5d}"
        )
    entry = paperdata.TABLE3_AIG.get(name)
    if entry is None:
        return None
    steps, imp, maj = entry
    return (
        f"{'-':>9s} {steps:>6d}"
        f" | {imp[0]:>9d} {imp[1]:>5d} | {maj[0]:>9d} {maj[1]:>5d}"
    )


def render_crossbar(result: CrossbarResult) -> str:
    """Render a crossbar mapping run: the geometry columns the scalar
    cost model cannot express (array, utilization, parallel steps)."""
    lines: List[str] = []
    header = f"{'benchmark':<11s}"
    for title in ("IMP", "MAJ"):
        header += (
            f" | {title + ' array':>10s} {'util':>5s}"
            f" {'S':>5s} {'par':>5s} {'ratio':>5s}"
        )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in result.rows.items():
        line = f"{name:<11s}"
        for realization in ("imp", "maj"):
            cell = row.get(realization)
            if cell is None:
                line += f" | {'-':>10s} {'-':>5s} {'-':>5s} {'-':>5s} {'-':>5s}"
                continue
            array = f"{cell.width}x{cell.height}"
            line += (
                f" | {array:>10s} {cell.utilization:>5.2f}"
                f" {cell.sequential_steps:>5d} {cell.parallel_steps:>5d}"
                f" {cell.step_ratio:>5.2f}"
            )
        lines.append(line)
    totals = result.totals()
    lines.append("-" * len(header))
    total_line = f"{'SUM':<11s}"
    for realization in ("imp", "maj"):
        seq_total, par_total = totals[realization]
        ratio = par_total / max(1, seq_total)
        total_line += (
            f" | {'':>10s} {'':>5s} {seq_total:>5d} {par_total:>5d}"
            f" {ratio:>5.2f}"
        )
    lines.append(total_line)
    verified = [
        cell.identical
        for row in result.rows.values()
        for cell in row.values()
        if cell.identical is not None
    ]
    if verified:
        status = "PASS" if all(verified) else "FAIL"
        lines.append(
            f"mapped-vs-sequential bit identity: {status} "
            f"({len(verified)} cells)"
        )
    return "\n".join(lines)


def render_summary(stats: SummaryStatistics, *, with_paper: bool = True) -> str:
    """Render the Sec. IV-B aggregate percentages."""
    claims = paperdata.PAPER_CLAIMS
    rows = [
        ("multi-objective (IMP) steps vs area opt", stats.rram_imp_steps_vs_area,
         claims["rram_imp_steps_vs_area"]),
        ("multi-objective (IMP) steps vs depth opt", stats.rram_imp_steps_vs_depth,
         claims["rram_imp_steps_vs_depth"]),
        ("multi-objective (MAJ) RRAMs vs step opt", stats.rram_maj_rrams_vs_step,
         claims["rram_maj_rrams_vs_step"]),
        ("multi-objective (MAJ) step penalty vs step opt",
         stats.rram_maj_steps_penalty_vs_step,
         claims["rram_maj_steps_penalty_vs_step"]),
    ]
    lines = [f"{'aggregate claim':<48s} {'measured':>9s} {'paper':>8s}"]
    for label, measured, paper_value in rows:
        paper_cell = f"{paper_value:>7.1%}" if with_paper else ""
        lines.append(f"{label:<48s} {measured:>8.1%} {paper_cell:>8s}")
    return "\n".join(lines)
