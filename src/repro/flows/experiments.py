"""One-call reproduction of the paper's experiments.

``run_table2`` reproduces Table II (six algorithm/realization
configurations over the large benchmark set), ``run_table3_bdd`` and
``run_table3_aig`` the two halves of Table III, and ``summarize_*``
compute the aggregate percentages and ratios the paper quotes in
Sec. IV.  Every run can verify functional equivalence of the optimized
graphs against the original circuits.

Whole-set runs shard per ``(benchmark, configuration)`` cell across
worker processes (``jobs > 1``) through the deterministic scheduler in
:mod:`repro.parallel`: every cell is a pure function of its payload,
results aggregate in submission order, and worker-side CostView
profiling counters are summed into the result — so the rendered tables
are byte-identical for any job count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..parallel import merged_counters, run_ordered
from ..parallel.workers import crossbar_task, table2_task, table3_task
from ..telemetry import metrics, publish_profile, span

from ..aig import aig_from_netlist, aig_rram_costs
from ..bdd import BddOverflowError, bdd_rram_costs, build_best_order
from ..mig import (
    EquivalenceGuard,
    Mig,
    Realization,
    mig_from_netlist,
    optimize_area,
    optimize_depth,
    optimize_rram,
    optimize_steps,
    rram_costs,
)
from ..benchmarks import large_names, load_netlist, small_names

#: The six Table II configurations: name → (optimizer, cost realization).
TABLE2_CONFIGS: Dict[str, Tuple[Callable[..., object], Realization]] = {
    "area_imp": (lambda mig, effort: optimize_area(mig, effort), Realization.IMP),
    "depth_imp": (lambda mig, effort: optimize_depth(mig, effort), Realization.IMP),
    "rram_imp": (
        lambda mig, effort: optimize_rram(mig, Realization.IMP, effort),
        Realization.IMP,
    ),
    "rram_maj": (
        lambda mig, effort: optimize_rram(mig, Realization.MAJ, effort),
        Realization.MAJ,
    ),
    "step_imp": (
        lambda mig, effort: optimize_steps(mig, Realization.IMP, effort),
        Realization.IMP,
    ),
    "step_maj": (
        lambda mig, effort: optimize_steps(mig, Realization.MAJ, effort),
        Realization.MAJ,
    ),
}

DEFAULT_EFFORT = 40


@dataclass
class ConfigResult:
    """Measured (R, S) of one benchmark under one configuration."""

    rrams: int
    steps: int
    depth: int
    size: int
    runtime_seconds: float
    verified: Optional[bool] = None
    #: CostView counters of the optimizer run (None when the optimizer
    #: ran without a view); summed across cells/workers by
    #: :meth:`Table2Result.merged_profile`.
    profile: Optional[Dict[str, int]] = None

    def as_row(self) -> Tuple[int, int]:
        """``(R, S)`` — the two columns the paper tables report."""
        return (self.rrams, self.steps)


@dataclass
class Table2Result:
    """All configurations over the selected benchmarks."""

    rows: Dict[str, Dict[str, ConfigResult]] = field(default_factory=dict)
    effort: int = DEFAULT_EFFORT

    def totals(self) -> Dict[str, Tuple[int, int]]:
        """Σ row: per configuration, (ΣR, ΣS) over the benchmarks run."""
        sums: Dict[str, Tuple[int, int]] = {}
        for config in TABLE2_CONFIGS:
            r_total = sum(row[config].rrams for row in self.rows.values())
            s_total = sum(row[config].steps for row in self.rows.values())
            sums[config] = (r_total, s_total)
        return sums

    def benchmark_names(self) -> List[str]:
        """Benchmarks included in this run, in table order."""
        return list(self.rows)

    def merged_profile(self) -> Dict[str, int]:
        """CostView counters summed over every cell (and thus every
        worker when the run was sharded)."""
        return merged_counters(
            [
                cell.profile
                for row in self.rows.values()
                for cell in row.values()
            ]
        )

    def total_runtime(self) -> float:
        """Σ optimizer wall-clock over all cells (CPU-seconds, not
        elapsed time — the sum is job-count independent)."""
        return sum(
            cell.runtime_seconds
            for row in self.rows.values()
            for cell in row.values()
        )


def _verify_guard(mig: Mig) -> EquivalenceGuard:
    return EquivalenceGuard(mig, num_vectors=512)


def table2_cell(
    name: str, config: str, effort: int, verify: bool
) -> ConfigResult:
    """Compute one Table II cell — pure in its arguments.

    Both the inline path and the pool workers call exactly this
    function, which is what makes ``jobs=N`` bit-identical to
    ``jobs=1``.
    """
    netlist = load_netlist(name)
    optimizer, realization = TABLE2_CONFIGS[config]
    mig = mig_from_netlist(netlist)
    guard = _verify_guard(mig) if verify else None
    start = time.perf_counter()
    with span("table2.cell", benchmark=name, config=config):
        opt_result = optimizer(mig, effort)
    elapsed = time.perf_counter() - start
    verified = guard.verify() if guard is not None else None
    if verified is False:
        raise AssertionError(
            f"{name}/{config}: optimization changed the function"
        )
    publish_profile(getattr(opt_result, "profile", None))
    costs = rram_costs(mig, realization)
    return ConfigResult(
        rrams=costs.rrams,
        steps=costs.steps,
        depth=costs.depth,
        size=costs.size,
        runtime_seconds=elapsed,
        verified=verified,
        profile=getattr(opt_result, "profile", None),
    )


def run_table2(
    names: Optional[Sequence[str]] = None,
    *,
    effort: int = DEFAULT_EFFORT,
    verify: bool = True,
    configs: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> Table2Result:
    """Reproduce Table II over ``names`` (default: all 25 large).

    ``jobs > 1`` shards the (benchmark × configuration) cells across
    worker processes; the result is bit-identical to ``jobs=1``.
    """
    result = Table2Result(effort=effort)
    selected_configs = list(configs or TABLE2_CONFIGS)
    selected_names = list(names or large_names())
    payloads = [
        (name, config, effort, verify)
        for name in selected_names
        for config in selected_configs
    ]
    registry = metrics()
    cells = run_ordered(table2_task, payloads, jobs=jobs)
    for name, config, cell, snapshot in cells:
        result.rows.setdefault(name, {})[config] = cell
        registry.absorb(snapshot)
    return result


@dataclass
class BaselineRow:
    """One benchmark in a Table III comparison."""

    baseline_rrams: Optional[int]
    baseline_steps: int
    mig_imp: Tuple[int, int]
    mig_maj: Tuple[int, int]
    note: str = ""


@dataclass
class Table3Result:
    """One half of Table III (BDD or AIG baseline vs the MIG flow)."""

    baseline: str
    rows: Dict[str, BaselineRow] = field(default_factory=dict)

    def totals(self) -> Dict[str, int]:
        """Σ row: aggregate step/RRAM counts over the benchmarks run."""
        steps_baseline = sum(r.baseline_steps for r in self.rows.values())
        return {
            "baseline_steps": steps_baseline,
            "mig_imp_steps": sum(r.mig_imp[1] for r in self.rows.values()),
            "mig_maj_steps": sum(r.mig_maj[1] for r in self.rows.values()),
            "mig_imp_rrams": sum(r.mig_imp[0] for r in self.rows.values()),
            "mig_maj_rrams": sum(r.mig_maj[0] for r in self.rows.values()),
        }

    def step_ratios(self) -> Tuple[float, float]:
        """(baseline/MIG-MAJ, baseline/MIG-IMP) aggregate step ratios."""
        totals = self.totals()
        return (
            totals["baseline_steps"] / max(1, totals["mig_maj_steps"]),
            totals["baseline_steps"] / max(1, totals["mig_imp_steps"]),
        )


def _mig_pair(
    netlist, realization: Realization, effort: int, verify: bool
) -> Tuple[int, int]:
    mig = mig_from_netlist(netlist)
    guard = _verify_guard(mig) if verify else None
    opt_result = optimize_rram(mig, realization, effort)
    if guard is not None and not guard.verify():
        raise AssertionError(f"{netlist.name}: optimization changed the function")
    publish_profile(getattr(opt_result, "profile", None))
    costs = rram_costs(mig, realization)
    return costs.as_row()


def table3_row(
    baseline: str,
    name: str,
    effort: int,
    verify: bool,
    *,
    node_limit: int = 600_000,
    sift: bool = False,
    sift_size_limit: int = 4000,
) -> BaselineRow:
    """Compute one Table III row — pure in its arguments (the unit the
    parallel scheduler shards per benchmark)."""
    netlist = load_netlist(name)
    note = ""
    if baseline == "bdd":
        from .experiments_sift import maybe_sift

        try:
            manager, roots, _order = build_best_order(
                netlist, candidates=2, node_limit=node_limit
            )
            if sift:
                manager, roots = maybe_sift(
                    manager, roots, size_limit=sift_size_limit
                )
            costs = bdd_rram_costs(manager, roots)
            baseline_rrams: Optional[int] = costs.rrams
            baseline_steps = costs.steps
        except BddOverflowError:
            baseline_rrams = None
            baseline_steps = 0
            note = f"BDD exceeded {node_limit} nodes"
    elif baseline == "aig":
        aig = aig_from_netlist(netlist)
        costs = aig_rram_costs(aig)
        baseline_rrams = costs.rrams
        baseline_steps = costs.steps
    else:
        raise ValueError(f"unknown baseline {baseline!r}")
    return BaselineRow(
        baseline_rrams=baseline_rrams,
        baseline_steps=baseline_steps,
        mig_imp=_mig_pair(netlist, Realization.IMP, effort, verify),
        mig_maj=_mig_pair(netlist, Realization.MAJ, effort, verify),
        note=note,
    )


def _run_table3(
    baseline: str,
    names: Sequence[str],
    effort: int,
    verify: bool,
    jobs: int,
    opts: Optional[Dict[str, object]] = None,
) -> Table3Result:
    result = Table3Result(baseline=baseline)
    payloads = [
        (baseline, name, effort, verify, dict(opts or {})) for name in names
    ]
    registry = metrics()
    for name, row, snapshot in run_ordered(table3_task, payloads, jobs=jobs):
        result.rows[name] = row
        registry.absorb(snapshot)
    return result


def run_table3_bdd(
    names: Optional[Sequence[str]] = None,
    *,
    effort: int = DEFAULT_EFFORT,
    verify: bool = True,
    node_limit: int = 600_000,
    sift: bool = False,
    sift_size_limit: int = 4000,
    jobs: int = 1,
) -> Table3Result:
    """Table III (left): BDD baseline [11] vs the multi-objective flow.

    ``sift=True`` additionally runs dynamic reordering on BDDs of up to
    ``sift_size_limit`` nodes, giving the baseline the best variable
    order we can find (the comparison is conservative either way: the
    default best-of-N static order is what [11]-era flows used).
    """
    return _run_table3(
        "bdd",
        list(names or large_names()),
        effort,
        verify,
        jobs,
        {
            "node_limit": node_limit,
            "sift": sift,
            "sift_size_limit": sift_size_limit,
        },
    )


def run_table3_aig(
    names: Optional[Sequence[str]] = None,
    *,
    effort: int = DEFAULT_EFFORT,
    verify: bool = True,
    jobs: int = 1,
) -> Table3Result:
    """Table III (right): AIG baseline [12] vs the multi-objective flow."""
    return _run_table3(
        "aig", list(names or small_names()), effort, verify, jobs
    )


@dataclass
class SummaryStatistics:
    """The Sec. IV-B aggregate claims, measured on our runs."""

    rram_imp_steps_vs_area: float
    rram_imp_steps_vs_depth: float
    rram_maj_rrams_vs_step: float
    rram_maj_steps_penalty_vs_step: float

    def as_dict(self) -> Dict[str, float]:
        """The four aggregate ratios, keyed like ``PAPER_CLAIMS``."""
        return {
            "rram_imp_steps_vs_area": self.rram_imp_steps_vs_area,
            "rram_imp_steps_vs_depth": self.rram_imp_steps_vs_depth,
            "rram_maj_rrams_vs_step": self.rram_maj_rrams_vs_step,
            "rram_maj_steps_penalty_vs_step": self.rram_maj_steps_penalty_vs_step,
        }


def summarize_table2(result: Table2Result) -> SummaryStatistics:
    """Compute the paper's Sec. IV-B percentages from a Table II run."""
    totals = result.totals()
    area_steps = totals["area_imp"][1]
    depth_steps = totals["depth_imp"][1]
    rram_imp_steps = totals["rram_imp"][1]
    rram_maj_rrams = totals["rram_maj"][0]
    rram_maj_steps = totals["rram_maj"][1]
    step_maj_rrams = totals["step_maj"][0]
    step_maj_steps = totals["step_maj"][1]
    return SummaryStatistics(
        rram_imp_steps_vs_area=1 - rram_imp_steps / max(1, area_steps),
        rram_imp_steps_vs_depth=1 - rram_imp_steps / max(1, depth_steps),
        rram_maj_rrams_vs_step=1 - rram_maj_rrams / max(1, step_maj_rrams),
        rram_maj_steps_penalty_vs_step=rram_maj_steps / max(1, step_maj_steps) - 1,
    )


@dataclass
class CrossbarCell:
    """One benchmark × realization mapped onto a crossbar array."""

    devices: int
    sequential_steps: int
    parallel_steps: int
    width: int
    height: int
    utilization: float
    step_ratio: float
    runtime_seconds: float
    #: Packed-kernel bit-identity of the mapped vs sequential schedule
    #: (``None`` when the cell ran without verification).
    identical: Optional[bool] = None


@dataclass
class CrossbarResult:
    """Crossbar mapping of the step-optimized flow over a benchmark set."""

    rows: Dict[str, Dict[str, CrossbarCell]] = field(default_factory=dict)
    effort: int = DEFAULT_EFFORT
    width: Optional[int] = None
    height: Optional[int] = None

    def benchmark_names(self) -> List[str]:
        return list(self.rows)

    def totals(self) -> Dict[str, Tuple[int, int]]:
        """Per realization, (Σ sequential, Σ parallel) step counts."""
        sums: Dict[str, Tuple[int, int]] = {}
        for realization in ("imp", "maj"):
            cells = [
                row[realization]
                for row in self.rows.values()
                if realization in row
            ]
            sums[realization] = (
                sum(cell.sequential_steps for cell in cells),
                sum(cell.parallel_steps for cell in cells),
            )
        return sums


def placed_identical(program, placed, *, seed: int = 7) -> bool:
    """Packed-kernel bit-identity of a placed schedule vs its source.

    Exhaustive over narrow interfaces, seeded 512-vector sampling over
    wide ones — both through :func:`repro.sim.execute_program_slices`,
    which executes the parallel schedule via
    :meth:`~repro.rram.isa.PlacedProgram.as_program` with the identical
    step semantics as the sequential program.
    """
    from ..sim import (
        execute_program_slices,
        iter_assignment_chunks,
        random_slices,
    )

    parallel = placed.as_program()
    num_inputs = program.num_inputs
    if num_inputs <= 10:
        for chunk in iter_assignment_chunks(num_inputs):
            seq = execute_program_slices(program, chunk.slices, chunk.mask)
            par = execute_program_slices(parallel, chunk.slices, chunk.mask)
            if seq != par:
                return False
        return True
    num_vectors = 512
    slices = random_slices(num_inputs, num_vectors, seed)
    mask = (1 << num_vectors) - 1
    seq = execute_program_slices(program, slices, mask)
    par = execute_program_slices(parallel, slices, mask)
    return seq == par


def crossbar_cell(
    name: str,
    realization_name: str,
    effort: int,
    verify: bool,
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> CrossbarCell:
    """Map one benchmark under one realization — pure in its arguments.

    Runs the paper's step-optimized flow, compiles, maps onto the
    crossbar (auto-fitted unless ``width``/``height`` pin the array),
    and optionally proves the row-parallel schedule bit-identical to
    the sequential program through the packed kernels.
    """
    from ..crossbar import map_program
    from ..rram import compile_mig

    netlist = load_netlist(name)
    realization = Realization(realization_name)
    mig = mig_from_netlist(netlist)
    optimize_steps(mig, realization, effort)
    report = compile_mig(mig, realization)
    program = report.program
    start = time.perf_counter()
    with span("crossbar.cell", benchmark=name, realization=realization_name):
        placed = map_program(program, width, height)
    elapsed = time.perf_counter() - start
    if placed.num_parallel_steps > program.num_steps:
        raise AssertionError(
            f"{name}/{realization_name}: parallel schedule "
            f"({placed.num_parallel_steps}) exceeds sequential "
            f"({program.num_steps})"
        )
    identical = placed_identical(program, placed) if verify else None
    if identical is False:
        raise AssertionError(
            f"{name}/{realization_name}: mapped execution diverges from "
            "the sequential program"
        )
    return CrossbarCell(
        devices=program.num_devices,
        sequential_steps=program.num_steps,
        parallel_steps=placed.num_parallel_steps,
        width=placed.width,
        height=placed.height,
        utilization=placed.utilization,
        step_ratio=placed.step_ratio,
        runtime_seconds=elapsed,
        identical=identical,
    )


def run_crossbar(
    names: Optional[Sequence[str]] = None,
    *,
    effort: int = DEFAULT_EFFORT,
    verify: bool = True,
    jobs: int = 1,
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> CrossbarResult:
    """Crossbar-map the step-optimized flow over ``names``.

    ``jobs > 1`` shards (benchmark × realization) cells across worker
    processes; results aggregate in submission order, so the rendered
    report is bit-identical for any job count.
    """
    result = CrossbarResult(effort=effort, width=width, height=height)
    selected_names = list(names or large_names())
    payloads = [
        (name, realization, effort, verify, width, height)
        for name in selected_names
        for realization in ("imp", "maj")
    ]
    registry = metrics()
    for name, realization, cell, snapshot in run_ordered(
        crossbar_task, payloads, jobs=jobs
    ):
        result.rows.setdefault(name, {})[realization] = cell
        registry.absorb(snapshot)
    return result


def largest_function_ratio(result: Table3Result, names: Sequence[str] = ("apex6", "x3")) -> float:
    """The paper's 26.5× claim: BDD/MIG-MAJ step ratio on the two
    135-input functions."""
    baseline = sum(result.rows[n].baseline_steps for n in names if n in result.rows)
    mig = sum(result.rows[n].mig_maj[1] for n in names if n in result.rows)
    return baseline / max(1, mig)
