"""Optional sifting hook for the BDD baseline flow.

Kept in its own module so the (comparatively expensive) reordering code
is only imported when a flow actually asks for it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..bdd import Bdd, sift_bdd


def maybe_sift(
    manager: Bdd, roots: Sequence[int], *, size_limit: int
) -> Tuple[Bdd, List[int]]:
    """Sift when the diagram is small enough to afford it.

    Returns the (possibly new) manager and roots; the caller only needs
    node counts and level histograms, which are order-relative anyway.
    """
    size = manager.count_nodes(roots)
    if size == 0 or size > size_limit:
        return manager, list(roots)
    sifted_manager, sifted_roots, _variable_at = sift_bdd(manager, roots)
    if sifted_manager.count_nodes(sifted_roots) < size:
        return sifted_manager, sifted_roots
    return manager, list(roots)
