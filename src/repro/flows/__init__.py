"""Experiment flows: one-call reproduction of the paper's tables."""

from .experiments import (
    DEFAULT_EFFORT,
    BaselineRow,
    ConfigResult,
    SummaryStatistics,
    TABLE2_CONFIGS,
    Table2Result,
    Table3Result,
    largest_function_ratio,
    run_table2,
    run_table3_aig,
    run_table3_bdd,
    summarize_table2,
)
from .bench import append_bench_entry, bench_fuzz_smoke, bench_table2
from .render import render_summary, render_table2, render_table3

__all__ = [
    "append_bench_entry",
    "bench_fuzz_smoke",
    "bench_table2",
    "DEFAULT_EFFORT",
    "BaselineRow",
    "ConfigResult",
    "SummaryStatistics",
    "TABLE2_CONFIGS",
    "Table2Result",
    "Table3Result",
    "largest_function_ratio",
    "run_table2",
    "run_table3_aig",
    "run_table3_bdd",
    "summarize_table2",
    "render_summary",
    "render_table2",
    "render_table3",
]
