"""Command-line interface: ``repro-synth`` / ``python -m repro``.

Subcommands
-----------
``synth``     Optimize a circuit (``.bench``/``.blif``/``.pla`` file or a
              named benchmark) with one of the paper's algorithms and
              report the RRAM cost model, optionally compiling and
              functionally verifying the micro-program.
``map``       Place a compiled program onto a W×H crossbar array and
              reschedule it into row-parallel steps (never more than
              the paper's sequential S); exit code 2 when the program
              cannot be mapped onto the requested array.
``table2``    Reproduce paper Table II (optionally a subset);
              ``--crossbar WxH|auto`` appends the crossbar-mapping
              report (array geometry, utilization, parallel steps).
``table3``    Reproduce paper Table III (``--baseline bdd|aig``).
``bench-list``  List the built-in benchmark suites.
``bench``     Time the whole-set flows / packed-kernel speedups and
              append a machine-readable entry to ``BENCH_runtime.json``.
``fuzz``      Time-budgeted differential fuzzing / fault-injection
              campaign; failures are shrunk to repro bundles under
              ``results/fuzz/``.
``trace-report``  Summarize a ``--trace`` JSONL file (per-pass time,
              R/S trajectory timeline, top-N slowest spans).

Whole-set subcommands accept ``--jobs N`` to shard independent units of
work (benchmarks, fuzz cases, verification chunks) across worker
processes; results are bit-identical to ``--jobs 1`` by construction.

Observability (see ``docs/OBSERVABILITY.md``): ``synth``/``table2``/
``table3``/``fuzz``/``bench`` accept ``--trace FILE.jsonl`` (hierarchical
span + trajectory + metrics records) and ``--metrics FILE.json`` (final
registry snapshot); every ``--profile`` output renders through the one
shared formatter in :mod:`repro.telemetry.report`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from .benchmarks import ALL_BENCHMARKS, benchmark, large_names, load_netlist, small_names
from .io import (
    pla_to_netlist,
    read_bench,
    read_blif,
    read_pla,
    read_verilog,
    save_bench,
    save_blif,
    save_pla,
    save_verilog,
    tables_to_pla,
)
from .mig import (
    ALGORITHMS,
    EquivalenceGuard,
    MigError,
    Realization,
    graph_engine_name,
    mig_from_netlist,
    rram_costs,
)
from .network import Netlist
from .rram import compile_mig, compile_plim, verify_compiled
from .telemetry import (
    TelemetrySession,
    TrajectoryRecorder,
    render_profile,
    trajectory_recording,
)


def _add_telemetry_args(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="write a JSONL trace (spans, trajectory snapshots, final "
        "metrics) to FILE; inspect with 'repro-synth trace-report'",
    )
    command.add_argument(
        "--metrics", metavar="FILE.json", default=None,
        help="write the final metrics-registry snapshot to FILE as JSON",
    )


def _telemetry_session(args: argparse.Namespace) -> TelemetrySession:
    """Build the command's telemetry session (inert without --trace /
    --metrics, so main() wraps every command unconditionally)."""
    meta_args = {
        key: value
        for key, value in sorted(vars(args).items())
        if not key.startswith("_")
        and key not in ("func", "trace", "metrics")
        and isinstance(value, (str, int, float, bool, type(None)))
    }
    return TelemetrySession(
        args.command,
        trace_path=getattr(args, "trace", None),
        metrics_path=getattr(args, "metrics", None),
        args=meta_args,
    )


def _load_circuit(source: str, minimize: bool = False) -> Netlist:
    if source in ALL_BENCHMARKS:
        return load_netlist(source)
    if source.endswith(".bench"):
        return read_bench(source)
    if source.endswith(".blif"):
        return read_blif(source)
    if source.endswith(".pla"):
        cover = read_pla(source)
        if minimize:
            from .twolevel import minimize_pla

            cover = minimize_pla(cover)
        return pla_to_netlist(cover)
    if source.endswith(".v"):
        return read_verilog(source)
    raise SystemExit(
        f"cannot load {source!r}: not a known benchmark and not a "
        ".bench/.blif/.pla/.v file"
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    netlist = _load_circuit(args.circuit, minimize=args.minimize)
    mig = mig_from_netlist(netlist)
    realization = Realization(args.realization)
    guard = EquivalenceGuard(mig, num_vectors=512) if args.verify else None

    session: Optional[TelemetrySession] = getattr(args, "_telemetry", None)
    recorder: Optional[TrajectoryRecorder] = None
    if session is not None and session.writer is not None:
        recorder = TrajectoryRecorder(realization, sink=session.writer)

    initial = rram_costs(mig, realization)
    start = time.perf_counter()
    result = None
    with trajectory_recording(recorder):
        if recorder is not None:
            recorder.record_state(mig, None, rule="initial", accepted=True)
        if args.algorithm != "none":
            optimizer = ALGORITHMS[args.algorithm]
            if args.algorithm in ("rram", "steps"):
                result = optimizer(mig, realization, args.effort)
            else:
                result = optimizer(mig, args.effort)
        if recorder is not None:
            # The closing snapshot is computed from scratch, so its R/S
            # are exactly the "optimized" numbers printed below.
            recorder.record_final(mig)
    elapsed = time.perf_counter() - start
    final = rram_costs(mig, realization)
    if result is not None:
        from .telemetry import publish_profile

        publish_profile(result.profile)

    print(f"circuit      : {netlist.name}")
    print(f"interface    : {netlist.inputs and len(netlist.inputs)} inputs, "
          f"{len(netlist.outputs)} outputs")
    print(f"algorithm    : {args.algorithm} (effort {args.effort})")
    print(f"realization  : {realization.value.upper()}")
    print(f"initial      : size={initial.size} depth={initial.depth} "
          f"R={initial.rrams} S={initial.steps}")
    print(f"optimized    : size={final.size} depth={final.depth} "
          f"R={final.rrams} S={final.steps}")
    print(f"runtime      : {elapsed:.2f}s")

    if args.profile:
        profile = result.profile if result is not None else None
        print(
            render_profile(
                profile, title="cost-view + transaction counters"
            )
        )

    if guard is not None:
        ok = guard.verify()
        print(f"equivalence  : {'PASS' if ok else 'FAIL'}")
        if not ok:
            return 1

    if args.compile:
        if args.backend == "plim":
            plim = compile_plim(mig)
            print(f"compiled     : {plim.instructions} serial RM3 "
                  f"instructions on {plim.program.num_devices} devices "
                  f"(PLiM backend)")
            if args.verify:
                from .rram import run_program

                ok = True
                from .rram.verify import verification_vectors

                for vector in verification_vectors(mig.num_pis):
                    words = [1 if bit else 0 for bit in vector]
                    expected = [
                        bool(w & 1) for w in mig.simulate_words(words, 1)
                    ]
                    if run_program(plim.program, list(vector)) != expected:
                        ok = False
                        break
                print(f"execution    : {'PASS' if ok else 'FAIL'}")
                if not ok:
                    return 1
        else:
            report = compile_mig(mig, realization)
            print(f"compiled     : {report.measured_steps} steps on "
                  f"{report.measured_devices} devices "
                  f"(model S={report.analytic.steps}, "
                  f"match={report.steps_match_model})")
            if args.verify:
                from .rram.verify import EXHAUSTIVE_LIMIT

                limit = (
                    args.exhaustive_limit
                    if args.exhaustive_limit is not None
                    else EXHAUSTIVE_LIMIT
                )
                ok = verify_compiled(
                    mig, report, exhaustive_limit=limit, jobs=args.jobs
                )
                print(f"execution    : {'PASS' if ok else 'FAIL'}")
                if not ok:
                    return 1
    return 0


def _parse_geometry(text: str):
    """``WxH`` (e.g. ``32x32``) or ``auto`` → (width, height) pair."""
    if text.strip().lower() == "auto":
        return (None, None)
    parts = text.lower().split("x")
    try:
        width, height = (int(part) for part in parts)
        if width < 1 or height < 1:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad array geometry {text!r}; expected WxH (e.g. 32x32) "
            "or 'auto'"
        ) from None
    return (width, height)


def _cmd_map(args: argparse.Namespace) -> int:
    from .crossbar import map_program
    from .flows import placed_identical

    netlist = _load_circuit(args.circuit)
    mig = mig_from_netlist(netlist)
    realization = Realization(args.realization)
    if args.algorithm != "none":
        optimizer = ALGORITHMS[args.algorithm]
        if args.algorithm in ("rram", "steps"):
            optimizer(mig, realization, args.effort)
        else:
            optimizer(mig, args.effort)
    report = compile_mig(mig, realization)
    program = report.program
    width, height = args.crossbar
    placed = map_program(program, width, height, refine=args.refine)

    rows_used = len({row for row, _col in placed.cells.values()})
    print(f"circuit      : {netlist.name}")
    print(f"realization  : {realization.value.upper()}")
    print(f"devices      : {program.num_devices}")
    print(f"array        : {placed.width}x{placed.height} "
          f"({'requested' if width is not None else 'auto-fitted'})")
    print(f"utilization  : {placed.utilization:.2f} "
          f"({rows_used} wordlines occupied)")
    print(f"sequential S : {program.num_steps}")
    print(f"parallel     : {placed.num_parallel_steps} steps "
          f"(ratio {placed.step_ratio:.2f})")
    if args.verify:
        ok = placed_identical(program, placed)
        print(f"identity     : {'PASS' if ok else 'FAIL'}")
        if not ok:
            return 1
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .flows import render_summary, render_table2, run_table2, summarize_table2

    names = args.benchmarks or None
    result = run_table2(
        names, effort=args.effort, verify=args.verify, jobs=args.jobs
    )
    print(render_table2(result, with_paper=not args.no_paper))
    print()
    print(render_summary(summarize_table2(result), with_paper=not args.no_paper))
    if args.crossbar is not None:
        from .flows import render_crossbar, run_crossbar

        width, height = args.crossbar
        crossbar = run_crossbar(
            names,
            effort=args.effort,
            verify=args.verify,
            jobs=args.jobs,
            width=width,
            height=height,
        )
        print()
        print(render_crossbar(crossbar))
    if args.profile:
        print()
        print(
            render_profile(
                result.merged_profile(),
                title="cost-view counters summed over all cells "
                "(and workers)",
            )
        )
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .flows import render_table3, run_table3_aig, run_table3_bdd

    names = args.benchmarks or None
    if args.baseline == "bdd":
        result = run_table3_bdd(
            names, effort=args.effort, verify=args.verify, jobs=args.jobs
        )
    else:
        result = run_table3_aig(
            names, effort=args.effort, verify=args.verify, jobs=args.jobs
        )
    print(render_table3(result, with_paper=not args.no_paper))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the archived results/ tables from scratch."""
    import os

    from .flows import (
        largest_function_ratio,
        render_summary,
        render_table2,
        render_table3,
        run_table2,
        run_table3_aig,
        run_table3_bdd,
        summarize_table2,
    )

    os.makedirs(args.output, exist_ok=True)
    effort, verify = args.effort, args.verify
    stage_seconds = {}

    print(f"running Table II (effort={effort}) ...")
    start = time.perf_counter()
    table2 = run_table2(effort=effort, verify=verify)
    stage_seconds["report.stage_seconds.table2"] = (
        time.perf_counter() - start
    )
    with open(os.path.join(args.output, "table2_full.txt"), "w") as handle:
        handle.write(render_table2(table2) + "\n\n")
        handle.write(render_summary(summarize_table2(table2)) + "\n")
    print("running Table III (AIG baseline) ...")
    start = time.perf_counter()
    aig = run_table3_aig(effort=effort, verify=verify)
    stage_seconds["report.stage_seconds.table3_aig"] = (
        time.perf_counter() - start
    )
    print("running Table III (BDD baseline) ...")
    start = time.perf_counter()
    bdd = run_table3_bdd(effort=effort, verify=verify)
    stage_seconds["report.stage_seconds.table3_bdd"] = (
        time.perf_counter() - start
    )
    with open(os.path.join(args.output, "table3_full.txt"), "w") as handle:
        handle.write(render_table3(aig) + "\n\n")
        handle.write(render_table3(bdd) + "\n")
        handle.write(
            f"largest-function ratio (apex6+x3): "
            f"{largest_function_ratio(bdd):.1f}x (paper 26.5x)\n"
        )
    print(f"wrote {args.output}/table2_full.txt and table3_full.txt")
    if args.profile:
        print(
            render_profile(
                stage_seconds, title="seconds per stage", canonicalize=False
            )
        )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    netlist = _load_circuit(args.source, minimize=args.minimize)
    target = args.target
    if target.endswith(".bench"):
        save_bench(netlist, target)
    elif target.endswith(".blif"):
        save_blif(netlist, target)
    elif target.endswith(".v"):
        save_verilog(netlist, target)
    elif target.endswith(".pla"):
        if len(netlist.inputs) > 16:
            raise SystemExit("PLA export limited to 16 inputs")
        save_pla(
            tables_to_pla(
                netlist.truth_tables(),
                name=netlist.name,
                input_labels=netlist.inputs,
                output_labels=[f"f{i}" for i in range(len(netlist.outputs))],
            ),
            target,
        )
    else:
        raise SystemExit(f"unknown target format for {target!r}")
    print(f"wrote {target} ({netlist.stats()})")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import FuzzConfig, run_fuzz
    from .rram import FAULT_CLASSES

    fault_classes = tuple(args.fault_classes or ())
    if args.all_faults:
        fault_classes = FAULT_CLASSES
    config = FuzzConfig(
        seconds=args.seconds,
        seed=args.seed,
        effort=args.effort,
        fault_classes=fault_classes,
        out_dir=args.out_dir,
        max_cases=args.max_cases,
        shrink_seconds=args.shrink_seconds,
        min_detection=args.min_detection,
        jobs=args.jobs,
    )
    report = run_fuzz(config)

    mode = "fault-injection" if fault_classes else "differential"
    print(f"mode         : {mode}")
    print(f"seed         : {config.seed}")
    print(f"cases        : {report.cases_run} in {report.elapsed:.1f}s")
    by_kind = ", ".join(
        f"{kind}={count}" for kind, count in sorted(report.cases_by_kind.items())
    )
    print(f"corpus       : {by_kind}")
    if fault_classes:
        for fault_class, row in sorted(report.detection_summary().items()):
            print(
                f"  {fault_class:<14s}: {row['detected']}/{row['sites']} sites "
                f"detected, {row['missed']} missed, {row['latent']} latent "
                f"(rate {row['detection_rate']:.2%}, floor "
                f"{config.min_detection:.0%})"
            )
    print(f"failures     : {len(report.failures)}")
    for failure in report.failures:
        print(f"  {failure.get('check')}: {failure.get('detail')}")
    for bundle in report.bundles:
        print(f"bundle       : {bundle}")
    if args.profile:
        print(render_profile(report.profile, title="seconds per stage"))
    print(f"verdict      : {'PASS' if report.ok else 'FAIL'}")
    return 0 if report.ok else 1


def _cmd_bench_list(_args: argparse.Namespace) -> int:
    print("large (Tables II / III-left):")
    for name in large_names():
        spec = benchmark(name)
        print(f"  {name:<11s} {spec.num_inputs:>3d} in {spec.num_outputs:>3d} out"
              f"  [{spec.kind}] {spec.description}")
    print("small (Table III-right):")
    for name in small_names():
        spec = benchmark(name)
        print(f"  {name:<11s} {spec.num_inputs:>3d} in {spec.num_outputs:>3d} out"
              f"  [{spec.kind}] {spec.description}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .flows.bench import (
        append_bench_entry,
        bench_batch_engine,
        bench_crossbar,
        bench_fuzz_smoke,
        bench_scale,
        bench_table2,
        bench_tx_engine,
    )

    entries = []
    if args.what in ("table2", "all"):
        print(f"timing whole-set Table II flow (effort={args.effort}, "
              f"jobs={args.jobs}) ...")
        entries.append(
            bench_table2(
                args.benchmarks or None, effort=args.effort, jobs=args.jobs
            )
        )
    if args.what in ("fuzz-smoke", "all"):
        print("timing packed vs scalar verification on the fuzz smoke "
              "corpus ...")
        entries.append(bench_fuzz_smoke(jobs=args.jobs))
    if args.what == "tx-engine":
        print(f"timing proposed flows under both mutation engines "
              f"(effort={args.effort}) ...")
        entries.append(
            bench_tx_engine(args.benchmarks or None, effort=args.effort)
        )
    if args.what == "crossbar":
        print(f"timing crossbar mapping of the step-optimized flow "
              f"(effort={args.effort}, jobs={args.jobs}) ...")
        entries.append(
            bench_crossbar(
                args.benchmarks or None, effort=args.effort, jobs=args.jobs
            )
        )
    if args.what == "scale":
        print(f"timing the EPFL-class scale tier "
              f"(effort={args.effort}) ...")
        entries.append(
            bench_scale(args.benchmarks or None, effort=args.effort)
        )
    if args.what == "batch":
        print(f"timing the scale-tier flow with batch kernels off vs on "
              f"(effort={args.effort}) ...")
        entries.append(
            bench_batch_engine(args.benchmarks or None, effort=args.effort)
        )
    for entry in entries:
        if not args.no_append:
            append_bench_entry(entry, args.output)
        if entry["kind"] == "table2":
            print(f"table2       : {entry['seconds']}s over "
                  f"{entry['benchmarks']} benchmarks (jobs={entry['jobs']})")
        elif entry["kind"] == "crossbar":
            for realization, totals in sorted(entry["totals"].items()):
                print(
                    f"crossbar     : {realization} parallel "
                    f"{totals['parallel_steps']} / sequential "
                    f"{totals['sequential_steps']} steps = "
                    f"{totals['parallel_over_s']}x over "
                    f"{len(entry['benchmarks'])} benchmarks"
                )
        elif entry["kind"] == "scale":
            for name, cell in entry["benchmarks"].items():
                for realization in ("imp", "maj"):
                    costs = cell[realization]
                    print(
                        f"scale        : {name} ({cell['gates']} gates) "
                        f"{realization} R={costs['rrams']} "
                        f"S={costs['steps']} in "
                        f"{costs['optimize_seconds']}s "
                        f"(build {cell['build_seconds']}s)"
                    )
        elif entry["kind"] == "batch-engine":
            for name, cell in entry["benchmarks"].items():
                for realization in ("imp", "maj"):
                    timing = cell[realization]
                    print(
                        f"batch-engine : {name} ({cell['gates']} gates) "
                        f"{realization} scalar "
                        f"{timing['scalar_seconds']}s / batch "
                        f"{timing['batch_seconds']}s = "
                        f"{timing['speedup']}x"
                    )
        elif entry["kind"] == "tx-engine":
            for label, flow in entry["flows"].items():
                speedup = flow.get("speedup_vs_clone_baseline")
                suffix = f" = {speedup}x vs clone baseline" if speedup else ""
                print(f"tx-engine    : {label} tx {flow['tx_seconds']}s / "
                      f"legacy {flow['legacy_seconds']}s{suffix}")
        else:
            print(f"fuzz-smoke   : packed {entry['packed_seconds']}s vs "
                  f"scalar {entry['scalar_seconds']}s = "
                  f"{entry['speedup']}x over {entry['programs']} programs")
    if not args.no_append:
        print(f"appended {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'} to {args.output}")
    return 0


def _load_trace_or_exit2(path: str):
    """Load a JSONL trace, returning (records, None) or (None, exit
    code 2 message).  Missing, empty, unreadable, and truncated files
    all land here — the CLI contract is exit 2 with one clear line, not
    a traceback."""
    import os

    from .telemetry import load_trace

    if not os.path.exists(path):
        return None, f"{path}: no such trace file"
    try:
        records = load_trace(path)
    except ValueError as error:
        return None, f"{path}: malformed trace: {error}"
    except OSError as error:
        return None, f"{path}: cannot read trace: {error}"
    if not records:
        return None, f"{path}: empty trace file (no records)"
    return records, None


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from .telemetry import (
        compare_traces,
        load_bench_ledger,
        render_trace_compare,
        render_trace_report,
        validate_bench_ledger,
        validate_trace,
    )

    if args.compare is not None:
        a_records, error = _load_trace_or_exit2(args.trace_file)
        if error is None:
            b_records, error = _load_trace_or_exit2(args.compare)
        if error is not None:
            print(f"repro-synth: error: {error}", file=sys.stderr)
            return 2
        comparison = compare_traces(a_records, b_records)
        print(
            render_trace_compare(
                comparison,
                a_label=args.trace_file,
                b_label=args.compare,
                top=args.top,
            )
        )
        return 1 if comparison["diverged"] else 0

    # A BENCH_runtime.json-style ledger (one JSON object with an
    # "entries" list) is not a JSONL trace; validate its entry schema
    # instead of failing the JSONL parse.
    ledger = load_bench_ledger(args.trace_file)
    if ledger is not None:
        entries = ledger.get("entries", [])
        if args.validate:
            errors = validate_bench_ledger(ledger)
            if errors:
                for error in errors:
                    print(f"trace-report: {error}", file=sys.stderr)
                print(
                    f"trace-report: {args.trace_file}: "
                    f"{len(errors)} ledger violation(s)",
                    file=sys.stderr,
                )
                return 1
            print(f"schema       : OK ({len(entries)} ledger entries)")
        kinds: Dict[str, int] = {}
        for entry in entries:
            kind = entry.get("kind", "?") if isinstance(entry, dict) else "?"
            kinds[kind] = kinds.get(kind, 0) + 1
        print(f"ledger       : {len(entries)} entries")
        for kind in sorted(kinds):
            print(f"  {kind:<12s} : {kinds[kind]}")
        return 0

    records, error = _load_trace_or_exit2(args.trace_file)
    if error is not None:
        print(f"repro-synth: error: {error}", file=sys.stderr)
        return 2
    if args.validate:
        errors = validate_trace(records)
        if errors:
            for error in errors:
                print(f"trace-report: {error}", file=sys.stderr)
            print(
                f"trace-report: {args.trace_file}: "
                f"{len(errors)} schema violation(s)",
                file=sys.stderr,
            )
            return 1
        print(f"schema       : OK ({len(records)} records)")
    print(render_trace_report(records, top=args.top))
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .telemetry import LedgerError, load_ledger
    from .telemetry.observatory import (
        build_report,
        render_report,
        render_report_html,
    )

    try:
        ledger = load_ledger(args.ledger)
    except LedgerError as error:
        print(f"repro-synth: error: {error}", file=sys.stderr)
        return 2
    report = build_report(ledger, window=args.window)
    if args.html is not None:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_report_html(report))
        print(f"wrote {args.html}")
    print(render_report(report))
    return 0


def _cmd_obs_gate(args: argparse.Namespace) -> int:
    from .flows.bench import append_bench_entry
    from .telemetry import LedgerError, load_ledger, metrics
    from .telemetry.observatory import render_gate, run_gates

    try:
        ledger = load_ledger(args.ledger)
    except LedgerError as error:
        print(f"repro-synth: error: {error}", file=sys.stderr)
        return 2
    tiers = ("counters", "wall") if args.tier == "all" else (args.tier,)
    start = time.perf_counter()
    outcomes, entry = run_gates(
        ledger,
        what=args.what,
        names=args.benchmarks or None,
        effort=args.effort,
        jobs=args.jobs,
        window=args.window,
        wall_slack=args.wall_slack,
        tiers=tiers,
        strict=args.strict,
    )
    metrics().gauge("obs.gate_seconds").set(
        round(time.perf_counter() - start, 3)
    )
    print(render_gate(outcomes))
    if not args.no_append:
        append_bench_entry(entry, path=args.ledger)
        print(f"appended obs-gate entry to {args.ledger}")
    return 0 if all(outcome.passed for outcome in outcomes) else 1


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-synth`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-synth",
        description="MIG-based logic synthesis for RRAM in-memory computing "
        "(DATE 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="optimize one circuit")
    synth.add_argument("circuit", help="benchmark name or .bench/.blif/.pla path")
    synth.add_argument(
        "--algorithm", choices=[*ALGORITHMS, "none"], default="rram",
        help="optimization algorithm (default: the paper's multi-objective)",
    )
    synth.add_argument(
        "--realization", choices=["imp", "maj"], default="maj",
        help="RRAM realization for cost reporting (default maj)",
    )
    synth.add_argument("--effort", type=int, default=40, help="cycle budget")
    synth.add_argument(
        "--compile", action="store_true",
        help="compile the optimized MIG to an RRAM micro-program",
    )
    synth.add_argument(
        "--minimize", action="store_true",
        help="two-level minimize PLA inputs (espresso-style) before synthesis",
    )
    synth.add_argument(
        "--backend", choices=["level", "plim"], default="level",
        help="compilation backend: the paper's level-parallel schedule "
        "or a PLiM-style serial RM3 stream (default level)",
    )
    synth.add_argument(
        "--verify", action="store_true",
        help="check equivalence (and execution, with --compile)",
    )
    synth.add_argument(
        "--profile", action="store_true",
        help="report incremental cost-view counters (recomputes, delta "
        "updates, cache hits, moves tried/accepted)",
    )
    synth.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for exhaustive --verify of the compiled "
        "program (default 1 = inline)",
    )
    synth.add_argument(
        "--exhaustive-limit", type=int, default=None,
        help="widest interface verified exhaustively instead of by "
        "sampling (default 10; hard cap 24 — beyond it verification "
        "refuses with a clear error)",
    )
    _add_telemetry_args(synth)
    synth.set_defaults(func=_cmd_synth)

    map_cmd = sub.add_parser(
        "map",
        help="place a compiled program onto a W×H crossbar and "
        "reschedule it into row-parallel steps",
    )
    map_cmd.add_argument(
        "circuit", help="benchmark name or .bench/.blif/.pla path"
    )
    map_cmd.add_argument(
        "--crossbar", type=_parse_geometry, default=(None, None),
        metavar="WxH",
        help="array geometry, e.g. 32x32 (default: auto-fit; exit "
        "code 2 when the program cannot be mapped onto the request)",
    )
    map_cmd.add_argument(
        "--realization", choices=["imp", "maj"], default="maj",
        help="RRAM realization to compile for (default maj)",
    )
    map_cmd.add_argument(
        "--algorithm", choices=[*ALGORITHMS, "none"], default="none",
        help="optional pre-mapping optimization (default none)",
    )
    map_cmd.add_argument("--effort", type=int, default=10,
                         help="optimizer cycle budget")
    refine = map_cmd.add_mutually_exclusive_group()
    refine.add_argument(
        "--refine", dest="refine", action="store_true", default=None,
        help="force the force-directed placement refinement on",
    )
    refine.add_argument(
        "--no-refine", dest="refine", action="store_false",
        help="skip the force-directed refinement (default: auto)",
    )
    map_cmd.add_argument(
        "--verify", action="store_true",
        help="prove the row-parallel schedule bit-identical to the "
        "sequential program through the packed kernels",
    )
    _add_telemetry_args(map_cmd)
    map_cmd.set_defaults(func=_cmd_map)

    table2 = sub.add_parser("table2", help="reproduce paper Table II")
    table2.add_argument("benchmarks", nargs="*", help="subset (default: all 25)")
    table2.add_argument("--effort", type=int, default=40)
    table2.add_argument("--verify", action="store_true")
    table2.add_argument("--no-paper", action="store_true",
                        help="omit the published reference rows")
    table2.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (benchmark-sharded; output is "
        "bit-identical to --jobs 1)",
    )
    table2.add_argument(
        "--profile", action="store_true",
        help="report cost-view counters summed over all cells/workers",
    )
    table2.add_argument(
        "--crossbar", type=_parse_geometry, default=None, metavar="WxH",
        help="also map the step-optimized flow onto a crossbar array "
        "(WxH, or 'auto' to fit per benchmark) and append the "
        "geometry/utilization/parallel-steps report",
    )
    _add_telemetry_args(table2)
    table2.set_defaults(func=_cmd_table2)

    table3 = sub.add_parser("table3", help="reproduce paper Table III")
    table3.add_argument("--baseline", choices=["bdd", "aig"], required=True)
    table3.add_argument("benchmarks", nargs="*")
    table3.add_argument("--effort", type=int, default=40)
    table3.add_argument("--verify", action="store_true")
    table3.add_argument("--no-paper", action="store_true")
    table3.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (benchmark-sharded; output is "
        "bit-identical to --jobs 1)",
    )
    _add_telemetry_args(table3)
    table3.set_defaults(func=_cmd_table3)

    report = sub.add_parser(
        "report", help="regenerate the archived results/ tables"
    )
    report.add_argument("--output", default="results")
    report.add_argument("--effort", type=int, default=40)
    report.add_argument("--verify", action="store_true")
    report.add_argument(
        "--profile", action="store_true",
        help="report seconds spent per regeneration stage",
    )
    report.set_defaults(func=_cmd_report)

    convert = sub.add_parser(
        "convert", help="convert circuits between .bench/.blif/.pla/.v"
    )
    convert.add_argument("source", help="benchmark name or circuit file")
    convert.add_argument("target", help="output path (format by extension)")
    convert.add_argument("--minimize", action="store_true",
                         help="two-level minimize PLA inputs first")
    convert.set_defaults(func=_cmd_convert)

    bench_list = sub.add_parser("bench-list", help="list built-in benchmarks")
    bench_list.set_defaults(func=_cmd_bench_list)

    bench = sub.add_parser(
        "bench",
        help="time whole-set flows and packed-kernel speedups, appending "
        "a machine-readable entry to BENCH_runtime.json",
    )
    bench.add_argument("benchmarks", nargs="*",
                       help="Table II subset for the table2 timing")
    bench.add_argument(
        "--what",
        choices=["table2", "fuzz-smoke", "tx-engine", "crossbar", "scale",
                 "batch", "all"],
        default="all",
        help="which measurement to run (default all; tx-engine, "
        "crossbar, scale, and batch only when named explicitly)",
    )
    bench.add_argument("--effort", type=int, default=10,
                       help="optimizer effort for the table2 timing")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the timed flows")
    bench.add_argument("--output", default="BENCH_runtime.json",
                       help="bench file to append to")
    bench.add_argument("--no-append", action="store_true",
                       help="measure and print without touching the file")
    _add_telemetry_args(bench)
    bench.set_defaults(func=_cmd_bench)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing / fault-injection campaign",
    )
    fuzz.add_argument(
        "--seconds", type=float, default=30.0, help="time budget (default 30)"
    )
    fuzz.add_argument("--seed", type=int, default=1, help="campaign seed")
    fuzz.add_argument(
        "--effort", type=int, default=4,
        help="optimizer effort per oracle case (default 4)",
    )
    fuzz.add_argument(
        "--fault-classes", nargs="*", metavar="CLASS",
        help="run the fault-injection campaign for these classes "
        "(stuck-set stuck-reset dropped-write sense-flip) instead of "
        "the differential oracle",
    )
    fuzz.add_argument(
        "--all-faults", action="store_true",
        help="shorthand for every fault class",
    )
    fuzz.add_argument(
        "--out-dir", default="results/fuzz",
        help="where repro bundles are written (default results/fuzz)",
    )
    fuzz.add_argument(
        "--max-cases", type=int, default=None,
        help="hard case cap on top of the time budget",
    )
    fuzz.add_argument(
        "--shrink-seconds", type=float, default=10.0,
        help="delta-debugging budget per failure (default 10)",
    )
    fuzz.add_argument(
        "--min-detection", type=float, default=0.95,
        help="fault-detection floor for the PASS verdict (default 0.95)",
    )
    fuzz.add_argument(
        "--profile", action="store_true",
        help="report seconds spent per campaign stage (summed across "
        "workers when --jobs > 1)",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for case execution (case verdicts are "
        "independent of the job count)",
    )
    _add_telemetry_args(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    trace_report = sub.add_parser(
        "trace-report",
        help="summarize a --trace JSONL file: per-pass time, R/S "
        "trajectory timeline, slowest spans",
    )
    trace_report.add_argument("trace_file", help="trace file (JSONL)")
    trace_report.add_argument(
        "--top", type=int, default=5,
        help="how many slowest spans to list (default 5)",
    )
    trace_report.add_argument(
        "--validate", action="store_true",
        help="validate every record against the documented schema and "
        "the metric-name catalog first; exit 1 on any violation",
    )
    trace_report.add_argument(
        "--compare", metavar="OTHER.jsonl", default=None,
        help="differential mode: compare TRACE_FILE against OTHER.jsonl "
        "(per-pass time deltas, deterministic counter deltas, first "
        "diverging trajectory trial); exit 1 when the runs diverge on "
        "anything deterministic, 0 when identical",
    )
    trace_report.set_defaults(func=_cmd_trace_report)

    obs = sub.add_parser(
        "obs",
        help="observatory over the benchmark ledger: trend report and "
        "two-tier regression gate",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_report = obs_sub.add_parser(
        "report",
        help="sparkline trend tables per (kind, engine, effort), "
        "latest-vs-baseline deltas, slab occupancy gauges",
    )
    obs_report.add_argument(
        "--ledger", default="BENCH_runtime.json",
        help="benchmark ledger path (default BENCH_runtime.json)",
    )
    obs_report.add_argument(
        "--html", metavar="FILE", default=None,
        help="also write a self-contained HTML dashboard to FILE",
    )
    obs_report.add_argument(
        "--window", type=int, default=8,
        help="rolling baseline window (default 8 entries)",
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    obs_gate = obs_sub.add_parser(
        "gate",
        help="run benchmarks and gate against ledger baselines: "
        "deterministic counters must match exactly, wall-clock must "
        "stay inside the median+MAD noise band",
    )
    obs_gate.add_argument(
        "--ledger", default="BENCH_runtime.json",
        help="benchmark ledger path (default BENCH_runtime.json)",
    )
    obs_gate.add_argument(
        "--what", choices=("table2", "scale", "all"), default="all",
        help="which tier to gate (default all)",
    )
    obs_gate.add_argument(
        "--tier", choices=("counters", "wall", "all"), default="all",
        help="which detector tier to apply (default all)",
    )
    obs_gate.add_argument(
        "--effort", type=int, default=10,
        help="optimization effort; must match the ledger baselines "
        "(default 10)",
    )
    obs_gate.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the table2 run (default 1; counters "
        "are job-count independent, wall bands are keyed on jobs)",
    )
    obs_gate.add_argument(
        "--window", type=int, default=8,
        help="rolling baseline window for wall bands (default 8)",
    )
    obs_gate.add_argument(
        "--wall-slack", type=float, default=2.0,
        help="minimum tolerated wall-clock ratio over the baseline "
        "median before the MAD band kicks in (default 2.0)",
    )
    obs_gate.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        help="scale-tier benchmark subset (default: every large "
        "benchmark with a ledger baseline)",
    )
    obs_gate.add_argument(
        "--no-append", action="store_true",
        help="do not append the obs-gate outcome entry to the ledger",
    )
    obs_gate.add_argument(
        "--strict", action="store_true",
        help="fail (instead of warn) when a baseline or noise band is "
        "missing for a gated subject",
    )
    obs_gate.set_defaults(func=_cmd_obs_gate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    from .io import (
        BenchFormatError,
        BlifFormatError,
        PlaFormatError,
        VerilogFormatError,
    )
    from .crossbar import MappingError
    from .rram import VerificationCapError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Fail fast on a bad REPRO_GRAPH before any flow builds a graph
        # (worker processes inherit the variable, so a typo would
        # otherwise surface as a mid-run crash in a pool).
        graph_engine_name()
    except MigError as error:
        print(f"repro-synth: error: {error}", file=sys.stderr)
        return 2
    try:
        with _telemetry_session(args) as session:
            args._telemetry = session
            return args.func(args)
    except (
        BenchFormatError,
        BlifFormatError,
        PlaFormatError,
        VerilogFormatError,
        VerificationCapError,
        MappingError,
    ) as error:
        print(f"repro-synth: error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"repro-synth: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
