"""Packed batch-evaluation kernels over every representation.

Each kernel takes per-input *slices* (see :mod:`repro.sim.bitslice`)
and advances all packed assignments through the structure with one
bitwise operation per node/op.  Semantics are pinned to the scalar
reference paths they replace:

* :func:`simulate_mig_slices` / :func:`simulate_netlist_slices` —
  thin fronts over the existing word-parallel simulators (the mask
  trick was already latent there; the engine just makes it the one
  shared entry point).
* :func:`execute_program_slices` — a word-parallel interpreter of
  compiled RRAM micro-programs.  It mirrors the fault-free semantics
  of :class:`repro.rram.array.RramArray` exactly: all reads within a
  step observe the pre-step state, writes are once-per-step, and the
  intrinsic-majority pulse computes ``R' = M(P, !Q, R)`` per bit lane.
  Fault injection and sense tracing stay on the scalar executor — the
  device model is where faults live.
* :func:`evaluate_bdd_slices` — bottom-up packed evaluation of BDD
  roots (``word(node) = ITE(var, word(hi), word(lo))`` per node), the
  batch analogue of :meth:`repro.bdd.bdd.Bdd.evaluate`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .bitslice import maj_word, mux_word


def simulate_mig_slices(mig, slices: Sequence[int], mask: int) -> List[int]:
    """Packed MIG evaluation: one output slice per primary output."""
    return mig.simulate_words(slices, mask)


def simulate_aig_slices(aig, slices: Sequence[int], mask: int) -> List[int]:
    """Packed AIG evaluation: one output slice per primary output."""
    return aig.simulate_words(slices, mask)


def simulate_netlist_slices(
    netlist, slices: Sequence[int], mask: int
) -> List[int]:
    """Packed netlist evaluation, outputs in declaration order."""
    out_words = netlist.simulate_words(
        {name: word for name, word in zip(netlist.inputs, slices)}, mask
    )
    return [out_words[name] for name in netlist.outputs]


def execute_program_slices(
    program, slices: Sequence[int], mask: int, *, validate: bool = True
) -> List[int]:
    """Run a compiled RRAM micro-program over packed assignments.

    ``slices[i]`` packs primary input ``i``; returns one slice per
    primary output (ascending output index), bit-for-bit what the
    scalar :func:`repro.rram.array.run_program` returns per lane.
    """
    # Import here: repro.rram imports repro.sim for packed verification.
    from ..rram.isa import Imp, IntrinsicMaj, LoadInput, WriteCopy, WriteLiteral

    if len(slices) != program.num_inputs:
        raise ValueError(
            f"program expects {program.num_inputs} inputs, got {len(slices)}"
        )
    if validate:
        program.validate()
    # All devices power up in HRS (logic 0), like RramArray.
    state = [0] * program.num_devices
    for step in program.steps:
        # Write-once discipline means reads through `snapshot` and the
        # read-modify-write ops (Imp/IntrinsicMaj) both observe the
        # pre-step value of every device.
        snapshot = list(state)
        for op in step.ops:
            if isinstance(op, WriteLiteral):
                state[op.dst] = mask if op.value else 0
            elif isinstance(op, LoadInput):
                state[op.dst] = slices[op.pi_index] & mask
            elif isinstance(op, WriteCopy):
                word = snapshot[op.src]
                state[op.dst] = (word ^ mask) if op.negate else word
            elif isinstance(op, Imp):
                # dst <- !src + dst (VSET when src senses 0, hold else).
                state[op.dst] = snapshot[op.dst] | (snapshot[op.src] ^ mask)
            elif isinstance(op, IntrinsicMaj):
                # R' = M(P, !Q, R) — the device switching rule, per lane.
                state[op.dst] = maj_word(
                    snapshot[op.p], snapshot[op.q] ^ mask, snapshot[op.dst]
                )
            else:  # pragma: no cover - exhaustive over the ISA
                raise ValueError(f"unknown micro-op {op!r}")
    return [
        state[program.output_devices[po_index]]
        for po_index in sorted(program.output_devices)
    ]


def evaluate_bdd_slices(
    manager, roots: Sequence[int], var_slices: Sequence[int], mask: int
) -> List[int]:
    """Packed evaluation of BDD roots.

    ``var_slices[level]`` packs the value of the variable tested at
    BDD ``level`` (the manager's own variable order — callers translate
    from circuit input order, exactly as they would for the scalar
    :meth:`~repro.bdd.bdd.Bdd.evaluate` assignment vector).
    """
    words: Dict[int, int] = {0: 0, 1: mask}

    def compute(root: int) -> int:
        stack = [root]
        while stack:
            node = stack.pop()
            if node in words:
                continue
            lo, hi = manager.lo(node), manager.hi(node)
            missing = [c for c in (lo, hi) if c not in words]
            if missing:
                stack.append(node)
                stack.extend(missing)
                continue
            sel = var_slices[manager.level_of(node)]
            words[node] = mux_word(sel, words[hi], words[lo], mask)
        return words[root]

    return [compute(root) for root in roots]
