"""Bit-slice packing primitives for batch simulation.

The whole library already encodes *one complete truth table* as a
single big integer (:mod:`repro.truth.truth_table`).  This module
generalizes the trick to an arbitrary **window of assignments**: a
*slice* is an integer whose bit ``v`` is the value of some signal under
assignment ``start + v``.  Packing ``count`` assignments into one slice
means every bitwise operation on slices advances ``count`` simulations
at once — the word-parallel kernel the packed engines in
:mod:`repro.sim.engine` are built on.

Two encodings are supported:

* **assignment windows** (:func:`variable_slice`,
  :func:`iter_assignment_chunks`) — consecutive assignment indices
  ``start .. start + count - 1``, bit ``v`` ↔ assignment ``start + v``.
  Chunked streaming over ``2**n`` assignments never materializes the
  assignment list, so exhaustive sweeps are bounded by chunk size, not
  by ``2**n``.
* **explicit vector batches** (:func:`pack_vectors`,
  :func:`unpack_word`) — any list of input vectors, bit ``v`` ↔
  vector ``v``.  Used when the probe set is sampled rather than
  exhaustive.

Both agree with the single-assignment reference semantics of
:meth:`repro.truth.TruthTable.evaluate`; the property tests in
``tests/test_sim_bitslice.py`` pin that down.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Sequence

#: Default number of assignments packed per slice.  4096 keeps the
#: big-int words at 512 bytes — large enough to amortize the Python
#: interpreter loop, small enough that per-chunk allocations stay cheap.
DEFAULT_CHUNK_BITS = 1 << 12

try:  # Python >= 3.10
    _popcount = int.bit_count  # type: ignore[attr-defined]

    def popcount(word: int) -> int:
        """Number of set bits in a slice."""
        return word.bit_count()

except AttributeError:  # pragma: no cover - py3.9 fallback

    def popcount(word: int) -> int:
        """Number of set bits in a slice."""
        return bin(word).count("1")


def chunk_mask(count: int) -> int:
    """All-ones mask over ``count`` packed assignments."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return (1 << count) - 1


def variable_slice(index: int, start: int, count: int) -> int:
    """Packed values of input ``index`` over one assignment window.

    Bit ``v`` of the result is ``((start + v) >> index) & 1`` — the
    classic alternating block pattern of variable ``index``, windowed
    to ``[start, start + count)``.  Built by doubling one period, so
    the cost is ``O(log count)`` big-int operations.
    """
    if index < 0:
        raise ValueError(f"variable index must be non-negative, got {index}")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    if count <= 0:
        return 0
    block = 1 << index
    period = block << 1
    phase = start & (period - 1)
    width = phase + count
    # One period: `block` zeros then `block` ones, doubled up to width.
    pattern = ((1 << block) - 1) << block
    span = period
    while span < width:
        pattern |= pattern << span
        span <<= 1
    return (pattern >> phase) & chunk_mask(count)


def input_slices(num_inputs: int, start: int, count: int) -> List[int]:
    """Per-input packed slices for one assignment window."""
    return [variable_slice(i, start, count) for i in range(num_inputs)]


class AssignmentChunk(NamedTuple):
    """One streamed window of the assignment space."""

    start: int
    count: int
    mask: int
    #: ``slices[i]`` packs input ``i`` over the window.
    slices: List[int]


def iter_assignment_chunks(
    num_inputs: int, chunk_bits: int = DEFAULT_CHUNK_BITS
) -> Iterator[AssignmentChunk]:
    """Stream the full ``2**num_inputs`` space in packed windows.

    Memory is bounded by ``chunk_bits`` regardless of ``num_inputs``;
    the caller decides how many chunks it can afford to consume.
    """
    if num_inputs < 0:
        raise ValueError(f"num_inputs must be non-negative, got {num_inputs}")
    if chunk_bits <= 0:
        raise ValueError(f"chunk_bits must be positive, got {chunk_bits}")
    total = 1 << num_inputs
    start = 0
    while start < total:
        count = min(chunk_bits, total - start)
        yield AssignmentChunk(
            start, count, chunk_mask(count), input_slices(num_inputs, start, count)
        )
        start += count


def pack_vectors(
    vectors: Sequence[Sequence[bool]], num_inputs: int
) -> tuple:
    """Pack explicit input vectors into per-input slices.

    Returns ``(slices, mask, count)`` where bit ``v`` of ``slices[i]``
    is ``vectors[v][i]``.  The batch analogue of binding one vector.
    """
    slices = [0] * num_inputs
    for v, vector in enumerate(vectors):
        if len(vector) != num_inputs:
            raise ValueError(
                f"vector {v} has {len(vector)} bits, expected {num_inputs}"
            )
        bit = 1 << v
        for i, value in enumerate(vector):
            if value:
                slices[i] |= bit
    count = len(vectors)
    return slices, chunk_mask(count), count


def unpack_word(word: int, count: int) -> List[bool]:
    """Expand a packed slice back into per-assignment booleans."""
    return [bool((word >> v) & 1) for v in range(count)]


def iter_ones(word: int) -> Iterator[int]:
    """Yield the set-bit positions of a slice, lowest first.

    ``O(popcount)`` via the isolate-lowest-bit trick — the fast path
    behind :meth:`repro.truth.TruthTable.assignments_where`.
    """
    while word:
        low = word & -word
        yield low.bit_length() - 1
        word ^= low


def first_difference(a: int, b: int) -> int:
    """Lowest bit position where two slices disagree (-1 if equal)."""
    diff = a ^ b
    if not diff:
        return -1
    return (diff & -diff).bit_length() - 1


# ----------------------------------------------------------------------
# Word-level logic primitives
# ----------------------------------------------------------------------


def maj_word(a: int, b: int, c: int) -> int:
    """Bitwise ternary majority ``M(a, b, c)`` — the MIG primitive."""
    return (a & b) | (a & c) | (b & c)


def imp_word(p: int, q: int, mask: int) -> int:
    """Bitwise material implication ``!p + q`` — the IMP primitive."""
    return (p ^ mask) | q


def mux_word(sel: int, then: int, other: int, mask: int) -> int:
    """Bitwise ``sel ? then : other`` — the BDD/ITE primitive."""
    return (sel & then) | ((sel ^ mask) & other)


def random_slices(num_inputs: int, num_vectors: int, seed: int) -> List[int]:
    """Seeded random per-input slices (the miter sampling pattern).

    Byte-for-byte the sampling discipline of the pre-packed
    :mod:`repro.mig.equivalence` helpers: one ``getrandbits`` word per
    input from one :class:`random.Random` stream.
    """
    import random

    rng = random.Random(seed)
    return [rng.getrandbits(num_vectors) for _ in range(num_inputs)]
