"""Bit-packed batch simulation engine.

Packs many input assignments into wide Python-int bit-slices (one
integer per signal) so MIGs, netlists, BDDs, and compiled RRAM
micro-programs advance thousands of simulations per bitwise operation,
and streams the ``2**n`` assignment space in bounded-memory chunks.
See :mod:`repro.sim.bitslice` for the encoding and
:mod:`repro.sim.engine` for the per-representation kernels.
"""

from .bitslice import (
    DEFAULT_CHUNK_BITS,
    AssignmentChunk,
    chunk_mask,
    first_difference,
    imp_word,
    input_slices,
    iter_assignment_chunks,
    iter_ones,
    maj_word,
    mux_word,
    pack_vectors,
    popcount,
    random_slices,
    unpack_word,
    variable_slice,
)
from .engine import (
    evaluate_bdd_slices,
    execute_program_slices,
    simulate_aig_slices,
    simulate_mig_slices,
    simulate_netlist_slices,
)

__all__ = [
    "DEFAULT_CHUNK_BITS",
    "AssignmentChunk",
    "chunk_mask",
    "first_difference",
    "imp_word",
    "input_slices",
    "iter_assignment_chunks",
    "iter_ones",
    "maj_word",
    "mux_word",
    "pack_vectors",
    "popcount",
    "random_slices",
    "unpack_word",
    "variable_slice",
    "evaluate_bdd_slices",
    "execute_program_slices",
    "simulate_aig_slices",
    "simulate_mig_slices",
    "simulate_netlist_slices",
]
