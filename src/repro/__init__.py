"""repro — MIG-based logic synthesis for RRAM in-memory computing.

A from-scratch reproduction of *"Fast Logic Synthesis for RRAM-based
In-Memory Computing using Majority-Inverter Graphs"* (Shirinzadeh,
Soeken, Gaillardon, Drechsler — DATE 2016).

Public API highlights:

* :mod:`repro.truth`      — bit-parallel truth tables;
* :mod:`repro.network`    — gate-level netlists;
* :mod:`repro.io`         — ``.bench`` / BLIF / PLA parsers;
* :mod:`repro.mig`        — Majority-Inverter Graphs and the paper's
  four optimization algorithms;
* :mod:`repro.rram`       — RRAM device/array simulator, MIG→RRAM
  compiler (IMP and MAJ realizations) and the Table I cost model;
* :mod:`repro.bdd`        — ROBDD package + BDD-based RRAM baseline;
* :mod:`repro.aig`        — AIG package + AIG-based RRAM baseline;
* :mod:`repro.benchmarks` — the evaluation benchmark suites;
* :mod:`repro.flows`      — one-call reproduction of Tables II/III.
"""

__version__ = "1.0.0"

from .mig import (
    Mig,
    Realization,
    mig_from_netlist,
    mig_from_truth_tables,
    optimize_area,
    optimize_depth,
    optimize_rram,
    optimize_steps,
    rram_costs,
)
from .network import Netlist
from .truth import TruthTable

__all__ = [
    "__version__",
    "Mig",
    "Realization",
    "mig_from_netlist",
    "mig_from_truth_tables",
    "optimize_area",
    "optimize_depth",
    "optimize_rram",
    "optimize_steps",
    "rram_costs",
    "Netlist",
    "TruthTable",
]
