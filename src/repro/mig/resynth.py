"""Decomposition-based resynthesis: truth table → MIG structure.

Given a small function (≤ 6 variables) over leaf signals, build an MIG
computing it, preferring structures the majority algebra expresses
natively.  Decompositions are tried in order of strength:

1. constants and (complemented) literals;
2. top-level AND/OR with a literal: ``f = x·g`` / ``f = x + g``;
3. XOR with a literal: ``f = x ⊕ g`` (three nodes);
4. *majority decomposition*: ``f = M(±x, ±y, g)`` for some variable
   pair — detected through the cofactor conditions
   ``f_xy = 1``, ``f_x̄ȳ = 0``, ``f_xȳ = f_x̄y`` (then ``g = f_xȳ``),
   and the complemented variants;
5. Shannon expansion on the most binate variable (a MUX, three nodes),
   with the XOR special case when the cofactors are complements.

Functions whose support has at most three variables short-circuit to
the *exact* synthesizer (:mod:`repro.mig.exact`), which guarantees the
minimum node count for the residues every decomposition bottoms out in.
Four-variable functions go through a process-wide NPN-canonical recipe
cache: the decomposition engine runs once per NPN class on a scratch
graph, the resulting structure is extracted as a graph-independent
recipe (the same flat operand encoding :mod:`repro.mig.exact` uses),
and every later occurrence replays the recipe through ``make_maj`` —
where structural hashing dedupes it against the live graph.  Recipes
reference nothing in any particular :class:`Mig`, so the cache needs no
invalidation when the underlying graph mutates or rolls back.
Results are memoized per call, so shared sub-functions are built once.
This is the candidate generator for cut rewriting
(:mod:`repro.mig.rewriting`) and a usable general synthesizer in its
own right (``mig_from_truth_tables`` uses plain Shannon; this one finds
majority/XOR structure).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..truth import TruthTable
from .graph import (
    CONST0,
    CONST1,
    Mig,
    Signal,
    signal_is_complemented,
    signal_node,
    signal_not,
)
from .npn import apply_npn_to_signals, npn_canonize


def synthesize_table(
    mig: Mig,
    table: TruthTable,
    leaves: Sequence[Signal],
    memo: Optional[Dict[TruthTable, Signal]] = None,
) -> Signal:
    """Build ``table`` over the given leaf signals; returns the root.

    ``leaves[i]`` is the signal standing for table variable *i*.
    """
    if len(leaves) != table.num_vars:
        raise ValueError(
            f"need {table.num_vars} leaf signals, got {len(leaves)}"
        )
    if memo is None:
        memo = {}
    return _synth(mig, table, list(leaves), memo)


def _synth(
    mig: Mig,
    f: TruthTable,
    leaves: List[Signal],
    memo: Dict[TruthTable, Signal],
) -> Signal:
    cached = memo.get(f)
    if cached is not None:
        return cached
    complement = memo.get(~f)
    if complement is not None:
        return signal_not(complement)

    result = _synth_uncached(mig, f, leaves, memo)
    memo[f] = result
    return result


def _synth_uncached(
    mig: Mig,
    f: TruthTable,
    leaves: List[Signal],
    memo: Dict[TruthTable, Signal],
) -> Signal:
    num_vars = f.num_vars
    if f.bits == 0:
        return CONST0
    if (~f).bits == 0:
        return CONST1
    support = f.support()
    if len(support) == 1:
        index = support[0]
        positive = TruthTable.variable(num_vars, index)
        return leaves[index] if f == positive else signal_not(leaves[index])
    if len(support) <= 3:
        from .exact import synthesize_exact

        projected = _project(f, support)
        return synthesize_exact(
            mig, projected, [leaves[index] for index in support]
        )
    if len(support) == 4 and not _BUILDING_RECIPE:
        projected = _project(f, support)
        return _synthesize_npn4(
            mig, projected, [leaves[index] for index in support]
        )

    # --- literal factor: f = x·g, f = x̄·g, f = x + g, f = x̄ + g ----
    for index in support:
        one = f.cofactor(index, True)
        zero = f.cofactor(index, False)
        x = leaves[index]
        if zero.bits == 0:  # f = x · f|x=1
            return mig.make_and(x, _synth(mig, one, leaves, memo))
        if one.bits == 0:  # f = x̄ · f|x=0
            return mig.make_and(signal_not(x), _synth(mig, zero, leaves, memo))
        if (~one).bits == 0:  # f = x + f|x=0
            return mig.make_or(x, _synth(mig, zero, leaves, memo))
        if (~zero).bits == 0:  # f = x̄ + f|x=1
            return mig.make_or(signal_not(x), _synth(mig, one, leaves, memo))

    # --- XOR factor: f = x ⊕ g  iff  f|x=0 == ~f|x=1 ------------------
    for index in support:
        one = f.cofactor(index, True)
        zero = f.cofactor(index, False)
        if zero == ~one:
            return mig.make_xor(
                leaves[index], _synth(mig, zero, leaves, memo)
            )

    # --- majority decomposition: f = M(±x, ±y, g) ---------------------
    best_maj: Optional[Tuple[Signal, Signal, TruthTable]] = None
    for i in support:
        for j in support:
            if j <= i:
                continue
            f11 = f.cofactor(i, True).cofactor(j, True)
            f00 = f.cofactor(i, False).cofactor(j, False)
            f10 = f.cofactor(i, True).cofactor(j, False)
            f01 = f.cofactor(i, False).cofactor(j, True)
            if f10 != f01:
                continue
            xi, yj = leaves[i], leaves[j]
            if (~f11).bits == 0 and f00.bits == 0:
                best_maj = (xi, yj, f10)  # M(x, y, g)
            elif f11.bits == 0 and (~f00).bits == 0:
                best_maj = (signal_not(xi), signal_not(yj), f10)
            if best_maj is not None:
                x, y, residue = best_maj
                return mig.make_maj(
                    x, y, _synth(mig, residue, leaves, memo)
                )
    # Mixed-polarity majority: f = M(x, ȳ, g) iff f|x=1,y=0 = 1,
    # f|x=0,y=1 = 0, and f|x=1,y=1 == f|x=0,y=0 (then g is that).
    for i in support:
        for j in support:
            if j == i:
                continue
            f10 = f.cofactor(i, True).cofactor(j, False)
            f01 = f.cofactor(i, False).cofactor(j, True)
            f11 = f.cofactor(i, True).cofactor(j, True)
            f00 = f.cofactor(i, False).cofactor(j, False)
            if (~f10).bits == 0 and f01.bits == 0 and f11 == f00:
                return mig.make_maj(
                    leaves[i],
                    signal_not(leaves[j]),
                    _synth(mig, f11, leaves, memo),
                )

    # --- Shannon on the most binate variable --------------------------
    index = _most_binate(f, support)
    one = f.cofactor(index, True)
    zero = f.cofactor(index, False)
    x = leaves[index]
    hi = _synth(mig, one, leaves, memo)
    lo = _synth(mig, zero, leaves, memo)
    return mig.make_mux(x, hi, lo)


# ----------------------------------------------------------------------
# NPN-canonical recipe cache for 4-variable functions
# ----------------------------------------------------------------------
#
# representative bits -> (recipe, root_negate).  A recipe is the flat
# tuple-of-triples operand encoding of repro.mig.exact: each triple
# builds one majority node from ("leaf", i, neg) / ("const", v) /
# ("node", j, neg) operands, last node is the root.  Recipes come from
# one scratch-graph run of the decomposition engine per NPN class and
# carry no reference to any live graph, so they survive arbitrary
# mutation/rollback of the graphs they are replayed into.

_NPN4_RECIPES: Dict[int, Tuple[Tuple, bool]] = {}

#: Reentrancy guard: while a representative is being decomposed on the
#: scratch graph, the 4-support branch must not re-enter itself.
_BUILDING_RECIPE = False


def _npn4_recipe(representative: TruthTable) -> Tuple[Tuple, bool]:
    from ..telemetry import metrics

    cached = _NPN4_RECIPES.get(representative.bits)
    if cached is not None:
        metrics().counter("resynth.npn_cache_hits").inc()
        return cached
    metrics().counter("resynth.npn_cache_misses").inc()
    global _BUILDING_RECIPE
    scratch = Mig()
    scratch_leaves = [scratch.add_pi(f"x{i}") for i in range(4)]
    _BUILDING_RECIPE = True
    try:
        root = _synth(scratch, representative, scratch_leaves, {})
    finally:
        _BUILDING_RECIPE = False
    recipe = _extract_recipe(scratch, scratch_leaves, root)
    _NPN4_RECIPES[representative.bits] = recipe
    return recipe


def _extract_recipe(
    scratch: Mig, scratch_leaves: List[Signal], root: Signal
) -> Tuple[Tuple, bool]:
    """Flatten the root cone of a scratch graph into a replayable
    recipe (nodes in creation = id order, so replay respects
    dependencies)."""
    pi_index = {
        signal_node(leaf): position
        for position, leaf in enumerate(scratch_leaves)
    }
    cone = set()
    stack = [signal_node(root)]
    while stack:
        node = stack.pop()
        if node in cone or not scratch.is_gate(node):
            continue
        cone.add(node)
        for child in scratch.children(node):
            stack.append(signal_node(child))
    order = sorted(cone)
    index_of = {node: position for position, node in enumerate(order)}
    recipe = []
    for node in order:
        triple = []
        for s in scratch.children(node):
            child = signal_node(s)
            negate = bool(signal_is_complemented(s))
            if child == 0:
                triple.append(("const", negate))
            elif child in pi_index:
                triple.append(("leaf", pi_index[child], negate))
            else:
                triple.append(("node", index_of[child], negate))
        recipe.append(tuple(triple))
    return tuple(recipe), bool(signal_is_complemented(root))


def _synthesize_npn4(
    mig: Mig, projected: TruthTable, proj_leaves: List[Signal]
) -> Signal:
    """Replay the cached recipe of ``projected``'s NPN class over the
    given leaves (``projected`` must have all four variables in its
    support, so the class root is always a gate)."""
    representative, transform = npn_canonize(projected)
    recipe, root_negate = _npn4_recipe(representative)
    rep_leaves, output_negation = apply_npn_to_signals(
        transform, proj_leaves
    )
    built: List[Signal] = []
    for triple in recipe:
        operands = []
        for op in triple:
            if op[0] == "const":
                operands.append(CONST1 if op[1] else CONST0)
            elif op[0] == "leaf":
                signal = rep_leaves[op[1]]
                operands.append(signal_not(signal) if op[2] else signal)
            else:
                signal = built[op[1]]
                operands.append(signal_not(signal) if op[2] else signal)
        built.append(mig.make_maj(*operands))
    result = built[-1]
    if root_negate:
        result = signal_not(result)
    if output_negation:
        result = signal_not(result)
    return result


def _project(f: TruthTable, support: Sequence[int]) -> TruthTable:
    """Re-express ``f`` over exactly its support variables (in order)."""
    bits = 0
    for assignment in range(1 << len(support)):
        full = 0
        for position, variable in enumerate(support):
            if (assignment >> position) & 1:
                full |= 1 << variable
        # Variables outside the support are don't-cares; probe at 0.
        if f.value_at(full):
            bits |= 1 << assignment
    return TruthTable(len(support), bits)


def _most_binate(f: TruthTable, support: Sequence[int]) -> int:
    """The variable whose cofactors are most balanced (smallest
    |ones(f1) - ones(f0)|) — the classic Shannon pivot heuristic."""
    best_index = support[0]
    best_score: Optional[int] = None
    for index in support:
        ones = f.cofactor(index, True).count_ones()
        zeros = f.cofactor(index, False).count_ones()
        score = abs(ones - zeros)
        if best_score is None or score < best_score:
            best_index, best_score = index, score
    return best_index
