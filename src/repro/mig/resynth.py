"""Decomposition-based resynthesis: truth table → MIG structure.

Given a small function (≤ 6 variables) over leaf signals, build an MIG
computing it, preferring structures the majority algebra expresses
natively.  Decompositions are tried in order of strength:

1. constants and (complemented) literals;
2. top-level AND/OR with a literal: ``f = x·g`` / ``f = x + g``;
3. XOR with a literal: ``f = x ⊕ g`` (three nodes);
4. *majority decomposition*: ``f = M(±x, ±y, g)`` for some variable
   pair — detected through the cofactor conditions
   ``f_xy = 1``, ``f_x̄ȳ = 0``, ``f_xȳ = f_x̄y`` (then ``g = f_xȳ``),
   and the complemented variants;
5. Shannon expansion on the most binate variable (a MUX, three nodes),
   with the XOR special case when the cofactors are complements.

Functions whose support has at most three variables short-circuit to
the *exact* synthesizer (:mod:`repro.mig.exact`), which guarantees the
minimum node count for the residues every decomposition bottoms out in.
Results are memoized per call, so shared sub-functions are built once.
This is the candidate generator for cut rewriting
(:mod:`repro.mig.rewriting`) and a usable general synthesizer in its
own right (``mig_from_truth_tables`` uses plain Shannon; this one finds
majority/XOR structure).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..truth import TruthTable
from .graph import CONST0, CONST1, Mig, Signal, signal_not


def synthesize_table(
    mig: Mig,
    table: TruthTable,
    leaves: Sequence[Signal],
    memo: Optional[Dict[TruthTable, Signal]] = None,
) -> Signal:
    """Build ``table`` over the given leaf signals; returns the root.

    ``leaves[i]`` is the signal standing for table variable *i*.
    """
    if len(leaves) != table.num_vars:
        raise ValueError(
            f"need {table.num_vars} leaf signals, got {len(leaves)}"
        )
    if memo is None:
        memo = {}
    return _synth(mig, table, list(leaves), memo)


def _synth(
    mig: Mig,
    f: TruthTable,
    leaves: List[Signal],
    memo: Dict[TruthTable, Signal],
) -> Signal:
    cached = memo.get(f)
    if cached is not None:
        return cached
    complement = memo.get(~f)
    if complement is not None:
        return signal_not(complement)

    result = _synth_uncached(mig, f, leaves, memo)
    memo[f] = result
    return result


def _synth_uncached(
    mig: Mig,
    f: TruthTable,
    leaves: List[Signal],
    memo: Dict[TruthTable, Signal],
) -> Signal:
    num_vars = f.num_vars
    if f.bits == 0:
        return CONST0
    if (~f).bits == 0:
        return CONST1
    support = f.support()
    if len(support) == 1:
        index = support[0]
        positive = TruthTable.variable(num_vars, index)
        return leaves[index] if f == positive else signal_not(leaves[index])
    if len(support) <= 3:
        from .exact import synthesize_exact

        projected = _project(f, support)
        return synthesize_exact(
            mig, projected, [leaves[index] for index in support]
        )

    # --- literal factor: f = x·g, f = x̄·g, f = x + g, f = x̄ + g ----
    for index in support:
        one = f.cofactor(index, True)
        zero = f.cofactor(index, False)
        x = leaves[index]
        if zero.bits == 0:  # f = x · f|x=1
            return mig.make_and(x, _synth(mig, one, leaves, memo))
        if one.bits == 0:  # f = x̄ · f|x=0
            return mig.make_and(signal_not(x), _synth(mig, zero, leaves, memo))
        if (~one).bits == 0:  # f = x + f|x=0
            return mig.make_or(x, _synth(mig, zero, leaves, memo))
        if (~zero).bits == 0:  # f = x̄ + f|x=1
            return mig.make_or(signal_not(x), _synth(mig, one, leaves, memo))

    # --- XOR factor: f = x ⊕ g  iff  f|x=0 == ~f|x=1 ------------------
    for index in support:
        one = f.cofactor(index, True)
        zero = f.cofactor(index, False)
        if zero == ~one:
            return mig.make_xor(
                leaves[index], _synth(mig, zero, leaves, memo)
            )

    # --- majority decomposition: f = M(±x, ±y, g) ---------------------
    best_maj: Optional[Tuple[Signal, Signal, TruthTable]] = None
    for i in support:
        for j in support:
            if j <= i:
                continue
            f11 = f.cofactor(i, True).cofactor(j, True)
            f00 = f.cofactor(i, False).cofactor(j, False)
            f10 = f.cofactor(i, True).cofactor(j, False)
            f01 = f.cofactor(i, False).cofactor(j, True)
            if f10 != f01:
                continue
            xi, yj = leaves[i], leaves[j]
            if (~f11).bits == 0 and f00.bits == 0:
                best_maj = (xi, yj, f10)  # M(x, y, g)
            elif f11.bits == 0 and (~f00).bits == 0:
                best_maj = (signal_not(xi), signal_not(yj), f10)
            if best_maj is not None:
                x, y, residue = best_maj
                return mig.make_maj(
                    x, y, _synth(mig, residue, leaves, memo)
                )
    # Mixed-polarity majority: f = M(x, ȳ, g) iff f|x=1,y=0 = 1,
    # f|x=0,y=1 = 0, and f|x=1,y=1 == f|x=0,y=0 (then g is that).
    for i in support:
        for j in support:
            if j == i:
                continue
            f10 = f.cofactor(i, True).cofactor(j, False)
            f01 = f.cofactor(i, False).cofactor(j, True)
            f11 = f.cofactor(i, True).cofactor(j, True)
            f00 = f.cofactor(i, False).cofactor(j, False)
            if (~f10).bits == 0 and f01.bits == 0 and f11 == f00:
                return mig.make_maj(
                    leaves[i],
                    signal_not(leaves[j]),
                    _synth(mig, f11, leaves, memo),
                )

    # --- Shannon on the most binate variable --------------------------
    index = _most_binate(f, support)
    one = f.cofactor(index, True)
    zero = f.cofactor(index, False)
    x = leaves[index]
    hi = _synth(mig, one, leaves, memo)
    lo = _synth(mig, zero, leaves, memo)
    return mig.make_mux(x, hi, lo)


def _project(f: TruthTable, support: Sequence[int]) -> TruthTable:
    """Re-express ``f`` over exactly its support variables (in order)."""
    bits = 0
    for assignment in range(1 << len(support)):
        full = 0
        for position, variable in enumerate(support):
            if (assignment >> position) & 1:
                full |= 1 << variable
        # Variables outside the support are don't-cares; probe at 0.
        if f.value_at(full):
            bits |= 1 << assignment
    return TruthTable(len(support), bits)


def _most_binate(f: TruthTable, support: Sequence[int]) -> int:
    """The variable whose cofactors are most balanced (smallest
    |ones(f1) - ones(f0)|) — the classic Shannon pivot heuristic."""
    best_index = support[0]
    best_score: Optional[int] = None
    for index in support:
        ones = f.cofactor(index, True).count_ones()
        zeros = f.cofactor(index, False).count_ones()
        score = abs(ones - zeros)
        if best_score is None or score < best_score:
            best_index, best_score = index, score
    return best_index
