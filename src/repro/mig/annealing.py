"""Simulated-annealing complement placement (extension).

Ω.I gives every gate node a free "flip" bit: flipping node *v* toggles
the complement attribute of its three ingoing edges and of every edge
leaving it, preserving the function.  The final complement of an edge
``c → p`` under a flip assignment ``f`` is therefore

    ``orig(c → p) ⊕ f(c) ⊕ f(p)``,

and minimizing the paper's step count ``S = K_S·D + L`` (``L`` = levels
with any complemented edge) is a combinatorial optimization over
``f ∈ {0,1}^nodes`` — one the greedy passes of
:mod:`repro.mig.algorithms` explore only locally.  This module attacks
it with simulated annealing on exactly that state space, evaluating
``ΔS``/``ΔR`` incrementally per candidate flip, then realizes the best
assignment with actual Ω.I applications.

Positioned as an *extension*: the paper's algorithms are greedy; the
bench harness ablates how much annealing adds
(``benchmarks/bench_ablation.py``).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import active_trajectory, metrics, span
from .batch import batch_enabled
from .graph import (
    Mig,
    signal_is_complemented,
    signal_node,
    transactions_enabled,
)
from .rewrite import apply_inverter_propagation
from .views import Realization, level_stats


class _ComplementModel:
    """Incremental evaluator of (L, R) under a flip assignment."""

    def __init__(self, mig: Mig, realization: Realization, stats=None) -> None:
        if stats is None:
            stats = level_stats(mig)
        self.depth = stats.depth
        self.k_r = realization.rrams_per_gate
        self.k_s = realization.steps_per_level
        # No defensive copy: level_stats/CostView.stats build the dict
        # fresh per call and the model only reads it.
        self.node_level: Dict[int, int] = stats.node_levels
        self.nodes = mig.reachable_nodes()
        self.n_per_level = list(stats.nodes_per_level)
        # Edges: (child_gate_or_None, parent_level, orig_complement).
        # Grouped per node for delta evaluation: edges where the node is
        # the parent (in-edges) and where it is the child (out-edges).
        self.in_edges: Dict[int, List[Tuple[Optional[int], int, bool]]] = {}
        self.out_edges: Dict[int, List[Tuple[Optional[int], int, bool]]] = {}
        gate_set = set(self.nodes)
        for node in self.nodes:
            level = self.node_level[node]
            for child in mig.children(node):
                child_node = signal_node(child)
                if child_node == 0:
                    continue
                complemented = signal_is_complemented(child)
                child_key = child_node if child_node in gate_set else None
                edge = (child_key, level, complemented)
                self.in_edges.setdefault(node, []).append(edge)
                if child_key is not None:
                    self.out_edges.setdefault(child_node, []).append(
                        (node, level, complemented)
                    )
        # PO edges live on the virtual level depth + 1.
        self.po_level = self.depth + 1
        for po in mig.pos:
            driver = signal_node(po)
            if driver == 0 or driver not in gate_set:
                continue
            self.out_edges.setdefault(driver, []).append(
                (None, self.po_level, signal_is_complemented(po))
            )
        self.flips: Dict[int, bool] = {node: False for node in self.nodes}
        self.c_per_level = [0] * (self.po_level + 1)
        # With no flips set, the initial histogram is just "complemented
        # non-const in-edges per parent level" — the slab engine has
        # those as arrays (one bincount instead of an O(E) dict walk).
        arrays = (
            mig.slab_cost_arrays()
            if batch_enabled() and hasattr(mig, "slab_cost_arrays")
            else None
        )
        if arrays is not None:
            counts = np.bincount(
                arrays["levels"],
                weights=arrays["comp"],
                minlength=self.po_level + 1,
            )
            self.c_per_level = counts.astype(np.int64).tolist()
        else:
            for node in self.nodes:
                for edge in self.in_edges.get(node, []):
                    if self._edge_complement(node, edge):
                        self.c_per_level[edge[1]] += 1
        for po in mig.pos:
            driver = signal_node(po)
            if driver != 0 and signal_is_complemented(po):
                self.c_per_level[self.po_level] += 1

    def _edge_complement(self, parent: int, edge) -> bool:
        child_key, _level, orig = edge
        value = orig ^ self.flips[parent]
        if child_key is not None:
            value ^= self.flips[child_key]
        return value

    def costs(self) -> Tuple[int, int]:
        """Current (S, R)."""
        l_count = sum(1 for c in self.c_per_level[1:] if c > 0)
        steps = self.k_s * self.depth + l_count
        rrams = max(
            [self.c_per_level[self.po_level]]
            + [
                self.k_r * self.n_per_level[level] + self.c_per_level[level]
                for level in range(1, self.depth + 1)
            ]
        )
        return steps, rrams

    def flip_delta(self, node: int) -> List[Tuple[int, int]]:
        """(level, delta) complement-count changes of flipping ``node``."""
        deltas: Dict[int, int] = {}
        level = self.node_level[node]
        for edge in self.in_edges.get(node, []):
            change = -1 if self._edge_complement(node, edge) else 1
            deltas[level] = deltas.get(level, 0) + change
        for parent_key, parent_level, orig in self.out_edges.get(node, []):
            value = orig ^ self.flips[node]
            if parent_key is not None:
                value ^= self.flips[parent_key]
            change = -1 if value else 1
            deltas[parent_level] = deltas.get(parent_level, 0) + change
        return list(deltas.items())

    def apply_flip(self, node: int) -> None:
        for level, delta in self.flip_delta(node):
            self.c_per_level[level] += delta
        self.flips[node] = not self.flips[node]


def anneal_complements(
    mig: Mig,
    realization: Realization,
    *,
    iterations: int = 4000,
    seed: int = 0x5A,
    initial_temperature: float = 2.0,
    steps_weight: float = 4.0,
    rram_weight: float = 1.0,
    view=None,
) -> bool:
    """Anneal the flip assignment; apply the best one found.

    Returns True when the realized assignment improved ``(S, R)``.
    ``view`` optionally supplies a :class:`repro.mig.costview.CostView`
    so the before/after cost evaluations reuse the incremental state.
    """
    nodes = view.reachable() if view is not None else mig.reachable_nodes()
    if not nodes:
        return False
    with span("pass.anneal_complements", iterations=iterations, seed=seed):
        return _anneal_complements(
            mig,
            realization,
            nodes,
            iterations=iterations,
            seed=seed,
            initial_temperature=initial_temperature,
            steps_weight=steps_weight,
            rram_weight=rram_weight,
            view=view,
        )


def _anneal_complements(
    mig: Mig,
    realization: Realization,
    nodes: List[int],
    *,
    iterations: int,
    seed: int,
    initial_temperature: float,
    steps_weight: float,
    rram_weight: float,
    view,
) -> bool:
    model = _ComplementModel(
        mig, realization, stats=view.stats() if view is not None else None
    )
    start = model.costs()

    def energy(costs: Tuple[int, int]) -> float:
        steps, rrams = costs
        return steps_weight * steps + rram_weight * rrams / max(
            1, start[1]
        ) * start[0]

    rng = random.Random(seed)
    current_energy = energy(model.costs())
    best_energy = current_energy
    best_flips = dict(model.flips)

    for iteration in range(iterations):
        temperature = initial_temperature * (
            1.0 - iteration / max(1, iterations)
        ) + 1e-3
        node = nodes[rng.randrange(len(nodes))]
        model.apply_flip(node)
        candidate_energy = energy(model.costs())
        delta = candidate_energy - current_energy
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current_energy = candidate_energy
            if candidate_energy < best_energy:
                best_energy = candidate_energy
                best_flips = dict(model.flips)
        else:
            model.apply_flip(node)  # revert

    to_flip = [node for node, flip in best_flips.items() if flip]
    if not to_flip:
        return False
    before = view.stats() if view is not None else level_stats(mig)
    before_costs = (
        before.step_count(realization),
        before.rram_count(realization),
    )
    # Realize the best flip assignment under an undo scope: rejecting
    # it rolls back and compacts, bit-identical to the legacy
    # whole-graph ``copy_from(snapshot)`` restore.
    use_tx = transactions_enabled()
    token = mig.checkpoint() if use_tx else None
    snapshot = None if use_tx else mig.clone()
    for node in to_flip:
        if mig.is_gate(node):
            apply_inverter_propagation(mig, node)
    after = view.stats() if view is not None else level_stats(mig)
    after_costs = (
        after.step_count(realization),
        after.rram_count(realization),
    )
    recorder = active_trajectory()
    if after_costs >= before_costs:
        if token is not None:
            mig.rollback(token)
            mig.compact()
        else:
            mig.copy_from(snapshot)
        metrics().counter("anneal.rejected").inc()
        if recorder is not None:
            recorder.record_state(mig, view, rule="anneal", accepted=False)
        return False
    if token is not None:
        mig.commit(token)
    metrics().counter("anneal.realized").inc()
    if recorder is not None:
        recorder.record_state(mig, view, rule="anneal", accepted=True)
    return True
