"""Incrementally-maintained cost views over a mutating MIG.

The paper's optimizers (Algorithms 1–4, the annealer, cut rewriting)
interleave small structural edits with Table I cost evaluations.  The
from-scratch views in :mod:`repro.mig.views` are O(V·fanin) per call,
which turns every optimizer loop into O(V) *per move* — the dominant
cost on mid-size circuits.  :class:`CostView` keeps the same quantities
(live set, node levels, per-level node/complement histograms, depth,
PO complements) continuously up to date by consuming the structural
event log recorded by :class:`repro.mig.graph.Mig`:

* **liveness** is tracked by reference counting from live parents and
  PO slots, with kill/resurrect cascades on attach/detach/PO events;
* **levels** are repaired with a chaotic-iteration worklist seeded at
  the re-leveled nodes, propagating through fanout until a fixpoint
  (terminates on any DAG; a relaxation budget falls back to a full
  recompute as a safety valve);
* **histograms** (``N_i`` node counts and ``C_i`` ingoing complemented
  edges per level) are moved entry-by-entry as nodes change level,
  die, or resurrect.

When the pending event batch is large relative to the live graph the
view recomputes from scratch instead — delta replay only wins when the
dirty cone is small.  Every public accessor synchronizes first, so the
view is always coherent with the graph; ``assert_consistent()``
cross-checks every quantity against the from-scratch reference and is
exercised by the property tests.

Consumers receive *copies* of the level map (they memoize scratch
entries for speculative nodes into it), so sharing the view cannot
change optimizer decisions: identical inputs produce identical moves,
and the optimized graphs are bit-identical with and without the view.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .graph import EVENT_ATTACH, EVENT_DETACH, EVENT_PO, Mig
from .views import LevelStats, Realization, RramCosts, level_stats


class _DeltaOverflow(Exception):
    """Internal: delta replay exceeded its budget; do a full rebuild."""


@dataclass
class CostViewCounters:
    """Observability counters for one optimizer run (``--profile``)."""

    full_recomputes: int = 0
    delta_updates: int = 0
    cache_hits: int = 0
    events_replayed: int = 0
    moves_tried: int = 0
    moves_accepted: int = 0
    predicted_skips: int = 0
    # Batched trial evaluation (repro.mig.batch).  Always present —
    # zero when the batch path is off — and *excluded* from batch-vs-
    # scalar bit-identity comparisons (they count kernel invocations,
    # which only exist on the batch path).
    batch_score_calls: int = 0
    batch_candidates_scored: int = 0
    batch_group_calls: int = 0
    batch_strash_probes: int = 0

    #: Counter names that only accrue on the batch path (everything
    #: else must match bit-for-bit between REPRO_BATCH=0 and 1).
    BATCH_ONLY = (
        "batch_score_calls",
        "batch_candidates_scored",
        "batch_group_calls",
        "batch_strash_probes",
    )

    def merge(self, other: "CostViewCounters") -> None:
        self.full_recomputes += other.full_recomputes
        self.delta_updates += other.delta_updates
        self.cache_hits += other.cache_hits
        self.events_replayed += other.events_replayed
        self.moves_tried += other.moves_tried
        self.moves_accepted += other.moves_accepted
        self.predicted_skips += other.predicted_skips
        self.batch_score_calls += other.batch_score_calls
        self.batch_candidates_scored += other.batch_candidates_scored
        self.batch_group_calls += other.batch_group_calls
        self.batch_strash_probes += other.batch_strash_probes

    def as_dict(self) -> Dict[str, int]:
        return {
            "full_recomputes": self.full_recomputes,
            "delta_updates": self.delta_updates,
            "cache_hits": self.cache_hits,
            "events_replayed": self.events_replayed,
            "moves_tried": self.moves_tried,
            "moves_accepted": self.moves_accepted,
            "predicted_skips": self.predicted_skips,
            "batch_score_calls": self.batch_score_calls,
            "batch_candidates_scored": self.batch_candidates_scored,
            "batch_group_calls": self.batch_group_calls,
            "batch_strash_probes": self.batch_strash_probes,
        }


class CostView:
    """A versioned, lazily-revalidated cost view of one :class:`Mig`.

    All accessors are safe to call at any time; each one first folds
    pending structural events into the cached state (or recomputes when
    the dirty cone is large).  The view stays attached to the ``Mig``
    object across ``copy_from`` rollbacks (those force one full
    recompute, signalled through the event-log base jump).
    """

    #: pending-events / live-nodes ratio above which delta replay is
    #: abandoned in favor of a full O(V) rebuild.
    DELTA_THRESHOLD = 0.6

    def __init__(self, mig: Mig) -> None:
        self.mig = mig
        self.counters = CostViewCounters()
        # Baseline of the Mig's monotone transaction/strash counters:
        # profile() reports the deltas accrued during this view's run.
        self._mig_counter_base = self._mig_counters()
        self._cursor = mig.enable_event_log()
        # Per-generation lazy caches (invalidated by any mutation).
        self._order: Optional[List[int]] = None
        self._order_gen = -1
        self._heights: Optional[Dict[int, int]] = None
        self._heights_gen = -1
        self._costs_cache: Dict[Realization, Tuple[int, int]] = {}
        self._full_rebuild()

    # ------------------------------------------------------------------
    # Synchronization machinery
    # ------------------------------------------------------------------

    def _full_rebuild(self) -> None:
        mig = self.mig
        kernel = getattr(mig, "slab_cost_arrays", None)
        packed = kernel() if kernel is not None else None
        if packed is not None:
            self._rebuild_from_arrays(packed)
            return
        children_arr = mig._children
        order = mig._reachable_cached()
        levels: Dict[int, int] = {}
        live_ref: Dict[int, int] = {}
        in_comp: Dict[int, int] = {}
        n_at: Dict[int, int] = {}
        c_at: Dict[int, int] = {}
        is_pi = mig._is_pi
        for node in order:
            triple = children_arr[node]
            best = 0
            comp = 0
            for s in triple:  # type: ignore[union-attr]
                child = s >> 1
                lvl = levels.get(child, 0)
                if lvl > best:
                    best = lvl
                if s & 1 and child != 0:
                    comp += 1
                if child != 0 and not is_pi[child]:
                    live_ref[child] = live_ref.get(child, 0) + 1
            level = best + 1
            levels[node] = level
            in_comp[node] = comp
            n_at[level] = n_at.get(level, 0) + 1
            if comp:
                c_at[level] = c_at.get(level, 0) + comp
        for po in mig._pos:
            driver = po >> 1
            if driver != 0 and not is_pi[driver]:
                live_ref[driver] = live_ref.get(driver, 0) + 1
        self._levels = levels
        self._live_ref = live_ref
        self._in_comp = in_comp
        self._n_at = n_at
        self._c_at = c_at
        self._order = order
        self._order_gen = mig._generation
        self._refresh_po_summary()
        self._generation = mig._generation
        self._cursor = mig.event_cursor()
        mig.discard_events_upto(self._cursor)
        self._costs_cache.clear()
        self.counters.full_recomputes += 1

    def _rebuild_from_arrays(self, packed: dict) -> None:
        """Full rebuild from the slab engine's bulk arrays (see
        ``SlabMig.slab_cost_arrays``) — identical content to the scalar
        loop (only n_at/c_at/live_ref *insertion order* differs, which
        nothing observes: they are value-aggregated or key-looked-up)."""
        mig = self.mig
        is_pi = mig._is_pi
        order = packed["order"]
        lvl_list = packed["lvl_list"]
        levels = dict(zip(order, map(lvl_list.__getitem__, order)))
        in_comp = dict(zip(order, packed["comp"].tolist()))
        levels_np = packed["levels"]
        comp_np = packed["comp"]
        n_counts = np.bincount(levels_np)
        n_at = {
            level: count
            for level, count in enumerate(n_counts.tolist())
            if count
        }
        c_counts = np.bincount(levels_np, weights=comp_np).astype(np.int64)
        c_at = {
            level: count
            for level, count in enumerate(c_counts.tolist())
            if count
        }
        refs = packed["refs"]
        nonzero = refs.nonzero()[0]
        live_ref = dict(zip(nonzero.tolist(), refs[nonzero].tolist()))
        for po in mig._pos:
            driver = po >> 1
            if driver != 0 and not is_pi[driver]:
                live_ref[driver] = live_ref.get(driver, 0) + 1
        self._levels = levels
        self._live_ref = live_ref
        self._in_comp = in_comp
        self._n_at = n_at
        self._c_at = c_at
        self._order = order
        self._order_gen = mig._generation
        self._refresh_po_summary()
        self._generation = mig._generation
        self._cursor = mig.event_cursor()
        mig.discard_events_upto(self._cursor)
        self._costs_cache.clear()
        self.counters.full_recomputes += 1

    def _refresh_po_summary(self) -> None:
        levels = self._levels
        depth = 0
        po_comp = 0
        for po in self.mig._pos:
            driver = po >> 1
            lvl = levels.get(driver, 0)
            if lvl > depth:
                depth = lvl
            if po & 1 and driver != 0:
                po_comp += 1
        self._depth = depth
        self._po_comp = po_comp

    def _sync(self) -> None:
        mig = self.mig
        if mig._generation == self._generation:
            self.counters.cache_hits += 1
            return
        events = mig.events_since(self._cursor)
        if events is None or len(events) > max(
            64, int(self.DELTA_THRESHOLD * (len(self._levels) + 1))
        ):
            self._full_rebuild()
        else:
            try:
                self._replay(events)
            except _DeltaOverflow:
                self._full_rebuild()
            else:
                self._refresh_po_summary()
                self._generation = mig._generation
                self._cursor += len(events)
                mig.discard_events_upto(self._cursor)
                self._costs_cache.clear()
                self.counters.delta_updates += 1
                self.counters.events_replayed += len(events)

    def _replay(self, events: Sequence[tuple]) -> None:
        mig = self.mig
        children_arr = mig._children
        is_pi = mig._is_pi
        # A transaction rollback pops nodes allocated inside the
        # transaction, so events may reference ids past the end of the
        # (final-state) arrays.  Such ids are always gates (PIs cannot
        # be created inside a transaction) and their triples are always
        # covered by the ``triple_now`` overlay (their ATTACH event
        # precedes any reference to them), so they only need an
        # in-range check before the ``is_pi`` lookup.
        num_nodes = len(is_pi)
        levels = self._levels
        live_ref = self._live_ref
        in_comp = self._in_comp
        n_at = self._n_at
        c_at = self._c_at
        # Nodes that (re)joined the live set and need a level and fresh
        # histogram contributions; also the seeds of level propagation.
        pending: set = set()
        # Point-in-time child triples: ``children_arr`` already shows
        # the *final* state, but ref cascades must see each node's
        # triple as of the event being replayed.  Nodes never touched
        # by the batch are identical in both, so a sparse overlay
        # (maintained from the events themselves) suffices.
        triple_now: Dict[int, Optional[tuple]] = {}

        def current_children(node: int) -> Optional[tuple]:
            if node in triple_now:
                return triple_now[node]
            return children_arr[node]

        def remove_contribution(node: int) -> None:
            comp = in_comp.pop(node, None)
            if comp is None:
                return
            level = levels.pop(node)
            count = n_at[level] - 1
            if count:
                n_at[level] = count
            else:
                del n_at[level]
            if comp:
                count = c_at[level] - comp
                if count:
                    c_at[level] = count
                else:
                    del c_at[level]

        # Pre-seed the overlay with each touched node's start-of-batch
        # triple (a DETACH reveals it; a first-event ATTACH means the
        # node started detached).
        for event in events:
            if event[0] != EVENT_PO and event[1] not in triple_now:
                triple_now[event[1]] = (
                    event[2] if event[0] == EVENT_DETACH else None
                )

        def gain_refs(triple: Iterable[int]) -> None:
            stack = [triple]
            while stack:
                for s in stack.pop():
                    child = s >> 1
                    if child == 0 or (child < num_nodes and is_pi[child]):
                        continue
                    refs = live_ref.get(child, 0)
                    live_ref[child] = refs + 1
                    if refs == 0:
                        children = current_children(child)
                        if children is not None:
                            pending.add(child)  # resurrected
                            stack.append(children)

        def drop_refs(triple: Iterable[int]) -> None:
            stack = [triple]
            while stack:
                for s in stack.pop():
                    child = s >> 1
                    if child == 0 or (child < num_nodes and is_pi[child]):
                        continue
                    refs = live_ref[child] - 1
                    if refs:
                        live_ref[child] = refs
                    else:
                        del live_ref[child]
                        children = current_children(child)
                        if children is not None:
                            remove_contribution(child)  # died
                            pending.discard(child)
                            stack.append(children)

        for event in events:
            kind = event[0]
            if kind == EVENT_ATTACH:
                node = event[1]
                triple_now[node] = event[2]
                if live_ref.get(node):
                    remove_contribution(node)
                    pending.add(node)
                    gain_refs(event[2])
            elif kind == EVENT_DETACH:
                node = event[1]
                triple_now[node] = None
                if live_ref.get(node):
                    remove_contribution(node)
                    pending.discard(node)
                    drop_refs(event[2])
            else:  # EVENT_PO
                old, new = event[2], event[3]
                driver = new >> 1
                if driver != 0 and not (driver < num_nodes and is_pi[driver]):
                    refs = live_ref.get(driver, 0)
                    live_ref[driver] = refs + 1
                    if refs == 0:
                        children = current_children(driver)
                        if children is not None:
                            pending.add(driver)
                            gain_refs(children)
                if old is not None:
                    driver = old >> 1
                    if driver != 0 and not (driver < num_nodes and is_pi[driver]):
                        refs = live_ref[driver] - 1
                        if refs:
                            live_ref[driver] = refs
                        else:
                            del live_ref[driver]
                            children = current_children(driver)
                            if children is not None:
                                remove_contribution(driver)
                                pending.discard(driver)
                                drop_refs(children)

        # Level fixpoint: seed at pending nodes, propagate through live
        # fanout.  Chaotic iteration terminates on a DAG; the budget is
        # the safety valve against pathological re-relaxation.
        fanout = mig._fanout
        queue = deque(pending)
        budget = 8 * (len(levels) + len(pending)) + 64
        while queue:
            budget -= 1
            if budget < 0:
                raise _DeltaOverflow
            node = queue.popleft()
            triple = children_arr[node]
            if triple is None or not live_ref.get(node):
                continue  # died after being enqueued
            best = 0
            for s in triple:
                lvl = levels.get(s >> 1, 0)
                if lvl > best:
                    best = lvl
            level = best + 1
            if levels.get(node) == level:
                continue
            comp = in_comp.get(node)
            if comp is not None:  # histogram move for settled nodes
                old_level = levels[node]
                count = n_at[old_level] - 1
                if count:
                    n_at[old_level] = count
                else:
                    del n_at[old_level]
                n_at[level] = n_at.get(level, 0) + 1
                if comp:
                    count = c_at[old_level] - comp
                    if count:
                        c_at[old_level] = count
                    else:
                        del c_at[old_level]
                    c_at[level] = c_at.get(level, 0) + comp
            levels[node] = level
            for parent in fanout[node]:
                if live_ref.get(parent) and children_arr[parent] is not None:
                    queue.append(parent)
        # Install histogram contributions of (re)joined nodes.
        for node in pending:
            if children_arr[node] is None or not live_ref.get(node):
                continue
            if node in in_comp:
                continue  # already settled via an attach+resurrect pair
            comp = 0
            for s in children_arr[node]:  # type: ignore[union-attr]
                if s & 1 and (s >> 1) != 0:
                    comp += 1
            in_comp[node] = comp
            level = levels[node]
            n_at[level] = n_at.get(level, 0) + 1
            if comp:
                c_at[level] = c_at.get(level, 0) + comp

    # ------------------------------------------------------------------
    # Accessors (all synchronize first)
    # ------------------------------------------------------------------

    def size_depth(self) -> Tuple[int, int]:
        """``(live gate count, depth)`` — the Alg. 1/2 objective pair."""
        self._sync()
        return (len(self._levels), self._depth)

    def levels(self) -> Dict[int, int]:
        """Level map including PIs/constant at 0, as a fresh dict.

        A *copy* by design: optimizer helpers memoize speculative nodes
        into the map they receive (see ``rewrite._local_level``), which
        must never leak back into the view.
        """
        self._sync()
        mig = self.mig
        result = {0: 0}
        for pi in mig._pis:
            result[pi] = 0
        result.update(self._levels)
        return result

    def stats(self) -> LevelStats:
        """Materialize a :class:`LevelStats` equal to the from-scratch one."""
        self._sync()
        depth = self._depth
        nodes_per_level = [0] * (depth + 1)
        complements_per_level = [0] * (depth + 1)
        for level, count in self._n_at.items():
            nodes_per_level[level] = count
        for level, count in self._c_at.items():
            complements_per_level[level] = count
        return LevelStats(
            depth=depth,
            size=len(self._levels),
            nodes_per_level=tuple(nodes_per_level),
            complements_per_level=tuple(complements_per_level),
            po_complements=self._po_comp,
            node_levels=self.levels(),
        )

    def costs(self, realization: Realization) -> RramCosts:
        """Table I ``RramCosts`` straight from the histograms (O(levels))."""
        self._sync()
        cached = self._costs_cache.get(realization)
        if cached is None:
            k_r = realization.rrams_per_gate
            c_at = self._c_at
            best = self._po_comp
            for level, count in self._n_at.items():
                value = k_r * count + c_at.get(level, 0)
                if value > best:
                    best = value
            l_count = len(c_at) + (1 if self._po_comp else 0)
            steps = realization.steps_per_level * self._depth + l_count
            cached = (best, steps)
            self._costs_cache[realization] = cached
        rrams, steps = cached
        return RramCosts(
            realization=realization,
            rrams=rrams,
            steps=steps,
            depth=self._depth,
            size=len(self._levels),
            levels_with_complements=steps
            - realization.steps_per_level * self._depth,
        )

    def reachable(self) -> List[int]:
        """Topological live-node order (cached per generation)."""
        self._sync()
        if self._order_gen != self._generation or self._order is None:
            self._order = self.mig._reachable_cached()
            self._order_gen = self._generation
        else:
            self.counters.cache_hits += 1
        return self._order

    def heights(self) -> Dict[int, int]:
        """Node heights (distance to a PO driver), cached per generation."""
        self._sync()
        if self._heights_gen != self._generation or self._heights is None:
            order = self.reachable()
            heights: Dict[int, int] = {node: 0 for node in order}
            children_arr = self.mig._children
            for node in reversed(order):
                h1 = heights[node] + 1
                for s in children_arr[node]:  # type: ignore[union-attr]
                    child = s >> 1
                    if child in heights and heights[child] < h1:
                        heights[child] = h1
            self._heights = heights
            self._heights_gen = self._generation
        else:
            self.counters.cache_hits += 1
        return dict(self._heights)

    # ------------------------------------------------------------------
    # Speculative scoring
    # ------------------------------------------------------------------

    def predict_flip_group(
        self,
        flips: Sequence[int],
        realization: Realization,
        *,
        collides: Optional[bool] = None,
    ) -> Optional[Tuple[int, int]]:
        """Exact ``(S, R)`` after Ω.I-flipping every gate in ``flips``.

        Flips never change node levels, so the outcome is a pure
        complement-histogram delta — *unless* a rewritten triple
        collides in the structural hash, which merges nodes.  The
        collision check is conservative (order-aware over the planned
        sequence): when a collision is possible this returns ``None``
        and the caller must fall back to apply-and-measure.

        ``collides`` injects a precomputed verdict for that check (from
        :meth:`batch_probe_flip_groups`): ``True`` short-circuits to
        ``None``, ``False`` skips the scalar probe loop, ``None`` (the
        default) probes scalar-ly.  The injected verdict must have been
        computed against the current graph content — callers batch it
        only at the ``clear_complemented_levels`` fixpoint, where the
        graph is invariant across rejected trials.
        """
        self._sync()
        if collides:
            return None
        mig = self.mig
        children_arr = mig._children
        strash = mig._strash
        levels = self._levels
        applied = [f for f in flips if children_arr[f] is not None]
        if collides is None:
            done: set = set()
            for node in applied:
                triple = children_arr[node]
                if not (
                    (triple[0] >> 1) in done  # type: ignore[index]
                    or (triple[1] >> 1) in done  # type: ignore[index]
                    or (triple[2] >> 1) in done  # type: ignore[index]
                ):
                    # No earlier flip rewrote a child, so the negated
                    # triple is looked up verbatim — a hit means a
                    # possible merge.
                    negated = tuple(sorted(s ^ 1 for s in triple))  # type: ignore[union-attr]
                    if negated in strash:
                        return None
                done.add(node)
        flip_set = set(applied)
        c_delta: Dict[int, int] = {}
        po_delta = 0
        fanout = mig._fanout
        for node in applied:
            level = levels.get(node)
            triple = children_arr[node]
            if level is not None:
                # In-edges: every non-const child edge toggles unless the
                # child is flipped too (double toggle cancels).
                for s in triple:  # type: ignore[union-attr]
                    child = s >> 1
                    if child == 0 or child in flip_set:
                        continue
                    c_delta[level] = c_delta.get(level, 0) + (
                        -1 if s & 1 else 1
                    )
            # Out-edges into live unflipped parents.
            for parent in fanout[node]:
                if parent in flip_set:
                    continue
                parent_level = levels.get(parent)
                if parent_level is None:
                    continue
                for s in children_arr[parent]:  # type: ignore[union-attr]
                    if s >> 1 == node:
                        c_delta[parent_level] = c_delta.get(
                            parent_level, 0
                        ) + (-1 if s & 1 else 1)
            # PO edges (virtual level).
            for po in mig._pos:
                if po >> 1 == node:
                    po_delta += -1 if po & 1 else 1
        new_c = dict(self._c_at)
        for level, delta in c_delta.items():
            if not delta:
                continue
            value = new_c.get(level, 0) + delta
            if value:
                new_c[level] = value
            else:
                new_c.pop(level, None)
        new_po = self._po_comp + po_delta
        l_count = len(new_c) + (1 if new_po else 0)
        steps = realization.steps_per_level * self._depth + l_count
        k_r = realization.rrams_per_gate
        best = new_po
        for level, count in self._n_at.items():
            value = k_r * count + new_c.get(level, 0)
            if value > best:
                best = value
        return (steps, best)

    #: Probe-count threshold below which :meth:`batch_probe_flip_groups`
    #: stays on scalar dict lookups (numpy call overhead loses).
    BATCH_PROBE_MIN = 8

    def batch_probe_flip_groups(
        self, plans: Sequence[Sequence[int]]
    ) -> Dict[Tuple[int, ...], bool]:
        """Strash-collision verdicts for a batch of flip-group plans.

        For each plan this replays :meth:`predict_flip_group`'s
        order-aware collision pre-check (probe the negated triple of
        every flip whose children no earlier flip rewrote) and returns
        ``{tuple(plan): would_collide}``.  The probes are vectorized
        against the slab-side packed strash table
        (:meth:`repro.mig.slab.SlabMig.strash_probe_batch`) when the
        batch is large enough; otherwise they stay scalar dict lookups.

        The method is *pure* with respect to view state — it reads the
        graph's children/strash directly and never synchronizes — so it
        leaves the scalar counter stream untouched.  Verdicts are only
        valid while the graph content is unchanged (the
        ``clear_complemented_levels`` fixpoint guarantees this across
        rejected trials).
        """
        self.counters.batch_group_calls += 1
        self.counters.batch_candidates_scored += len(plans)
        mig = self.mig
        children_arr = mig._children
        strash = mig._strash
        # Collect every probe triple, remembering which plan it belongs
        # to; a plan collides iff any of its probes hits the strash.
        probes: List[Tuple[int, int, int]] = []
        probe_plan: List[int] = []
        keys: List[Tuple[int, ...]] = []
        for idx, flips in enumerate(plans):
            keys.append(tuple(flips))
            done: set = set()
            for node in flips:
                triple = children_arr[node]
                if triple is None:
                    continue
                if not (
                    (triple[0] >> 1) in done
                    or (triple[1] >> 1) in done
                    or (triple[2] >> 1) in done
                ):
                    negated = tuple(sorted(s ^ 1 for s in triple))
                    probes.append(negated)  # type: ignore[arg-type]
                    probe_plan.append(idx)
                done.add(node)
        self.counters.batch_strash_probes += len(probes)
        verdicts = [False] * len(plans)
        hits: Optional[Sequence[bool]] = None
        probe_batch = getattr(mig, "strash_probe_batch", None)
        if probe_batch is not None and len(probes) >= self.BATCH_PROBE_MIN:
            result = probe_batch(np.asarray(probes, dtype=np.int64))
            if result is not None:
                hits = result.tolist()
        if hits is None:
            hits = [probe in strash for probe in probes]
        for idx, hit in zip(probe_plan, hits):
            if hit:
                verdicts[idx] = True
        return dict(zip(keys, verdicts))

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------

    def _mig_counters(self) -> Dict[str, int]:
        mig = self.mig
        return {
            "tx_checkpoints": mig.tx_checkpoints,
            "tx_rollbacks": mig.tx_rollbacks,
            "tx_undo_replayed": mig.tx_undo_replayed,
            "strash_hits": mig.strash_hits,
            "strash_misses": mig.strash_misses,
            "compactions": mig.compactions,
        }

    def profile(self) -> Dict[str, int]:
        """One flat counter dict for ``--profile``: the CostView's own
        counters plus the graph's transaction/strash counters accrued
        since this view was created.  Plain ints, so per-worker dicts
        sum key-wise across ``--jobs`` shards."""
        merged = self.counters.as_dict()
        base = self._mig_counter_base
        for key, value in self._mig_counters().items():
            merged[key] = value - base[key]
        # Occupancy gauges (not deltas): summing across --jobs shards
        # totals the slot/slab footprint of the whole run.
        merged["nodes_allocated"] = self.mig.num_nodes_allocated
        merged["slab_capacity"] = self.mig.slab_capacity
        return merged

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def assert_consistent(self) -> None:
        """Cross-check every cached quantity against the from-scratch
        reference implementation (raises AssertionError on drift)."""
        self._sync()
        reference = level_stats(self.mig)
        mine = self.stats()
        assert mine.depth == reference.depth, (
            f"depth {mine.depth} != {reference.depth}"
        )
        assert mine.size == reference.size, (
            f"size {mine.size} != {reference.size}"
        )
        assert mine.nodes_per_level == reference.nodes_per_level, (
            f"N_i {mine.nodes_per_level} != {reference.nodes_per_level}"
        )
        assert mine.complements_per_level == reference.complements_per_level, (
            f"C_i {mine.complements_per_level} != "
            f"{reference.complements_per_level}"
        )
        assert mine.po_complements == reference.po_complements
        assert mine.node_levels == reference.node_levels, "level map drift"
        for realization in Realization:
            costs = self.costs(realization)
            assert costs.rrams == reference.rram_count(realization)
            assert costs.steps == reference.step_count(realization)
