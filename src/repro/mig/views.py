"""Level and cost views over an MIG.

Implements the cost model of paper Table I:

* ``R = max_i (K_R * N_i + C_i)`` — number of RRAM devices, where
  ``N_i`` is the number of gate nodes in level *i* and ``C_i`` the
  number of ingoing complemented edges of level *i*;
* ``S = K_S * D + L`` — number of sequential computational steps, where
  ``D`` is the MIG depth and ``L`` the number of levels that have at
  least one ingoing complemented edge;
* IMP realization: ``K_R = 6``, ``K_S = 10``;
  MAJ realization: ``K_R = 4``, ``K_S = 3``.

Conventions (documented in DESIGN.md §5):

* complemented edges to the *constant* node do not count toward ``C``
  (loading a 1 instead of a 0 is free at data-load time; ``OR`` gates
  would otherwise be charged a phantom inverter);
* complemented edges from primary inputs *do* count (the paper's
  MAJ-gadget spends step 2 inverting an input);
* complemented primary-output edges form a virtual level above the
  graph: they contribute one extra entry to ``L`` and a ``C``-only
  term to the ``R`` maximization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .graph import Mig, signal_is_complemented, signal_node


class Realization(enum.Enum):
    """RRAM realization style of a majority gate (paper Sec. III-A)."""

    IMP = "imp"
    MAJ = "maj"

    @property
    def rrams_per_gate(self) -> int:
        """``K_R``: RRAM devices per majority gate."""
        return 6 if self is Realization.IMP else 4

    @property
    def steps_per_level(self) -> int:
        """``K_S``: computational steps per MIG level."""
        return 10 if self is Realization.IMP else 3


@dataclass(frozen=True)
class LevelStats:
    """Structural statistics of one MIG, grouped by level."""

    depth: int
    size: int
    nodes_per_level: Tuple[int, ...]  # index 1..depth (index 0 unused)
    complements_per_level: Tuple[int, ...]  # same indexing
    po_complements: int  # complemented primary-output edges
    node_levels: Dict[int, int] = field(hash=False, compare=False, default_factory=dict)

    @property
    def levels_with_complements(self) -> int:
        """``L``: levels with at least one ingoing complemented edge."""
        count = sum(1 for c in self.complements_per_level[1:] if c > 0)
        if self.po_complements > 0:
            count += 1
        return count

    def rram_count(self, realization: Realization) -> int:
        """``R = max_i (K_R * N_i + C_i)`` over all levels (Table I)."""
        k = realization.rrams_per_gate
        best = 0
        for level in range(1, self.depth + 1):
            best = max(
                best,
                k * self.nodes_per_level[level]
                + self.complements_per_level[level],
            )
        best = max(best, self.po_complements)
        return best

    def step_count(self, realization: Realization) -> int:
        """``S = K_S * D + L`` (Table I)."""
        return realization.steps_per_level * self.depth + self.levels_with_complements

    def critical_level(self, realization: Realization) -> int:
        """The level index achieving the ``R`` maximum."""
        k = realization.rrams_per_gate
        best_level, best_value = 0, -1
        for level in range(1, self.depth + 1):
            value = (
                k * self.nodes_per_level[level]
                + self.complements_per_level[level]
            )
            if value > best_value:
                best_level, best_value = level, value
        return best_level


@dataclass(frozen=True)
class RramCosts:
    """The two paper cost metrics for one realization, plus context."""

    realization: Realization
    rrams: int
    steps: int
    depth: int
    size: int
    levels_with_complements: int

    def as_row(self) -> Tuple[int, int]:
        """``(R, S)`` — the two columns the paper tables report."""
        return (self.rrams, self.steps)


def node_levels(mig: Mig) -> Dict[int, int]:
    """Map every live gate node to its level (PIs/constant are level 0)."""
    levels: Dict[int, int] = {0: 0}
    for pi in mig.pis:
        levels[pi] = 0
    for node in mig.reachable_nodes():
        levels[node] = 1 + max(
            levels[signal_node(s)] for s in mig.children(node)
        )
    return levels


def _level_stats_from_arrays(mig: Mig, packed: dict) -> LevelStats:
    """Assemble :class:`LevelStats` from the slab engine's bulk arrays
    (``SlabMig.slab_cost_arrays``) — equal to the scalar result."""
    levels: Dict[int, int] = {0: 0}
    for pi in mig.pis:
        levels[pi] = 0
    order = packed["order"]
    lvl_list = packed["lvl_list"]
    levels.update(zip(order, map(lvl_list.__getitem__, order)))
    depth = 0
    for po in mig.pos:
        lvl = lvl_list[signal_node(po)]
        if lvl > depth:
            depth = lvl
    nodes_per_level = [0] * (depth + 1)
    complements_per_level = [0] * (depth + 1)
    # Every live node's level is <= some PO driver's level, so the
    # bincounts never exceed depth.
    for level, count in enumerate(np.bincount(packed["levels"]).tolist()):
        if count:
            nodes_per_level[level] = count
    c_counts = np.bincount(packed["levels"], weights=packed["comp"])
    for level, count in enumerate(c_counts.astype(np.int64).tolist()):
        if count:
            complements_per_level[level] = count
    po_complements = sum(
        1
        for po in mig.pos
        if signal_is_complemented(po) and signal_node(po) != 0
    )
    return LevelStats(
        depth=depth,
        size=len(order),
        nodes_per_level=tuple(nodes_per_level),
        complements_per_level=tuple(complements_per_level),
        po_complements=po_complements,
        node_levels=levels,
    )


def level_stats(mig: Mig) -> LevelStats:
    """Compute the per-level statistics that drive the Table I model."""
    kernel = getattr(mig, "slab_cost_arrays", None)
    if kernel is not None:
        packed = kernel()
        if packed is not None:
            return _level_stats_from_arrays(mig, packed)
    levels: Dict[int, int] = {0: 0}
    for pi in mig.pis:
        levels[pi] = 0
    live = mig.reachable_nodes()
    for node in live:
        levels[node] = 1 + max(
            levels[signal_node(s)] for s in mig.children(node)
        )
    depth = 0
    for po in mig.pos:
        depth = max(depth, levels.get(signal_node(po), 0))
    nodes_per_level = [0] * (depth + 1)
    complements_per_level = [0] * (depth + 1)
    for node in live:
        level = levels[node]
        nodes_per_level[level] += 1
        for child in mig.children(node):
            if signal_is_complemented(child) and signal_node(child) != 0:
                complements_per_level[level] += 1
    po_complements = sum(
        1
        for po in mig.pos
        if signal_is_complemented(po) and signal_node(po) != 0
    )
    return LevelStats(
        depth=depth,
        size=len(live),
        nodes_per_level=tuple(nodes_per_level),
        complements_per_level=tuple(complements_per_level),
        po_complements=po_complements,
        node_levels=levels,
    )


def rram_costs(mig: Mig, realization: Realization) -> RramCosts:
    """Evaluate the full Table I cost model for one realization."""
    stats = level_stats(mig)
    return RramCosts(
        realization=realization,
        rrams=stats.rram_count(realization),
        steps=stats.step_count(realization),
        depth=stats.depth,
        size=stats.size,
        levels_with_complements=stats.levels_with_complements,
    )


def node_heights(mig: Mig) -> Dict[int, int]:
    """Map every live gate node to its height (distance to a PO driver).

    A node directly driving a PO has height 0; heights grow toward the
    inputs.  ``level + height == depth`` identifies critical-path nodes.
    """
    heights: Dict[int, int] = {}
    order = mig.reachable_nodes()
    for node in order:
        heights[node] = 0
    for node in reversed(order):
        h = heights[node]
        for child in mig.children(node):
            child_node = signal_node(child)
            if child_node in heights and heights[child_node] < h + 1:
                heights[child_node] = h + 1
    return heights


def critical_nodes(mig: Mig) -> List[int]:
    """Live gate nodes lying on at least one longest PI→PO path."""
    levels = node_levels(mig)
    heights = node_heights(mig)
    depth = 0
    for po in mig.pos:
        depth = max(depth, levels.get(signal_node(po), 0))
    return [
        node
        for node in mig.reachable_nodes()
        if levels[node] + heights[node] == depth
    ]
