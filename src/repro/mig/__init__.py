"""Majority-Inverter Graphs: data structure, axioms, and the paper's
optimization algorithms."""

from .graph import (
    CONST0,
    CONST1,
    Mig,
    MigError,
    ObjectMig,
    Signal,
    graph_engine,
    graph_engine_name,
    make_signal,
    signal_is_complemented,
    signal_node,
    signal_not,
    transaction_engine,
    transactions_enabled,
)
from .batch import batch_enabled, batch_evaluation, batch_min_nodes
from .slab import SlabMig
from .views import (
    LevelStats,
    Realization,
    RramCosts,
    critical_nodes,
    level_stats,
    node_heights,
    node_levels,
    rram_costs,
)
from .costview import CostView, CostViewCounters
from .build import mig_from_netlist, mig_from_truth_tables, mig_to_netlist
from .equivalence import (
    EquivalenceGuard,
    mig_matches_netlist,
    mig_matches_tables,
    migs_equivalent,
)
from .algorithms import (
    ALGORITHMS,
    OptimizationResult,
    eliminate,
    inverter_propagation_pass,
    optimize_area,
    optimize_depth,
    optimize_rram,
    optimize_steps,
    push_up,
    reshape,
)
from .annealing import anneal_complements
from .cuts import cut_function, enumerate_cuts, mffc_size
from .exact import exact_size, synthesize_exact
from .npn import NpnTransform, npn_canonize
from .resynth import synthesize_table
from .rewriting import cut_rewrite, optimize_area_plus, optimize_rram_plus
from .export import save_dot, to_dot
from . import rewrite

__all__ = [
    "CONST0",
    "CONST1",
    "Mig",
    "MigError",
    "Signal",
    "make_signal",
    "signal_is_complemented",
    "signal_node",
    "signal_not",
    "ObjectMig",
    "SlabMig",
    "graph_engine",
    "graph_engine_name",
    "transaction_engine",
    "transactions_enabled",
    "batch_enabled",
    "batch_evaluation",
    "batch_min_nodes",
    "CostView",
    "CostViewCounters",
    "LevelStats",
    "Realization",
    "RramCosts",
    "critical_nodes",
    "level_stats",
    "node_heights",
    "node_levels",
    "rram_costs",
    "mig_from_netlist",
    "mig_from_truth_tables",
    "mig_to_netlist",
    "EquivalenceGuard",
    "mig_matches_netlist",
    "mig_matches_tables",
    "migs_equivalent",
    "ALGORITHMS",
    "OptimizationResult",
    "eliminate",
    "inverter_propagation_pass",
    "optimize_area",
    "optimize_depth",
    "optimize_rram",
    "optimize_steps",
    "push_up",
    "reshape",
    "rewrite",
    "save_dot",
    "to_dot",
    "anneal_complements",
    "cut_function",
    "enumerate_cuts",
    "mffc_size",
    "synthesize_table",
    "exact_size",
    "synthesize_exact",
    "NpnTransform",
    "npn_canonize",
    "cut_rewrite",
    "optimize_area_plus",
    "optimize_rram_plus",
]
