"""K-feasible cut enumeration and MFFC computation.

Substrate for cut-based rewriting (:mod:`repro.mig.rewriting`): a *cut*
of node *n* is a set of nodes (leaves) such that every path from the
primary inputs to *n* passes through a leaf; the logic between the
leaves and *n* computes a small local function that can be resynthesized
in isolation.  The classic bottom-up enumeration merges child cut sets
with size filtering and dominance pruning.

The *maximum fanout-free cone* (MFFC) of a node w.r.t. a cut is the set
of cone nodes that die if the node is replaced — the "gain budget" a
rewrite can spend.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..truth import TruthTable
from .graph import Mig, signal_is_complemented, signal_node

Cut = FrozenSet[int]

DEFAULT_CUT_SIZE = 4
DEFAULT_CUTS_PER_NODE = 12


def enumerate_cuts(
    mig: Mig,
    *,
    cut_size: int = DEFAULT_CUT_SIZE,
    cuts_per_node: int = DEFAULT_CUTS_PER_NODE,
) -> Dict[int, List[Cut]]:
    """All k-feasible cuts of every live gate node.

    Each node's list starts with its trivial cut ``{node}``; constant
    children do not occupy leaf slots (they are free in any
    resynthesis).  Dominated cuts (supersets of another cut) are pruned
    and each node keeps at most ``cuts_per_node`` cuts, smallest first.
    """
    cuts: Dict[int, List[Cut]] = {}
    for pi in mig.pis:
        cuts[pi] = [frozenset((pi,))]
    for node in mig.reachable_nodes():
        child_cut_sets: List[List[Cut]] = []
        for child in mig.children(node):
            child_node = signal_node(child)
            if child_node == 0:
                child_cut_sets.append([frozenset()])
            else:
                child_cut_sets.append(cuts.get(child_node, [frozenset((child_node,))]))
        merged: Set[Cut] = set()
        for cut_a in child_cut_sets[0]:
            for cut_b in child_cut_sets[1]:
                ab = cut_a | cut_b
                if len(ab) > cut_size:
                    continue
                for cut_c in child_cut_sets[2]:
                    abc = ab | cut_c
                    if len(abc) <= cut_size:
                        merged.add(abc)
        pruned = _prune_dominated(merged)
        pruned.sort(key=len)
        result = [frozenset((node,))] + pruned[: cuts_per_node - 1]
        cuts[node] = result
    return cuts


def _prune_dominated(cuts: Set[Cut]) -> List[Cut]:
    """Drop any cut that is a superset of another cut."""
    ordered = sorted(cuts, key=len)
    kept: List[Cut] = []
    for cut in ordered:
        if not any(other <= cut for other in kept if other != cut):
            kept.append(cut)
    return kept


def cut_function(mig: Mig, node: int, leaves: Sequence[int]) -> TruthTable:
    """Truth table of ``node`` over the ordered cut ``leaves``.

    Local bit-parallel simulation of the cone between the leaves and
    the node; at most 6 leaves (64-row tables) for sanity.
    """
    if len(leaves) > 6:
        raise ValueError("cut function limited to 6 leaves")
    num_vars = len(leaves)
    mask = (1 << (1 << num_vars)) - 1
    words: Dict[int, int] = {0: 0}
    for index, leaf in enumerate(leaves):
        words[leaf] = TruthTable.variable(num_vars, index).bits

    def signal_word(signal: int) -> int:
        word = compute(signal_node(signal))
        return word ^ mask if signal_is_complemented(signal) else word

    def compute(target: int) -> int:
        if target in words:
            return words[target]
        if not mig.is_gate(target):
            raise ValueError(
                f"cone of node {node} escapes the cut at node {target}"
            )
        a, b, c = (signal_word(s) for s in mig.children(target))
        word = (a & b) | (a & c) | (b & c)
        words[target] = word
        return word

    return TruthTable(num_vars, compute(node))


def cone_between(mig: Mig, node: int, leaves: Sequence[int]) -> List[int]:
    """Gate nodes strictly inside the cut cone (node included)."""
    leaf_set = set(leaves)
    cone: List[int] = []
    seen: Set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current in seen or current in leaf_set or not mig.is_gate(current):
            continue
        seen.add(current)
        cone.append(current)
        for child in mig.children(current):
            stack.append(signal_node(child))
    return cone


def mffc_size(
    mig: Mig,
    node: int,
    leaves: Sequence[int],
    live: Optional[Set[int]] = None,
) -> int:
    """Nodes that die if ``node`` is replaced (cut-bounded MFFC).

    A cone node (other than ``node`` itself) belongs to the MFFC iff
    every one of its fanouts (and no primary output) lies inside the
    MFFC.  Computed by fixpoint from the root.

    ``live`` restricts which fanout parents count: speculative rewriting
    leaves dead-but-attached candidate nodes whose references must not
    block MFFC membership (pass the current live-node set).
    """
    cone = set(cone_between(mig, node, leaves))
    mffc: Set[int] = {node}
    changed = True
    while changed:
        changed = False
        for candidate in cone:
            if candidate in mffc:
                continue
            if mig.po_refs(candidate):
                continue
            parents = mig.fanout_counts(candidate)
            if live is not None:
                parents = {p: c for p, c in parents.items() if p in live}
            if parents and all(parent in mffc for parent in parents):
                mffc.add(candidate)
                changed = True
    return len(mffc)
