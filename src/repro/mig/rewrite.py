"""MIG axiom implementations (paper Sec. II-B and III-C).

Every public function here is a *function-preserving* local rewrite:
it derives a replacement signal from one of the MIG axioms and installs
it with :meth:`Mig.substitute`, so graph consistency (structural
hashing, Ω.M irredundancy) is maintained automatically.

Axioms implemented:

* ``Ω.M``  — majority rule (enforced structurally at all times);
* ``Ω.D``  — distributivity, both directions
  (``M(x,y,M(u,v,z)) ↔ M(M(x,y,u),M(x,y,v),z)``);
* ``Ω.A``  — associativity (``M(x,u,M(y,u,z)) = M(z,u,M(y,u,x))``);
* ``Ψ.C``  — complementary associativity
  (``M(x,u,M(y,!u,z)) = M(x,u,M(y,x,z))``);
* ``Ω.I``  — inverter propagation (``M(x,y,z) = !M(!x,!y,!z)``), with
  the paper's three RRAM-oriented cases keyed on the number of
  complemented ingoing edges and the polarity of the fanout;
* ``Ψ.R``  — relevance (``M(x,y,z) = M(x,y,z_{x/!y})``).

Complemented edges *into* a gate child are handled uniformly through
*effective children*: an edge ``!M(a,b,c)`` is treated as the gate
``M(!a,!b,!c)`` (one application of Ω.I), which lets every pattern
matcher see through edge polarities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Mig, MigError, Signal, signal_is_complemented, signal_node, signal_not

_SLOT_PAIRS = ((0, 1, 2), (0, 2, 1), (1, 2, 0))


def signal_level(levels: Optional[Dict[int, int]], signal: Signal) -> int:
    """Level of the node behind ``signal``.

    PIs, constants, and nodes absent from the map (or a ``None`` map)
    are level 0 — the shared convention of every level-aware rewrite.
    """
    if levels is None:
        return 0
    return levels.get(signal >> 1, 0)


def effective_children(mig: Mig, edge: Signal) -> Optional[Tuple[Signal, Signal, Signal]]:
    """Children of the gate behind ``edge``, seen through its polarity.

    Returns None when the edge does not point at a gate node.
    ``M(edge) == M(effective children)`` with no edge complement left.
    """
    node = signal_node(edge)
    if not mig.is_gate(node):
        return None
    children = mig.children(node)
    if signal_is_complemented(edge):
        return tuple(signal_not(c) for c in children)  # type: ignore[return-value]
    return children


def _multiset_common(
    first: Sequence[Signal], second: Sequence[Signal]
) -> Tuple[List[Signal], List[Signal], List[Signal]]:
    """Split two child triples into (common, rest_first, rest_second)."""
    rest_second = list(second)
    common: List[Signal] = []
    rest_first: List[Signal] = []
    for signal in first:
        if signal in rest_second:
            rest_second.remove(signal)
            common.append(signal)
        else:
            rest_first.append(signal)
    return common, rest_first, rest_second


def _is_single_use(mig: Mig, edge: Signal) -> bool:
    """True iff the gate behind ``edge`` has exactly one reference."""
    node = signal_node(edge)
    return mig.fanout_size(node) == 1 and not mig.po_refs(node)


# ----------------------------------------------------------------------
# Ω.D right-to-left (node merging, used by `eliminate`)
# ----------------------------------------------------------------------


def apply_distributivity_rl(mig: Mig, node: int, *, force: bool = False) -> bool:
    """``M(M(x,y,u), M(x,y,v), z) → M(x,y, M(u,v,z))`` at ``node``.

    Matches through edge polarities.  By default only fires when it is
    guaranteed not to increase the node count (both inner gates are
    single-use, so the rewrite nets at least one node); ``force=True``
    applies any match (used by reshaping passes).
    """
    if not mig.is_gate(node):
        return False
    children = mig.children(node)
    for i, j, k in _SLOT_PAIRS:
        ec_i = effective_children(mig, children[i])
        ec_j = effective_children(mig, children[j])
        if ec_i is None or ec_j is None:
            continue
        if signal_node(children[i]) == signal_node(children[j]):
            continue
        common, rest_i, rest_j = _multiset_common(ec_i, ec_j)
        if len(common) == 3:
            # The two gates compute the same function: Ω.M collapses n.
            equivalent = children[i]
            mig.substitute(node, equivalent)
            return True
        if len(common) < 2:
            continue
        if not force and not (
            _is_single_use(mig, children[i]) and _is_single_use(mig, children[j])
        ):
            continue
        x, y = common[0], common[1]
        u = rest_i[0]
        v = rest_j[0]
        z = children[k]
        inner = mig.make_maj(u, v, z)
        replacement = mig.make_maj(x, y, inner)
        if signal_node(replacement) == node:
            continue
        mig.substitute(node, replacement)
        return True
    return False


# ----------------------------------------------------------------------
# Ω.D left-to-right (depth reduction, used by push-up)
# ----------------------------------------------------------------------


def apply_distributivity_lr(
    mig: Mig, node: int, levels: Dict[int, int]
) -> bool:
    """``M(x,y,M(u,v,z)) → M(M(x,y,u),M(x,y,v),z)`` when it lowers
    the level of ``node``.

    The deepest effective child of the inner gate is hoisted (paper
    Sec. III-C2: beneficial exactly when the critical variable is the
    inner gate's own critical operand).
    """
    if not mig.is_gate(node):
        return False
    children = mig.children(node)
    old_level = 1 + max(levels.get(signal_node(s), 0) for s in children)

    best: Optional[Tuple[int, Tuple[Signal, ...], Signal]] = None
    for i, j, k in _SLOT_PAIRS:
        inner = effective_children(mig, children[k])
        if inner is None:
            continue
        x, y = children[i], children[j]
        outer_level = max(signal_level(levels, x), signal_level(levels, y))
        for hoist_index in range(3):
            z = inner[hoist_index]
            u, v = (inner[m] for m in range(3) if m != hoist_index)
            new_level = 1 + max(
                signal_level(levels, z),
                1 + max(outer_level, signal_level(levels, u)),
                1 + max(outer_level, signal_level(levels, v)),
            )
            if new_level < old_level and (best is None or new_level < best[0]):
                best = (new_level, (x, y, u, v), z)
    if best is None:
        return False
    _new_level, (x, y, u, v), z = best
    left = mig.make_maj(x, y, u)
    right = mig.make_maj(x, y, v)
    replacement = mig.make_maj(left, right, z)
    if signal_node(replacement) == node:
        return False
    mig.substitute(node, replacement)
    return True


# ----------------------------------------------------------------------
# Ω.A associativity
# ----------------------------------------------------------------------


def apply_associativity(
    mig: Mig,
    node: int,
    levels: Dict[int, int],
    *,
    allow_neutral: bool = False,
) -> bool:
    """``M(x,u,M(y,u,z)) → M(z,u,M(y,u,x))`` when the swap lowers the
    level of ``node`` (or keeps it, with ``allow_neutral=True``, for
    reshaping).
    """
    if not mig.is_gate(node):
        return False
    children = mig.children(node)
    old_level = 1 + max(signal_level(levels, s) for s in children)

    for i, j, k in _SLOT_PAIRS:
        inner = effective_children(mig, children[k])
        if inner is None:
            continue
        for u_slot, x_slot in ((i, j), (j, i)):
            u = children[u_slot]
            x = children[x_slot]
            for z_index in range(3):
                if inner[z_index] != u:
                    continue
                # inner = M(y, u, z) with u shared; try swapping x with
                # each remaining inner operand.  The candidate inner is
                # built to measure its *actual* level: Ω.M collapses and
                # strash hits often make it cheaper than the worst-case
                # estimate (this is the paper's depth example
                # M(x,u,M(y,u,M(p,q,r)))).
                others = [inner[m] for m in range(3) if m != z_index]
                for swap_index in range(2):
                    z = others[swap_index]
                    y = others[1 - swap_index]
                    if z == x:
                        continue
                    new_inner = mig.make_maj(y, u, x)
                    new_level = 1 + max(
                        signal_level(levels, z),
                        signal_level(levels, u),
                        _local_level(mig, signal_node(new_inner), levels),
                    )
                    if new_level > old_level:
                        continue
                    if new_level == old_level and not allow_neutral:
                        continue
                    replacement = mig.make_maj(z, u, new_inner)
                    if signal_node(replacement) == node:
                        continue
                    if new_level == old_level and signal_node(
                        replacement
                    ) == signal_node(children[k]):
                        continue
                    try:
                        mig.substitute(node, replacement)
                    except MigError:
                        continue
                    return True
    return False


# ----------------------------------------------------------------------
# Ψ.C complementary associativity
# ----------------------------------------------------------------------


def apply_complementary_associativity(
    mig: Mig, node: int, levels: Optional[Dict[int, int]] = None
) -> bool:
    """``M(x,u,M(y,!u,z)) → M(x,u,M(y,x,z))``.

    Fires when the rewrite does not increase the node's level and
    removes at least one complemented reference (its purpose in the
    paper's algorithms is complement reduction).
    """
    if not mig.is_gate(node):
        return False
    children = mig.children(node)
    old_level = (
        1 + max(signal_level(levels, s) for s in children) if levels else None
    )

    for i, j, k in _SLOT_PAIRS:
        inner = effective_children(mig, children[k])
        if inner is None:
            continue
        for u_slot, x_slot in ((i, j), (j, i)):
            u = children[u_slot]
            x = children[x_slot]
            not_u = signal_not(u)
            for hit in range(3):
                if inner[hit] != not_u:
                    continue
                y, z = (inner[m] for m in range(3) if m != hit)
                # Only beneficial when x is a "cheaper" reference than
                # !u: fewer complements, no deeper level.
                if signal_is_complemented(x) and signal_node(x) != 0:
                    continue
                if levels is not None and signal_level(
                    levels, x
                ) > signal_level(levels, not_u):
                    continue
                new_inner = mig.make_maj(y, x, z)
                replacement = mig.make_maj(x, u, new_inner)
                if signal_node(replacement) == node:
                    continue
                if old_level is not None:
                    new_level = 1 + max(
                        signal_level(levels, x),
                        signal_level(levels, u),
                        1 + max(
                            signal_level(levels, y),
                            signal_level(levels, x),
                            signal_level(levels, z),
                        ),
                    )
                    if new_level > old_level:
                        continue
                mig.substitute(node, replacement)
                return True
    return False


# ----------------------------------------------------------------------
# Ω.I inverter propagation (paper Sec. III-C3, Fig. 4)
# ----------------------------------------------------------------------


def complemented_fanin_count(mig: Mig, node: int) -> int:
    """Number of complemented ingoing edges (constant edges excluded)."""
    return sum(
        1
        for s in mig.children(node)
        if signal_is_complemented(s) and signal_node(s) != 0
    )


def fanout_all_complemented(mig: Mig, node: int) -> bool:
    """True iff every reference to ``node`` carries a complement.

    This is the precondition of the paper's case (2): pushing the
    complement up then *cancels* on every fanout edge, so no level
    gains a complemented edge.
    """
    refs = 0
    for parent in mig.fanout_counts(node):
        for s in mig.children(parent):
            if signal_node(s) == node:
                refs += 1
                if not signal_is_complemented(s):
                    return False
    for po_index in mig.po_refs(node):
        refs += 1
        if not signal_is_complemented(mig.pos[po_index]):
            return False
    return refs > 0


def inverter_propagation_case(mig: Mig, node: int) -> Optional[int]:
    """Classify ``node`` for the paper's Ω.I extension.

    Returns 1, 2 or 3 per Sec. III-C3 (or None when fewer than two
    ingoing complemented edges):

    * case 1 — all three ingoing edges complemented;
    * case 2 — two complemented *and* all fanout references
      complemented (the moved complement cancels everywhere);
    * case 3 — two complemented, fanout not uniformly complemented.
    """
    if not mig.is_gate(node):
        return None
    count = complemented_fanin_count(mig, node)
    if count == 3:
        return 1
    if count == 2:
        return 2 if fanout_all_complemented(mig, node) else 3
    return None


def apply_inverter_propagation(mig: Mig, node: int) -> bool:
    """Flip ``node``: ``M(x,y,z) → !M(!x,!y,!z)`` installed via
    substitution, so every fanout/PO edge polarity toggles."""
    if not mig.is_gate(node):
        return False
    children = mig.children(node)
    flipped = mig.make_maj(*(signal_not(s) for s in children))
    replacement = signal_not(flipped)
    if signal_node(replacement) == node:
        return False
    try:
        mig.substitute(node, replacement)
    except MigError:
        return False
    return True


# ----------------------------------------------------------------------
# Ψ.R relevance
# ----------------------------------------------------------------------


def rebuild_with_replacement(
    mig: Mig,
    root: Signal,
    target: Signal,
    replacement: Signal,
    *,
    size_limit: int = 256,
) -> Optional[Signal]:
    """Rebuild the cone of ``root`` with ``target`` replaced.

    Both polarities are handled (``!target`` becomes ``!replacement``).
    Returns the rebuilt signal, ``root`` itself when nothing matched,
    or None when the cone exceeds ``size_limit``.
    """
    target_node = signal_node(target)
    node_replacement = replacement ^ (target & 1)

    cone = mig.cone_nodes(root)
    if len(cone) > size_limit:
        return None

    mapping: Dict[int, Signal] = {target_node: node_replacement}

    def mapped(signal: Signal) -> Signal:
        node = signal_node(signal)
        if node in mapping:
            return mapping[node] ^ (signal & 1)
        return signal

    changed = False
    for node in cone:
        if node == target_node:
            changed = True
            continue
        children = mig.children(node)
        new_children = tuple(mapped(s) for s in children)
        if new_children != children:
            mapping[node] = mig.make_maj(*new_children)
            changed = True
    if not changed:
        return root
    return mapped(root)


def apply_relevance(
    mig: Mig,
    node: int,
    levels: Dict[int, int],
    *,
    size_limit: int = 256,
) -> bool:
    """``M(x,y,z) → M(x,y, z_{x/!y})`` when the substitution shrinks
    the level of ``node`` (z chosen as the deepest child; both (x,y)
    orderings tried)."""
    if not mig.is_gate(node):
        return False
    children = mig.children(node)
    old_level = 1 + max(signal_level(levels, s) for s in children)

    order = sorted(
        range(3),
        key=lambda i: signal_level(levels, children[i]),
        reverse=True,
    )
    z = children[order[0]]
    if not mig.is_gate(signal_node(z)):
        return False
    for x_slot, y_slot in ((order[1], order[2]), (order[2], order[1])):
        x = children[x_slot]
        y = children[y_slot]
        if signal_node(x) == 0:
            continue
        rebuilt = rebuild_with_replacement(
            mig, z, x, signal_not(y), size_limit=size_limit
        )
        if rebuilt is None or rebuilt == z:
            continue
        replacement = mig.make_maj(x, y, rebuilt)
        if signal_node(replacement) == node:
            continue
        # Accept only if the node's level strictly improves.
        new_level = _local_level(mig, signal_node(replacement), levels)
        if new_level >= old_level:
            continue
        try:
            mig.substitute(node, replacement)
        except MigError:
            continue
        return True
    return False


def _local_level(mig: Mig, node: int, levels: Dict[int, int]) -> int:
    """Level of ``node``, computing fresh nodes not present in ``levels``."""
    if node in levels or not mig.is_gate(node):
        return levels.get(node, 0)
    stack = [(node, 0)]
    while stack:
        current, child_index = stack.pop()
        if current in levels:
            continue
        children = mig.children(current)
        pushed = False
        for i in range(child_index, 3):
            child = signal_node(children[i])
            if child not in levels and mig.is_gate(child):
                stack.append((current, i + 1))
                stack.append((child, 0))
                pushed = True
                break
        if not pushed:
            levels[current] = 1 + max(
                levels.get(signal_node(s), 0) for s in children
            )
    return levels[node]
