"""Numpy-slab storage engine for the MIG.

:class:`SlabMig` keeps the object-graph arrays of :class:`Mig` as the
source of truth for *mutation* (so every primitive — ``make_maj``,
``substitute``, the undo journal, the event log — behaves byte-for-byte
like the object engine) and maintains, next to them, a flat numpy slab:
one contiguous ``(capacity, 3)`` int64 array of child signals plus a
packed primary-input bitmask.  The slab feeds the vectorized cost
kernels (`slab_cost_arrays`) and the gather-based ``clone``/``compact``
path; it is synchronized *lazily*:

* ``_attach``/``_detach`` append the touched node id to a dirty list —
  O(1) per mutation, no numpy scalar writes on the hot path;
* ``rollback`` pre-scans the journal suffix once and batches every
  touched row into the same dirty list (homogeneous records become one
  sliced array write at the next sync), while wholesale ``copy_from``
  records flip the slab to a full rebuild;
* ``_sync_slab`` settles the dirty rows (or rebuilds the whole slab)
  with sliced writes, doubling capacity when the graph outgrows it.

Node ids are row indices; the free-list discipline is inherited from
the object engine unchanged (rollback pops recycle the tail slots, so
ids — and therefore rows — stay identical across engines).  Because the
slab is a cache and never the mutation source, bit-identity with
``ObjectMig`` holds by construction; the kernels below are only *used*
above :data:`SlabMig.KERNEL_MIN_NODES` live nodes, where the fixed
numpy overhead amortizes.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import Mig, Signal

_ZERO_ROW = (0, 0, 0)


class SlabMig(Mig):
    """MIG storage engine backed by a flat numpy signal slab."""

    #: Minimum live-node count before the vectorized kernels engage.
    #: Below this, per-call numpy overhead loses to the scalar paths
    #: (MCNC-scale circuits stay scalar); the cutover is bit-invisible.
    KERNEL_MIN_NODES = 4096

    #: Dirty-list bound: past this many pending row updates a full
    #: rebuild is cheaper (and bounds memory).
    DIRTY_LIMIT = 1 << 18

    #: Smallest slab allocation, in rows.
    MIN_CAPACITY = 1024

    #: Signal-id bit width of the packed strash probe table; ids at or
    #: above ``1 << _STRASH_PACK_BITS`` fall back to scalar dict probes.
    _STRASH_PACK_BITS = 21

    def __init__(self, name: str = "mig") -> None:
        super().__init__(name)
        self._slab: Optional[np.ndarray] = None
        self._pi_np: Optional[np.ndarray] = None
        self._slab_len = 0  # rows valid as of the last sync
        self._slab_dirty: List[int] = []
        self._slab_full = True  # next sync must rebuild from scratch
        # Packed strash-key table for batched probing (per generation).
        self._strash_table: Optional[np.ndarray] = None
        self._strash_table_gen = -1

    # ------------------------------------------------------------------
    # Dirty tracking (mutation side)
    # ------------------------------------------------------------------

    def _attach(self, node: int, children: Tuple[Signal, Signal, Signal]) -> None:
        super()._attach(node, children)
        if not self._slab_full:
            dirty = self._slab_dirty
            dirty.append(node)
            if len(dirty) > self.DIRTY_LIMIT:
                self._slab_full = True

    def _detach(self, node: int) -> None:
        had = self._children[node] is not None
        super()._detach(node)
        if had and not self._slab_full:
            dirty = self._slab_dirty
            dirty.append(node)
            if len(dirty) > self.DIRTY_LIMIT:
                self._slab_full = True

    def rollback(self, token: int) -> None:
        # The base replay writes rows directly (it does not go through
        # _attach/_detach), so batch the touched ids from the journal
        # suffix before it runs.  Invalid tokens fall through to the
        # base error path untouched.
        if token == len(self._tx_stack) - 1 and token >= 0:
            mark = self._tx_stack[token]
            if not self._slab_full:
                dirty = self._slab_dirty
                for record in self._undo[mark:]:
                    kind = record[0]
                    if kind == "w":
                        self._slab_full = True
                        break
                    if kind != "p":  # "a"/"d"/"n" all touch a row
                        dirty.append(record[1])
                if len(dirty) > self.DIRTY_LIMIT:
                    self._slab_full = True
        super().rollback(token)

    def copy_from(self, other: "Mig") -> None:
        super().copy_from(other)
        self._slab_full = True

    # ------------------------------------------------------------------
    # Slab synchronization
    # ------------------------------------------------------------------

    @property
    def slab_capacity(self) -> int:
        """Allocated slab rows (0 before the first sync)."""
        return 0 if self._slab is None else int(self._slab.shape[0])

    def _grow_to(self, n: int) -> None:
        cap = self.MIN_CAPACITY
        while cap < n:
            cap <<= 1
        slab = np.zeros((cap, 3), dtype=np.int64)
        pi_np = np.zeros(cap, dtype=bool)
        if self._slab is not None and self._slab_len:
            keep = min(self._slab_len, n)
            slab[:keep] = self._slab[:keep]
            pi_np[:keep] = self._pi_np[:keep]
        self._slab = slab
        self._pi_np = pi_np

    def _sync_slab(self) -> None:
        """Settle pending row updates so ``slab[:len(children)]`` holds
        every node's child triple ((0,0,0) for PIs/constants/dead)."""
        children = self._children
        n = len(children)
        if self._slab_full or self._slab is None:
            if self._slab is None or self._slab.shape[0] < n:
                self._slab = None
                self._slab_len = 0
                self._grow_to(n)
            flat = np.fromiter(
                chain.from_iterable(
                    t if t is not None else _ZERO_ROW for t in children
                ),
                dtype=np.int64,
                count=3 * n,
            )
            self._slab[:n] = flat.reshape(n, 3)
            self._pi_np[:n] = np.fromiter(self._is_pi, dtype=bool, count=n)
            self._slab_len = n
            self._slab_dirty = []
            self._slab_full = False
            return
        if self._slab.shape[0] < n:
            self._grow_to(n)
        if self._slab_len < n:
            # Rows appended since the last sync: zero-fill (stale data
            # may linger from rolled-back allocations) and refresh the
            # PI mask; gate triples arrive via the dirty list.
            self._slab[self._slab_len : n] = 0
            is_pi = self._is_pi
            self._pi_np[self._slab_len : n] = [
                is_pi[i] for i in range(self._slab_len, n)
            ]
        # Rows past n (rollback pops) are stale and simply ignored.
        self._slab_len = n
        dirty = self._slab_dirty
        if dirty:
            ids = sorted({d for d in dirty if d < n})
            if ids:
                rows = [
                    children[d] if children[d] is not None else _ZERO_ROW
                    for d in ids
                ]
                idx = np.fromiter(ids, dtype=np.int64, count=len(ids))
                self._slab[idx] = np.fromiter(
                    chain.from_iterable(rows),
                    dtype=np.int64,
                    count=3 * len(ids),
                ).reshape(len(ids), 3)
            self._slab_dirty = []

    # ------------------------------------------------------------------
    # Vectorized kernels
    # ------------------------------------------------------------------

    def _level_list(self, order: List[int]) -> List[int]:
        """Levels indexed by node id (0 for PIs/constants/non-order).

        A single depth-independent scalar pass: a frontier-wave numpy
        relaxation degrades to O(depth) kernel launches on deep
        arithmetic (a 1536-bit ripple adder has depth in the thousands),
        so the level recurrence itself stays scalar while everything
        around it (histograms, reference counts, gathers) vectorizes.
        """
        children = self._children
        lvl = [0] * len(children)
        for n in order:
            a, b, c = children[n]
            la = lvl[a >> 1]
            lb = lvl[b >> 1]
            lc = lvl[c >> 1]
            if lb > la:
                la = lb
            if lc > la:
                la = lc
            lvl[n] = la + 1
        return lvl

    def slab_cost_arrays(self) -> Optional[Dict[str, object]]:
        """Bulk per-live-node arrays for the cost-view/level-stats
        rebuilds, or None when the graph is small enough that the
        scalar paths win (the caller then uses those — results are
        identical either way).

        Keys: ``order`` (shared topo list — do not mutate), ``levels``
        (int64 per order position), ``comp`` (complemented non-constant
        in-edges per order position), ``lvl_list`` (levels indexed by
        node id, plain ints), ``refs`` (gate-side live reference counts
        indexed by node id, excluding constants/PIs — PO references are
        the caller's).
        """
        order = self._reachable_cached()
        m = len(order)
        if m < self.KERNEL_MIN_NODES:
            return None
        self._sync_slab()
        order_np = np.fromiter(order, dtype=np.int64, count=m)
        signals = self._slab[order_np]
        child = signals >> 1
        comp = ((signals & 1) & (child != 0)).sum(axis=1, dtype=np.int64)
        lvl_list = self._level_list(order)
        levels = np.fromiter(
            map(lvl_list.__getitem__, order), dtype=np.int64, count=m
        )
        # live_ref semantics of the scalar rebuild: every child slot of
        # a live gate counts unless it is the constant or a PI (dead
        # non-PI children included — resurrection logic depends on it).
        mask = (child != 0) & ~self._pi_np[child]
        refs = np.bincount(
            child[mask], minlength=len(self._children)
        )
        return {
            "order": order,
            "order_np": order_np,
            "levels": levels,
            "comp": comp,
            "lvl_list": lvl_list,
            "refs": refs,
        }

    # ------------------------------------------------------------------
    # Batched trial evaluation (see repro.mig.batch)
    # ------------------------------------------------------------------

    def slab_invprop_case_array(self, min_nodes: int) -> Optional[np.ndarray]:
        """Ω.I case per node id in one vector pass, or None below the
        cutover.

        ``result[node]`` equals ``inverter_propagation_case(mig, node)``
        for every gate (0 encodes None); non-gate rows are zero and must
        be filtered by the caller's ``is_gate`` check, exactly like the
        scalar classifier's guard.  Matches the scalar semantics
        including the dead-but-attached subtlety: ``fanout_all_
        complemented`` counts *attached* references (slot-level
        multiplicity, live or dead) plus PO refs, which is exactly the
        slot population of the non-zero slab rows.
        """
        order = self._reachable_cached()
        if len(order) < min_nodes:
            return None
        self._sync_slab()
        n = len(self._children)
        signals = self._slab[:n]
        child = signals >> 1
        comp = signals & 1
        cin = ((comp != 0) & (child != 0)).sum(axis=1)
        # Reference polarity census.  Zero rows (PIs/constants/dead)
        # only contribute to index 0, which is never a gate.
        flat_child = child.ravel()
        total = np.bincount(flat_child, minlength=n)
        plain = np.bincount(flat_child[comp.ravel() == 0], minlength=n)
        for po in self._pos:
            total[po >> 1] += 1
            if not po & 1:
                plain[po >> 1] += 1
        all_comp = (total > 0) & (plain == 0)
        case = np.zeros(n, dtype=np.int8)
        case[cin == 3] = 1
        two = cin == 2
        case[two & all_comp] = 2
        case[two & ~all_comp] = 3
        return case

    def slab_invprop_scores(
        self,
        candidates: np.ndarray,
        levels: Dict[int, int],
        n_per_level: List[int],
        c_per_level: List[int],
        po_complements: int,
        k_r: int,
        steps_weight: int,
        rram_weight: int,
        chunk_rows: int = 256,
    ) -> Dict[str, np.ndarray]:
        """Price an entire Ω.I candidate batch against the slab arrays.

        For every node id in ``candidates`` this computes, without
        touching the graph, exactly what the scalar inner loop of
        ``inverter_propagation_pass`` derives per move: the post-flip
        complement histogram (own-level in-edge delta plus the fanout
        and PO edge toggles), the weighted cost ``steps_weight·L +
        rram_weight·R`` (R floored at the *old* PO complement count,
        matching the scalar ``total_r``), the feasibility bit (every
        attached parent live), and the tie-break quantity (the new
        complement count at the candidate's own level).

        ``levels``/``n_per_level``/``c_per_level``/``po_complements``
        are the optimizer's *maintained* per-round state (not re-read
        from any view, so attached-CostView counters stay bit-identical
        to the scalar path).  Dense rows are materialized ``chunk_rows``
        candidates at a time so memory stays bounded at
        ``chunk_rows × (depth+1)`` regardless of graph size.

        Returns full-length arrays indexed by node id: ``ok`` (bool),
        ``cost`` (int64, valid where ok), ``c_own`` (int64, the
        tie-break value).  Rows outside ``candidates`` are zero.
        """
        if len(candidates) == 0:
            zeros = np.zeros(len(self._children), dtype=np.int64)
            return {
                "ok": np.zeros(len(self._children), dtype=bool),
                "cost": zeros,
                "c_own": zeros,
            }
        self._sync_slab()
        n = len(self._children)
        signals = self._slab[:n]
        child = signals >> 1
        comp = (signals & 1) & (child != 0)
        nonconst = (child != 0).sum(axis=1)
        d_own = nonconst - 2 * comp.sum(axis=1)

        lvl_arr = np.zeros(n, dtype=np.int64)
        live = np.zeros(n, dtype=bool)
        if levels:
            count = len(levels)
            ids = np.fromiter(levels.keys(), dtype=np.int64, count=count)
            vals = np.fromiter(levels.values(), dtype=np.int64, count=count)
            keep = ids < n
            ids = ids[keep]
            vals = vals[keep]
            lvl_arr[ids] = vals
            live[ids] = vals > 0

        # Flat (parent, child, sign) edge arrays over every attached
        # slot; only attached rows have non-zero child slots.
        flat_child = child.ravel()
        edge_mask = flat_child != 0
        e_par = np.repeat(np.arange(n, dtype=np.int64), 3)[edge_mask]
        e_child = flat_child[edge_mask]
        e_sign = 1 - 2 * (signals.ravel()[edge_mask] & 1)
        # Feasibility: an edge from an attached-but-dead parent makes
        # the flip unscorable (the scalar loop bails with ok=False).
        par_live = live[e_par]
        bad = np.bincount(e_child[~par_live], minlength=n)
        ok = bad == 0

        po_delta = np.zeros(n, dtype=np.int64)
        for po in self._pos:
            po_delta[po >> 1] += -1 if po & 1 else 1

        cost = np.zeros(n, dtype=np.int64)
        c_own = np.zeros(n, dtype=np.int64)
        m = len(candidates)
        if m == 0:
            return {"ok": ok, "cost": cost, "c_own": c_own}
        depth1 = len(c_per_level)
        c_vec = np.asarray(c_per_level, dtype=np.int64)
        n_vec = np.asarray(n_per_level, dtype=np.int64)
        pos = np.full(n, -1, dtype=np.int64)
        pos[candidates] = np.arange(m, dtype=np.int64)
        # Out-edges into candidate nodes from live parents, ordered by
        # candidate position so each chunk slices contiguously.
        sel = par_live & (pos[e_child] >= 0)
        ce_pos = pos[e_child[sel]]
        ce_lvl = lvl_arr[e_par[sel]]
        ce_sign = e_sign[sel]
        order = np.argsort(ce_pos, kind="stable")
        ce_pos = ce_pos[order]
        ce_lvl = ce_lvl[order]
        ce_sign = ce_sign[order]

        for lo in range(0, m, chunk_rows):
            hi = min(m, lo + chunk_rows)
            rows = candidates[lo:hi]
            k = hi - lo
            newc = np.tile(c_vec, (k, 1))
            ridx = np.arange(k)
            own = lvl_arr[rows]
            newc[ridx, own] += d_own[rows]
            a = np.searchsorted(ce_pos, lo)
            b = np.searchsorted(ce_pos, hi)
            np.add.at(newc, (ce_pos[a:b] - lo, ce_lvl[a:b]), ce_sign[a:b])
            new_po = po_complements + po_delta[rows]
            body = newc[:, 1:]
            total_l = (body > 0).sum(axis=1) + (new_po > 0)
            if depth1 > 1:
                total_r = np.maximum(
                    po_complements, (k_r * n_vec[1:] + body).max(axis=1)
                )
            else:
                total_r = np.full(k, po_complements, dtype=np.int64)
            cost[rows] = steps_weight * total_l + rram_weight * total_r
            c_own[rows] = newc[ridx, own]
        return {"ok": ok, "cost": cost, "c_own": c_own}

    def _strash_probe_table(self) -> Optional[np.ndarray]:
        """Sorted packed strash keys for this generation, or None when
        a signal id overflows the packing width."""
        if self._strash_table_gen == self._generation:
            return self._strash_table
        self._strash_table_gen = self._generation
        keys = self._strash
        shift = self._STRASH_PACK_BITS
        if not keys:
            table: Optional[np.ndarray] = np.empty(0, dtype=np.int64)
        else:
            flat = np.fromiter(
                chain.from_iterable(keys), dtype=np.int64, count=3 * len(keys)
            ).reshape(-1, 3)
            if int(flat.max()) >= 1 << shift:
                table = None
            else:
                table = (
                    (flat[:, 0] << (2 * shift))
                    | (flat[:, 1] << shift)
                    | flat[:, 2]
                )
                table.sort()
        self._strash_table = table
        return table

    def strash_probe_batch(
        self, triples: np.ndarray
    ) -> Optional[np.ndarray]:
        """Vectorized ``tuple(row) in self._strash`` over a ``(P, 3)``
        int64 array of sorted signal triples.

        Returns a boolean hit mask, or None when the packed table
        cannot represent the id space (the caller falls back to scalar
        dict probes — identical results either way).
        """
        table = self._strash_probe_table()
        if table is None:
            return None
        if triples.size == 0:
            return np.zeros(0, dtype=bool)
        shift = self._STRASH_PACK_BITS
        if int(triples.max()) >= 1 << shift:
            return None
        packed = (
            (triples[:, 0] << (2 * shift))
            | (triples[:, 1] << shift)
            | triples[:, 2]
        )
        if not table.size:
            return np.zeros(len(packed), dtype=bool)
        idx = np.minimum(
            np.searchsorted(table, packed), table.size - 1
        )
        return table[idx] == packed

    # ------------------------------------------------------------------
    # Vectorized clone (compact() inherits it via copy_from(clone()))
    # ------------------------------------------------------------------

    def clone(self) -> "Mig":
        order = self._reachable_cached()
        m = len(order)
        if m < self.KERNEL_MIN_NODES:
            return super().clone()
        self._sync_slab()
        num_slots = len(self._children)
        npi = len(self._pis)
        mapping = np.full(num_slots, -1, dtype=np.int64)
        mapping[0] = 0
        if npi:
            mapping[np.fromiter(self._pis, dtype=np.int64, count=npi)] = (
                np.arange(1, npi + 1, dtype=np.int64) << 1
            )
        order_np = np.fromiter(order, dtype=np.int64, count=m)
        mapping[order_np] = np.arange(npi + 1, npi + 1 + m, dtype=np.int64) << 1
        for po in self._pos:
            if mapping[po >> 1] < 0:
                # PO cone disjoint from the main order (or detached):
                # the scalar path owns these edge cases.
                return super().clone()
        signals = self._slab[order_np]
        remapped = mapping[signals >> 1] ^ (signals & 1)
        if remapped.size and remapped.min() < 0:
            return super().clone()  # child outside the live closure
        remapped.sort(axis=1)  # 3-wide row sort == copy_gate's inline sort
        triples = list(map(tuple, remapped.tolist()))
        copy = type(self)(self.name)
        c_children = copy._children
        c_is_pi = copy._is_pi
        c_fanout = copy._fanout
        for node, name in zip(self._pis, self._pi_names):
            c_children.append(None)
            c_is_pi.append(True)
            c_fanout.append({})
            copy._pis.append(len(c_children) - 1)
            copy._pi_names.append(name)
        c_children.extend(triples)
        c_is_pi.extend([False] * m)
        c_fanout.extend({} for _ in range(m))
        c_strash = copy._strash
        base_idx = npi + 1
        for i, triple in enumerate(triples):
            c_strash[triple] = base_idx + i
        for i, triple in enumerate(triples):
            idx = base_idx + i
            for s in triple:
                fo = c_fanout[s >> 1]
                fo[idx] = fo.get(idx, 0) + 1
        po_map = mapping.tolist()
        for po, name in zip(self._pos, self._po_names):
            copy._pos.append(po_map[po >> 1] ^ (po & 1))
            copy._po_names.append(name)
        copy._generation = len(c_children) - 1 + len(copy._pos)
        return copy
