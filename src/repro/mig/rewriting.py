"""Cut-based MIG rewriting.

The strongest area pass in the library: for every node, enumerate small
cuts, resynthesize each cut function from scratch with the
decomposition engine (:mod:`repro.mig.resynth`), and commit the
replacement when it strictly frees nodes:

    ``gain = |MFFC(node, cut)| − (new nodes the candidate adds)``

Candidate construction is performed directly in the graph (structural
hashing makes re-used logic free and lets the gain computation count
*actually new* nodes); rejected candidates are simply left dead and are
invisible to all live-node views.

This mirrors the DAG-aware rewriting of the ABC/mockturtle tradition;
the paper's Alg. 1 only has `eliminate` + reshaping, so the pass is an
*extension* — kept out of the paper-faithful algorithms and exposed as
:func:`cut_rewrite` plus the ``optimize_area_plus`` flow (ablated in
``benchmarks/bench_rewriting.py``).
"""

from __future__ import annotations

from ..telemetry import metrics, traced
from .algorithms import (
    OptimizationResult,
    _drive,
    _size_depth,
    clear_complemented_levels,
    eliminate,
    inverter_propagation_pass,
    optimize_steps,
    push_up,
    reshape,
)
from .views import Realization, rram_costs
from .cuts import (
    DEFAULT_CUT_SIZE,
    cut_function,
    enumerate_cuts,
    mffc_size,
)
from .graph import Mig, MigError, signal_node, transactions_enabled
from .resynth import synthesize_table


@traced("pass.cut_rewrite")
def cut_rewrite(
    mig: Mig,
    *,
    cut_size: int = DEFAULT_CUT_SIZE,
    allow_zero_gain: bool = False,
    max_rounds: int = 4,
) -> bool:
    """One-to-many cut rewriting until no strict improvement remains.

    Returns True when at least one replacement was committed.
    ``allow_zero_gain`` also accepts size-neutral replacements (useful
    as a diversification step before ``eliminate``).
    """
    changed_any = False
    use_tx = transactions_enabled()
    registry = metrics()
    rounds = registry.counter("rewrite.rounds")
    rollbacks = registry.counter("rewrite.rollbacks")
    for _round in range(max_rounds):
        rounds.inc()
        # Round-level undo scope: a tripped monotonicity guard rolls
        # back and compacts (bit-identical to the legacy
        # ``copy_from(round_snapshot)`` — both land on
        # ``clone(clone(pre-round state))``); a surviving round commits
        # for free instead of discarding a whole-graph clone.
        token = mig.checkpoint() if use_tx else None
        round_snapshot = None if use_tx else mig.clone()
        size_before = mig.num_gates()
        changed = False
        cuts = enumerate_cuts(mig, cut_size=cut_size)
        live = set(mig.reachable_nodes())
        for node in list(live):
            if not mig.is_gate(node):
                continue
            if _rewrite_node(
                mig, node, cuts.get(node, []), allow_zero_gain, live
            ):
                changed = True
        mig.sweep_dead()
        if mig.num_gates() > size_before:
            # Local gains did not compose (shared logic shifted under
            # later rewrites): monotonicity guard.
            if token is not None:
                mig.rollback(token)
                mig.compact()
            else:
                mig.copy_from(round_snapshot)
            rollbacks.inc()
            break
        if token is not None:
            mig.commit(token)
        if not changed:
            break
        changed_any = True
    return changed_any


def _dead_cone_count(mig: Mig, root_signal: int, live) -> int:
    """Gate nodes in the cone of ``root_signal`` not currently live —
    the true node cost of committing a candidate (fresh allocations and
    resurrected rejects alike)."""
    count = 0
    seen = set()
    stack = [signal_node(root_signal)]
    while stack:
        node = stack.pop()
        if node in seen or node in live or not mig.is_gate(node):
            continue
        seen.add(node)
        count += 1
        for child in mig.children(node):
            stack.append(signal_node(child))
    return count


def _rewrite_node(
    mig: Mig,
    node: int,
    node_cuts,
    allow_zero_gain: bool,
    live,
) -> bool:
    for cut in node_cuts:
        leaves = sorted(cut)
        if len(leaves) < 2 or node in cut:
            continue
        # Stale-cut guards: an earlier rewrite this round may have
        # merged a leaf away entirely (leaves are never traversed by
        # cut_function, so they must be checked for liveness here).
        if not all(mig.is_gate(leaf) or mig.is_pi(leaf) for leaf in leaves):
            continue
        try:
            table = cut_function(mig, node, leaves)
        except ValueError:
            continue  # the cone escaped the stale cut
        budget = mffc_size(mig, node, leaves, live)
        leaf_signals = [leaf << 1 for leaf in leaves]
        try:
            candidate = synthesize_table(mig, table, leaf_signals)
        except (MigError, ValueError):
            continue
        if signal_node(candidate) == node:
            continue
        added = _dead_cone_count(mig, candidate, live)
        gain = budget - added
        if gain < 0 or (gain == 0 and not allow_zero_gain):
            continue
        try:
            mig.substitute(node, candidate)
        except MigError:
            continue
        metrics().counter("rewrite.substitutions").inc()
        # Refresh the live set: the commit both revives the candidate
        # cone and kills the MFFC, and later gain estimates must see
        # the truth (a stale set lets zero-cost "reuse" of dead nodes
        # slip through and the pass can grow the graph).
        live.clear()
        live.update(mig.reachable_nodes())
        return True
    return False


def optimize_area_plus(
    mig: Mig, effort: int = 10, *, cut_size: int = DEFAULT_CUT_SIZE
) -> OptimizationResult:
    """Area optimization with cut rewriting layered over Alg. 1's
    passes (extension flow; see module docstring).

    Uses the same best-snapshot driver as the paper algorithms, so the
    result is never worse than the starting point.
    """

    def body(graph: Mig, cycle: int) -> bool:
        changed = eliminate(graph)
        changed |= cut_rewrite(graph, cut_size=cut_size)
        changed |= reshape(graph, variant=cycle)
        changed |= eliminate(graph)
        return changed

    def objective(graph: Mig):
        size, depth = _size_depth(graph)
        return (size, depth)

    result = _drive(mig, "area+rewrite", effort, body, objective)
    eliminate(mig)
    size, depth = _size_depth(mig)
    result.final_size, result.final_depth = size, depth
    return result


def optimize_rram_plus(
    mig: Mig,
    realization: Realization = Realization.MAJ,
    effort: int = 10,
    *,
    step_budget_factor: float = 1.45,
    cut_size: int = DEFAULT_CUT_SIZE,
) -> OptimizationResult:
    """Alg. 3 with cut rewriting in the loop (extension flow).

    Cut rewriting shrinks the graph, which shrinks level populations and
    therefore ``R = max(K·N_i + C_i)`` directly — the lever the paper's
    conventional area pass mostly lacks.  Same budgeted objective as
    :func:`repro.mig.algorithms.optimize_rram`.
    """
    probe = mig.clone()
    optimize_steps(probe, realization, min(effort, 16))
    budget = int(
        rram_costs(probe, realization).steps * step_budget_factor
    ) + 1

    def objective(graph: Mig):
        costs = rram_costs(graph, realization)
        return (1 if costs.steps > budget else 0, costs.rrams, costs.steps)

    if objective(probe) < objective(mig):
        mig.copy_from(probe)

    def body(graph: Mig, cycle: int) -> bool:
        changed = cut_rewrite(graph, cut_size=cut_size)
        changed |= push_up(graph, use_relevance=False)
        changed |= inverter_propagation_pass(
            graph, realization, cases=(1, 2, 3), steps_weight=2, rram_weight=1
        )
        changed |= clear_complemented_levels(graph, realization)
        changed |= reshape(graph, variant=cycle)
        changed |= eliminate(graph)
        return changed

    return _drive(mig, "rram+rewrite", effort, body, objective)
