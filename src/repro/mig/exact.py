"""Exact-size MIG synthesis for small functions (BFS over structures).

Computes, for any function of up to 3 variables, an MIG structure with
the minimum number of majority nodes among *tree-shaped* recipes
(operand cones are inlined without node sharing — for the 3-variable
space, where minima are ≤ 4 nodes, this matches the known optimal sizes;
the test-suite pins the classics: one node for MAJ/AND/OR, three for
XOR2 and XOR3).

Search: breadth-first over total node cost — cost-*k* functions are
built as ``M(a, b, c)`` with operand costs summing to ``k − 1``,
operands drawn from literals, constants, and cheaper discovered
functions (both polarities).  The space is tiny (256 functions) and
closed once per process; lookups go through NPN canonization
(:mod:`repro.mig.npn`), so only class representatives are stored.

Used by cut rewriting as the candidate generator for 3-input cuts, with
the decomposition engine (:mod:`repro.mig.resynth`) covering larger
cuts heuristically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..truth import TruthTable, table_mask
from .graph import CONST0, CONST1, Mig, Signal, signal_not
from .npn import apply_npn_to_signals, npn_canonize

#: Operand reference inside a recipe: ``("leaf", index, negate)``,
#: ``("const", value)`` or ``("node", index, negate)``.
Operand = Tuple
#: A recipe: node definitions in build order; the last node is the root.
Recipe = Tuple[Tuple[Operand, Operand, Operand], ...]

_NUM_VARS = 3
_MASK = table_mask(_NUM_VARS)
_MAX_COST = 6  # every 3-variable function closes at cost ≤ 4

# representative bits -> (recipe, root_negate); empty recipe = trivial.
_RECIPE_CACHE: Dict[int, Tuple[Recipe, bool]] = {}
_CACHE_BUILT = False


class _Entry:
    """One discovered function: its bits, cost, and flat recipe."""

    __slots__ = ("bits", "cost", "recipe")

    def __init__(self, bits: int, cost: int, recipe: Recipe) -> None:
        self.bits = bits
        self.cost = cost
        self.recipe = recipe


def _trivial_entries() -> List[Tuple[Operand, int]]:
    """(operand, bits) for constants and both literal polarities."""
    entries: List[Tuple[Operand, int]] = [
        (("const", False), 0),
        (("const", True), _MASK),
    ]
    for index in range(_NUM_VARS):
        bits = TruthTable.variable(_NUM_VARS, index).bits
        entries.append((("leaf", index, False), bits))
        entries.append((("leaf", index, True), bits ^ _MASK))
    return entries


def _inline(op_entry, offset_recipe: List[Tuple[Operand, Operand, Operand]]):
    """Materialize an operand into the recipe under construction.

    ``op_entry`` is either a trivial ``(operand, bits)`` pair or a
    ``(_Entry, negate)`` pair for a discovered function.
    """
    if isinstance(op_entry[0], tuple):
        return op_entry[0]
    entry, negate = op_entry
    offset = len(offset_recipe)
    for triple in entry.recipe:
        offset_recipe.append(
            tuple(
                ("node", op[1] + offset, op[2]) if op[0] == "node" else op
                for op in triple
            )  # type: ignore[arg-type]
        )
    return ("node", offset + len(entry.recipe) - 1, negate)


def _build_cache() -> None:
    global _CACHE_BUILT
    if _CACHE_BUILT:
        return

    trivial = _trivial_entries()
    trivial_bits = {bits for _op, bits in trivial}
    known: Dict[int, _Entry] = {}
    # Operand pool grouped by cost: cost 0 = trivial (operand, bits);
    # cost k = list of (_Entry, negate) pairs with that recipe cost.
    by_cost: Dict[int, List] = {0: list(trivial)}

    def operand_bits(op_entry) -> int:
        if isinstance(op_entry[0], tuple):
            return op_entry[1]
        entry, negate = op_entry
        return entry.bits ^ _MASK if negate else entry.bits

    total_functions = 1 << (1 << _NUM_VARS)
    for cost in range(1, _MAX_COST + 1):
        discovered: List[_Entry] = []
        # All cost splits (a ≤ b ≤ c) with a + b + c = cost − 1.
        for cost_a in range(0, cost):
            for cost_b in range(cost_a, cost):
                cost_c = (cost - 1) - cost_a - cost_b
                if cost_c < cost_b:
                    continue
                pool_a = by_cost.get(cost_a, [])
                pool_b = by_cost.get(cost_b, [])
                pool_c = by_cost.get(cost_c, [])
                for op_a in pool_a:
                    bits_a = operand_bits(op_a)
                    for op_b in pool_b:
                        bits_b = operand_bits(op_b)
                        for op_c in pool_c:
                            bits_c = operand_bits(op_c)
                            bits = (
                                (bits_a & bits_b)
                                | (bits_a & bits_c)
                                | (bits_b & bits_c)
                            )
                            if bits in trivial_bits or bits in known:
                                continue
                            recipe_nodes: List = []
                            resolved = (
                                _inline(op_a, recipe_nodes),
                                _inline(op_b, recipe_nodes),
                                _inline(op_c, recipe_nodes),
                            )
                            recipe_nodes.append(resolved)
                            known[bits] = _Entry(
                                bits, cost, tuple(recipe_nodes)
                            )
                            discovered.append(known[bits])
        if discovered:
            by_cost[cost] = []
            for entry in discovered:
                by_cost[cost].append((entry, False))
                # The complement costs the same recipe (complemented
                # root edge is free as an operand).
                if (entry.bits ^ _MASK) not in known and (
                    entry.bits ^ _MASK
                ) not in trivial_bits:
                    by_cost[cost].append((entry, True))
        if len(known) + len(trivial_bits) >= total_functions:
            break

    for bits in range(_MASK + 1):
        representative, _transform = npn_canonize(TruthTable(_NUM_VARS, bits))
        if representative.bits in _RECIPE_CACHE:
            continue
        rep_bits = representative.bits
        if rep_bits in trivial_bits:
            _RECIPE_CACHE[rep_bits] = ((), False)
        elif rep_bits in known:
            _RECIPE_CACHE[rep_bits] = (known[rep_bits].recipe, False)
        elif (rep_bits ^ _MASK) in known:
            _RECIPE_CACHE[rep_bits] = (known[rep_bits ^ _MASK].recipe, True)
        else:
            raise RuntimeError(
                f"BFS closure incomplete: 0x{rep_bits:02x} unsynthesized"
            )
    _CACHE_BUILT = True


def exact_size(table: TruthTable) -> int:
    """Minimum majority-node count (tree recipes) for ≤3 variables."""
    recipe, _negate, _transform = _recipe_for(table)
    return len(recipe)


def _recipe_for(table: TruthTable):
    if table.num_vars > _NUM_VARS:
        raise ValueError("exact synthesis limited to 3 variables")
    if table.num_vars < _NUM_VARS:
        table = table.extend(_NUM_VARS)
    _build_cache()
    representative, transform = npn_canonize(table)
    recipe, negate = _RECIPE_CACHE[representative.bits]
    return recipe, negate, transform


def synthesize_exact(
    mig: Mig, table: TruthTable, leaves: Sequence[Signal]
) -> Signal:
    """Build a minimum-node MIG computing ``table`` over ``leaves``.

    ``leaves[i]`` is the signal for table variable *i* (up to 3).
    """
    recipe, negate, transform = _recipe_for(table)
    padded = list(leaves[:_NUM_VARS])
    while len(padded) < _NUM_VARS:
        padded.append(CONST0)
    rep_leaves, output_negation = apply_npn_to_signals(transform, padded)

    def operand_signal(op: Operand, built: List[Signal]) -> Signal:
        tag = op[0]
        if tag == "const":
            return CONST1 if op[1] else CONST0
        if tag == "leaf":
            signal = rep_leaves[op[1]]
            return signal_not(signal) if op[2] else signal
        if tag == "node":
            signal = built[op[1]]
            return signal_not(signal) if op[2] else signal
        raise RuntimeError(f"bad operand {op!r}")

    if not recipe:
        extended = (
            table if table.num_vars == _NUM_VARS else table.extend(_NUM_VARS)
        )
        representative, _ = npn_canonize(extended)
        root = _trivial_signal(representative.bits, rep_leaves)
    else:
        built: List[Signal] = []
        for triple in recipe:
            a, b, c = (operand_signal(op, built) for op in triple)
            built.append(mig.make_maj(a, b, c))
        root = built[-1]
        if negate:
            root = signal_not(root)
    if output_negation:
        root = signal_not(root)
    return root


def _trivial_signal(bits: int, rep_leaves: Sequence[Signal]) -> Signal:
    if bits == 0:
        return CONST0
    if bits == _MASK:
        return CONST1
    for index in range(_NUM_VARS):
        variable_bits = TruthTable.variable(_NUM_VARS, index).bits
        if bits == variable_bits:
            return rep_leaves[index]
        if bits == variable_bits ^ _MASK:
            return signal_not(rep_leaves[index])
    raise RuntimeError(f"function 0x{bits:02x} is not trivial")
