"""NPN canonization of small truth tables.

Two functions are NPN-equivalent when one can be obtained from the
other by Negating inputs, Permuting inputs, and/or Negating the output.
Optimal structures only need to be computed per NPN class: the 256
3-variable functions collapse to 14 classes, the 65 536 4-variable
functions to 222.

:func:`npn_canonize` returns the class representative together with the
transform that maps the *original* function onto it, and
:func:`apply_npn_to_signals` applies the inverse transform to leaf
signals so a structure synthesized for the representative computes the
original function.  Exhaustive over all ``2^n · n!`` transforms —
intended for n ≤ 4 where that is 384 candidates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..truth import TruthTable


@dataclass(frozen=True)
class NpnTransform:
    """``f(x) = output_negation ⊕ rep(±x_perm)``.

    ``permutation[i]`` is the representative's variable fed by original
    variable *i*; ``input_negations[i]`` tells whether original
    variable *i* enters negated.
    """

    permutation: Tuple[int, ...]
    input_negations: Tuple[bool, ...]
    output_negation: bool


def _transform_table(
    table: TruthTable,
    permutation: Sequence[int],
    input_negations: Sequence[bool],
    output_negation: bool,
) -> TruthTable:
    num_vars = table.num_vars
    bits = 0
    for assignment in range(table.num_entries):
        # Build the original assignment that maps onto `assignment` in
        # the transformed space: transformed var permutation[i] carries
        # original var i (possibly negated).
        original = 0
        for i in range(num_vars):
            value = (assignment >> permutation[i]) & 1
            if input_negations[i]:
                value ^= 1
            original |= value << i
        value = table.value_at(original)
        if value != output_negation:
            bits |= 1 << assignment
    return TruthTable(num_vars, bits)


def npn_canonize(table: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Return ``(representative, transform)``.

    The representative is the numerically smallest transformed table;
    ``transform`` recovers the original:
    ``original(x0..xn) = transform.output_negation ⊕
    representative(..x_{perm} possibly negated..)``.
    """
    num_vars = table.num_vars
    if num_vars > 4:
        raise ValueError("exhaustive NPN canonization limited to 4 variables")
    best_table = None
    best_transform = None
    for permutation in itertools.permutations(range(num_vars)):
        for negation_mask in range(1 << num_vars):
            negations = tuple(
                bool((negation_mask >> i) & 1) for i in range(num_vars)
            )
            for output_negation in (False, True):
                candidate = _transform_table(
                    table, permutation, negations, output_negation
                )
                if best_table is None or candidate.bits < best_table.bits:
                    best_table = candidate
                    best_transform = NpnTransform(
                        tuple(permutation), negations, output_negation
                    )
    assert best_table is not None and best_transform is not None
    return best_table, best_transform


def apply_npn_to_signals(
    transform: NpnTransform, leaves: Sequence[int]
) -> Tuple[List[int], bool]:
    """Leaf signals for the *representative* structure, plus whether
    the structure's output must be complemented.

    If ``root = build(representative, rep_leaves)`` then
    ``root ^ output_negation`` computes the original function over the
    original ``leaves``.
    """
    rep_leaves: List[int] = [0] * len(leaves)
    for i, leaf in enumerate(leaves):
        signal = leaf ^ (1 if transform.input_negations[i] else 0)
        rep_leaves[transform.permutation[i]] = signal
    return rep_leaves, transform.output_negation


def npn_class_count(num_vars: int) -> int:
    """Number of NPN classes over ``num_vars`` variables (exhaustive —
    use for tests and table building, n ≤ 3 is instant, n = 4 takes a
    few seconds)."""
    seen: Dict[int, bool] = {}
    from ..truth import table_mask

    for bits in range(table_mask(num_vars) + 1):
        representative, _ = npn_canonize(TruthTable(num_vars, bits))
        seen[representative.bits] = True
    return len(seen)
