"""Batched trial-evaluation switch for the Ω-rule optimizers.

PR 8 made the slab engine the default and vectorized the bulk *queries*
(level stats, CostView rebuilds, clone); the optimizer inner loops still
classified and priced candidate moves one node at a time.  This module
is the process-wide switch for the *batched* trial-evaluation layer that
prices whole candidate sets against the slab arrays before any graph
mutation:

* :meth:`repro.mig.slab.SlabMig.slab_invprop_case_array` classifies
  every gate for the Ω.I cases of paper Sec. III-C3 in one vector pass
  (replacing per-node ``inverter_propagation_case`` fanout scans);
* :meth:`repro.mig.costview.CostView.predict_flip_groups` scores a
  whole list of flip-group plans under one synchronization, with the
  strash collision pre-checks probed as one vectorized batch
  (:meth:`repro.mig.slab.SlabMig.strash_probe_batch`);
* :func:`repro.mig.algorithms.inverter_propagation_pass` and the
  fixpoint phase of ``clear_complemented_levels`` consume both.

The batch path is **bit-identical by construction** to the scalar path:
candidates are visited in the same order, the same counters increment
at the same points, and every batched quantity equals its scalar
counterpart exactly (pinned by ``tests/test_mig_batch.py`` and the fuzz
oracle's ``batch-diff`` differential).  ``REPRO_BATCH=0`` disables the
layer process-wide; :class:`batch_evaluation` overrides it for one
in-process block (mirroring ``transaction_engine``/``graph_engine``).

The kernels only engage above :func:`batch_min_nodes` live nodes
(default 4096, same rationale as ``SlabMig.KERNEL_MIN_NODES``: fixed
numpy overhead loses on MCNC-scale graphs).  ``REPRO_BATCH_MIN_NODES``
lowers the cutover so CI byte-diffs and the fuzz differential exercise
the batch path on small circuits where it would otherwise be vacuous.
"""

from __future__ import annotations

import os
from typing import Optional

#: Default live-node cutover below which the batch kernels stay off.
DEFAULT_BATCH_MIN_NODES = 4096

_BATCH_OVERRIDE: Optional[bool] = None


def batch_enabled() -> bool:
    """True when optimizers should use the batched trial-evaluation
    kernels (the paths are bit-identical; see ``REPRO_BATCH`` and
    :class:`batch_evaluation`).  The environment is read lazily so
    worker processes and tests see the ambient value."""
    if _BATCH_OVERRIDE is not None:
        return _BATCH_OVERRIDE
    return os.environ.get("REPRO_BATCH", "1") != "0"


def batch_min_nodes() -> int:
    """Live-node count above which the batch kernels engage.

    ``REPRO_BATCH_MIN_NODES`` overrides the default (0 forces the batch
    path on any graph — used by CI byte-diffs and the fuzz oracle's
    ``batch-diff`` check so small corpora actually exercise it)."""
    raw = os.environ.get("REPRO_BATCH_MIN_NODES")
    if raw is None:
        return DEFAULT_BATCH_MIN_NODES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_BATCH_MIN_NODES


class batch_evaluation:
    """Context manager forcing the batch-evaluation choice for a block.

    ``with batch_evaluation(False): ...`` runs the wrapped optimizer
    calls on the scalar inner loops regardless of ``REPRO_BATCH``;
    ``batch_evaluation(True)`` forces the batched kernels.  Nested uses
    restore the previous override on exit.
    """

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._prev: Optional[bool] = None

    def __enter__(self) -> "batch_evaluation":
        global _BATCH_OVERRIDE
        self._prev = _BATCH_OVERRIDE
        _BATCH_OVERRIDE = self._enabled
        return self

    def __exit__(self, *_exc) -> bool:
        global _BATCH_OVERRIDE
        _BATCH_OVERRIDE = self._prev
        return False
