"""MIG visualization export (Graphviz DOT).

Renders the live part of an MIG in the paper's visual conventions:
majority nodes as circles, complemented edges as dashed lines with a
dot head (the "black dot" of paper Fig. 4), primary inputs as boxes at
the bottom, outputs as inverted houses at the top, and nodes ranked by
level so the cost-model structure (levels, complemented levels) is
visible at a glance.
"""

from __future__ import annotations

from typing import List

from .graph import Mig, signal_is_complemented, signal_node
from .views import node_levels


def to_dot(mig: Mig, *, show_levels: bool = True) -> str:
    """Render the MIG as Graphviz DOT source."""
    levels = node_levels(mig)
    lines: List[str] = [
        f'digraph "{mig.name}" {{',
        "  rankdir=BT;",
        '  node [fontname="Helvetica"];',
    ]
    for node, name in zip(mig.pis, mig.pi_names):
        lines.append(
            f'  n{node} [label="{name}", shape=box, style=filled, '
            'fillcolor="#e8f0fe"];'
        )
    live = mig.reachable_nodes()
    if any(
        signal_node(s) == 0
        for node in live
        for s in mig.children(node)
    ) or any(signal_node(po) == 0 for po in mig.pos):
        lines.append('  n0 [label="0", shape=box, style=filled, fillcolor="#eeeeee"];')
    for node in live:
        lines.append(f'  n{node} [label="M", shape=circle];')
        for child in mig.children(node):
            style = (
                ' [style=dashed, arrowhead="dot"]'
                if signal_is_complemented(child)
                else ""
            )
            lines.append(f"  n{signal_node(child)} -> n{node}{style};")
    for index, (po, name) in enumerate(zip(mig.pos, mig.po_names)):
        lines.append(
            f'  po{index} [label="{name}", shape=invhouse, style=filled, '
            'fillcolor="#e6f4ea"];'
        )
        style = (
            ' [style=dashed, arrowhead="dot"]'
            if signal_is_complemented(po)
            else ""
        )
        lines.append(f"  n{signal_node(po)} -> po{index}{style};")
    if show_levels:
        by_level = {}
        for node in live:
            by_level.setdefault(levels[node], []).append(node)
        for level, nodes in sorted(by_level.items()):
            members = "; ".join(f"n{node}" for node in nodes)
            lines.append(f"  {{ rank=same; {members}; }}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(mig: Mig, path: str, *, show_levels: bool = True) -> None:
    """Write the DOT rendering to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(mig, show_levels=show_levels))
