"""Majority-Inverter Graph core data structure.

An MIG [13] is a DAG whose internal nodes are three-input majority
gates ``M(x, y, z) = xy + xz + yz`` and whose edges may carry a
complement (inversion) attribute.  Constants and regular AND/OR gates
are special cases (``AND(a, b) = M(a, b, 0)``, ``OR(a, b) = M(a, b, 1)``).

Signals
-------
A *signal* is an integer ``(node_index << 1) | complement`` (the AIGER
convention).  Signal 0 is constant false, signal 1 constant true.
Negation is ``signal ^ 1``.

Invariants maintained at all times:

* node 0 is the constant-0 node; primary inputs have no children;
* every gate node's child triple is sorted ascending (Ω.C is thus
  implicit) and irredundant under the majority rule Ω.M (no two equal
  or complementary children) — enforced by :meth:`Mig.make_maj` and by
  :meth:`Mig.substitute`;
* the structural-hash table maps each live sorted triple to exactly one
  node (no duplicate gates among live nodes).

Complement *placement* is deliberately **not** canonicalized: the
optimization algorithms of the paper (Sec. III-C/D) explicitly move
complements around with the Ω.I axiom, so the graph must faithfully
keep them where the algorithms put them.  (This is also why the strash
keys raw sorted triples rather than complement-normalized ones: a
normalized table would silently merge ``M(x,y,z)`` with its Ω.I image
and make the complement-placement algorithms no-ops.  NPN-level
canonization lives one layer up, in the resynthesis recipe cache of
:mod:`repro.mig.resynth`.)

Transactions
------------
Every mutating primitive appends an inverse record to an undo journal
while a transaction is open (:meth:`Mig.checkpoint`), so a rejected
speculative edit is undone in O(touched nodes) by
:meth:`Mig.rollback` instead of the O(graph) ``clone()``/``copy_from``
snapshot dance.  Rollback replays inverse *events* through the normal
event log as well, so an attached
:class:`repro.mig.costview.CostView` rolls its cost state back in
lockstep without a full recompute.  :meth:`Mig.commit` discards the
journal suffix.  ``generation`` stays monotone across rollbacks (a
restored state is a *new* version — caches keyed by generation must
never alias across a rollback).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..truth import TruthTable, table_mask

Signal = int

# Structural-event kinds recorded in the mutation log consumed by
# :class:`repro.mig.costview.CostView` for delta updates.
EVENT_DETACH = 0  # (EVENT_DETACH, node, old_children)
EVENT_ATTACH = 1  # (EVENT_ATTACH, node, new_children)
EVENT_PO = 2  # (EVENT_PO, index, old_signal_or_None, new_signal)

CONST0: Signal = 0
CONST1: Signal = 1

# ----------------------------------------------------------------------
# Transaction-engine switch
# ----------------------------------------------------------------------
# The optimizers keep their historical clone()-based rollback paths for
# differential testing (the fuzz oracle's "tx-diff" check, the CI
# determinism smoke).  The transactional engine is the default;
# ``REPRO_TX=0`` in the environment disables it process-wide (worker
# processes inherit the variable, so ``--jobs`` runs stay consistent),
# and :class:`transaction_engine` overrides it for one in-process block.

_TX_DEFAULT = os.environ.get("REPRO_TX", "1") != "0"
_TX_OVERRIDE: Optional[bool] = None


def transactions_enabled() -> bool:
    """True when optimizers should roll back via checkpoint/rollback
    instead of clone()-based snapshots (the paths are result-identical;
    see ``REPRO_TX`` and :class:`transaction_engine`)."""
    return _TX_DEFAULT if _TX_OVERRIDE is None else _TX_OVERRIDE


class transaction_engine:
    """Context manager forcing the rollback-engine choice for a block.

    ``with transaction_engine(False): ...`` runs the wrapped optimizer
    calls on the legacy clone()-based paths regardless of ``REPRO_TX``;
    ``transaction_engine(True)`` forces the transactional engine.
    Nested uses restore the previous override on exit.
    """

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._prev: Optional[bool] = None

    def __enter__(self) -> "transaction_engine":
        global _TX_OVERRIDE
        self._prev = _TX_OVERRIDE
        _TX_OVERRIDE = self._enabled
        return self

    def __exit__(self, *_exc) -> bool:
        global _TX_OVERRIDE
        _TX_OVERRIDE = self._prev
        return False


# ----------------------------------------------------------------------
# Graph-engine switch
# ----------------------------------------------------------------------
# Two storage engines implement the same ``Mig`` facade: the historical
# pure-object core (``ObjectMig`` — tuples, dicts, lists) and the
# numpy-slab core (:class:`repro.mig.slab.SlabMig` — a contiguous
# ``(capacity, 3)`` signal array kept in sync lazily, feeding vectorized
# cost kernels).  Both are bit-identical by construction (the slab is a
# cache *next to* the object arrays, never the source of truth for
# mutation), so the switch is pure performance.  ``REPRO_GRAPH`` is read
# lazily on every construction so worker processes and tests see the
# ambient environment; :class:`graph_engine` overrides it in-process.

_GRAPH_ENGINES = ("object", "slab")
_GRAPH_OVERRIDE: Optional[str] = None


def graph_engine_name() -> str:
    """The storage engine new :class:`Mig` instances use.

    ``"slab"`` (default) or ``"object"``; raises :class:`MigError` on an
    unknown ``REPRO_GRAPH`` value so callers (the CLI) can fail fast.
    """
    name = _GRAPH_OVERRIDE
    if name is None:
        name = os.environ.get("REPRO_GRAPH", "slab")
    if name not in _GRAPH_ENGINES:
        raise MigError(
            f"unknown graph engine {name!r} (expected one of "
            f"{', '.join(_GRAPH_ENGINES)})"
        )
    return name


class graph_engine:
    """Context manager forcing the graph storage engine for a block.

    ``with graph_engine("object"): ...`` builds every new ``Mig`` on the
    legacy object core regardless of ``REPRO_GRAPH``; existing instances
    keep their engine (``clone`` preserves the concrete class).  Nested
    uses restore the previous override on exit.
    """

    def __init__(self, name: str) -> None:
        if name not in _GRAPH_ENGINES:
            raise MigError(
                f"unknown graph engine {name!r} (expected one of "
                f"{', '.join(_GRAPH_ENGINES)})"
            )
        self._name = name
        self._prev: Optional[str] = None

    def __enter__(self) -> "graph_engine":
        global _GRAPH_OVERRIDE
        self._prev = _GRAPH_OVERRIDE
        _GRAPH_OVERRIDE = self._name
        return self

    def __exit__(self, *_exc) -> bool:
        global _GRAPH_OVERRIDE
        _GRAPH_OVERRIDE = self._prev
        return False


def make_signal(node: int, complement: bool = False) -> Signal:
    """Build a signal from a node index and a complement flag."""
    return (node << 1) | (1 if complement else 0)


def signal_node(signal: Signal) -> int:
    """Return the node index a signal points at."""
    return signal >> 1


def signal_is_complemented(signal: Signal) -> bool:
    """Return True iff the signal carries the complement attribute."""
    return bool(signal & 1)


def signal_not(signal: Signal) -> Signal:
    """Return the negation of a signal (toggle the complement bit)."""
    return signal ^ 1


class MigError(ValueError):
    """Raised on invalid MIG operations."""


def _reduce_majority(children: Tuple[Signal, Signal, Signal]) -> Optional[Signal]:
    """Apply the majority axiom Ω.M to a *sorted* child triple.

    Returns the reduced signal if the triple is degenerate, else None.
    Sorting guarantees equal signals and complementary pairs (2k, 2k+1)
    are adjacent, so only adjacent pairs need checking.
    """
    a, b, c = children
    if a == b or b == c:
        return b
    if a ^ 1 == b:
        return c
    if b ^ 1 == c:
        return a
    return None


class Mig:
    """A mutable, structurally hashed Majority-Inverter Graph.

    ``Mig(...)`` is a facade: construction dispatches to the concrete
    storage engine selected by :func:`graph_engine_name` (the numpy-slab
    core by default, the legacy object core under
    ``REPRO_GRAPH=object``).  Subclasses instantiate themselves
    directly, so ``clone()`` — which builds ``type(self)(...)`` — always
    preserves the engine of the instance being cloned.
    """

    def __new__(cls, name: str = "mig") -> "Mig":
        if cls is Mig:
            if graph_engine_name() == "slab":
                from .slab import SlabMig

                cls = SlabMig
            else:
                cls = ObjectMig
        return object.__new__(cls)

    def __init__(self, name: str = "mig") -> None:
        self.name = name
        # Node 0 is the constant-0 node.
        self._children: List[Optional[Tuple[Signal, Signal, Signal]]] = [None]
        self._is_pi: List[bool] = [False]
        # fanout[n] maps parent node -> number of child slots referencing n.
        self._fanout: List[Dict[int, int]] = [{}]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[Signal] = []
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[Signal, Signal, Signal], int] = {}
        self._generation = 0  # bumped on every structural change
        # Structural-event log (see module constants).  Disabled until a
        # CostView calls :meth:`enable_event_log`; clones therefore pay
        # zero logging overhead.  Cursors are absolute positions
        # ``_events_base + index``; wholesale rewrites (copy_from, log
        # overflow) jump ``_events_base`` past every live cursor, which
        # consumers detect and answer with a full recompute.
        self._events: List[tuple] = []
        self._events_base = 0
        self._track_events = False
        # Transactional undo journal: inverse records appended by the
        # mutation primitives while a checkpoint is open.  Records (LIFO
        # on rollback): ``("n", node)`` node allocation, ``("a", node,
        # prev_strash_owner)`` attach, ``("d", node, triple, owned)``
        # detach, ``("p", index, old_signal)`` PO write, and ``("w",
        # arrays)`` wholesale array replacement (copy_from/compact).
        # Nested checkpoints share the journal through a mark stack.
        self._undo: List[tuple] = []
        self._tx_stack: List[int] = []
        # Per-generation memo of :meth:`reachable_nodes` — the single
        # hottest traversal (cloning, simulation, level/cost rebuilds
        # all start from it).  Every mutating primitive bumps
        # ``_generation`` before the next traversal, so keying the memo
        # on the generation is exact.
        self._order_cache: Optional[List[int]] = None
        self._order_cache_gen = -1
        # Monotone profiling counters (surfaced via CostView.profile()).
        self.tx_checkpoints = 0
        self.tx_rollbacks = 0
        self.tx_undo_replayed = 0
        self.strash_hits = 0
        self.strash_misses = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotone counter bumped on every structural mutation.

        Views cache against this to know when to recompute.
        """
        return self._generation

    def counters_snapshot(self) -> Dict[str, int]:
        """The graph's monotone profiling counters under the canonical
        telemetry names (see ``repro.telemetry.schema``)."""
        return {
            "mig.tx_checkpoints": self.tx_checkpoints,
            "mig.tx_rollbacks": self.tx_rollbacks,
            "mig.tx_undo_replayed": self.tx_undo_replayed,
            "mig.strash_hits": self.strash_hits,
            "mig.strash_misses": self.strash_misses,
            "graph.compactions": self.compactions,
            "graph.nodes_allocated": len(self._children),
            "graph.slab_capacity": self.slab_capacity,
        }

    @property
    def slab_capacity(self) -> int:
        """Allocated slab rows (0 on the object engine — no slab)."""
        return 0

    def enable_event_log(self) -> int:
        """Start recording structural events for incremental views.

        Every ``_attach``/``_detach``/PO edit from now on appends an
        event tuple; returns the current (absolute) event cursor.
        Idempotent — multiple views may share the log.
        """
        self._track_events = True
        return self._events_base + len(self._events)

    def event_cursor(self) -> int:
        """Absolute position just past the last recorded event."""
        return self._events_base + len(self._events)

    def events_since(self, cursor: int) -> Optional[List[tuple]]:
        """Events recorded since ``cursor``, or None if the prefix was
        discarded (the caller must fall back to a full recompute)."""
        start = cursor - self._events_base
        if start < 0:
            return None
        return self._events[start:]

    def discard_events_upto(self, cursor: int) -> None:
        """Drop the event prefix before ``cursor`` (a consumed delta).

        Any other consumer whose cursor is older detects the jump in
        ``_events_base`` and recomputes from scratch.
        """
        drop = cursor - self._events_base
        if drop > 0:
            del self._events[:drop]
            self._events_base = cursor

    def _log_event(self, event: tuple) -> None:
        self._events.append(event)
        if len(self._events) > (1 << 20):  # bound memory; forces full
            self._events_base += len(self._events)  # recompute downstream
            self._events.clear()

    def _log_events_bulk(self, batch: List[tuple]) -> None:
        """Append many events with one ``extend`` when the memory bound
        allows; otherwise fall back to per-event :meth:`_log_event` so
        the overflow (base jump + clear) fires at exactly the same
        event as a sequential append would."""
        if len(self._events) + len(batch) <= (1 << 20):
            self._events.extend(batch)
        else:
            for event in batch:
                self._log_event(event)

    @property
    def num_nodes_allocated(self) -> int:
        """Total node slots ever allocated (including dead nodes)."""
        return len(self._children)

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    @property
    def pis(self) -> List[int]:
        """Primary-input node indices, in declaration order."""
        return list(self._pis)

    @property
    def pos(self) -> List[Signal]:
        """Primary-output signals, in declaration order."""
        return list(self._pos)

    @property
    def pi_names(self) -> List[str]:
        """Primary-input names."""
        return list(self._pi_names)

    @property
    def po_names(self) -> List[str]:
        """Primary-output names."""
        return list(self._po_names)

    def is_pi(self, node: int) -> bool:
        """True iff ``node`` is a primary input."""
        return self._is_pi[node]

    def is_constant(self, node: int) -> bool:
        """True iff ``node`` is the constant node."""
        return node == 0

    def is_gate(self, node: int) -> bool:
        """True iff ``node`` is a majority gate."""
        return self._children[node] is not None

    def children(self, node: int) -> Tuple[Signal, Signal, Signal]:
        """Return the (sorted) child signal triple of a gate node."""
        triple = self._children[node]
        if triple is None:
            raise MigError(f"node {node} is not a gate")
        return triple

    def fanout_counts(self, node: int) -> Dict[int, int]:
        """Return parent node → number of referencing child slots."""
        return dict(self._fanout[node])

    def fanout_size(self, node: int) -> int:
        """Total gate references to ``node`` (PO references excluded)."""
        return sum(self._fanout[node].values())

    def po_refs(self, node: int) -> List[int]:
        """Return PO indices whose signal points at ``node``."""
        return [i for i, s in enumerate(self._pos) if signal_node(s) == node]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> Signal:
        """Create a primary input; returns its (positive) signal."""
        if self._tx_stack:
            raise MigError("cannot add a primary input inside a transaction")
        node = self._new_node(None, is_pi=True)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"x{len(self._pis) - 1}")
        return make_signal(node)

    def add_po(self, signal: Signal, name: Optional[str] = None) -> int:
        """Register a primary output; returns the output index."""
        if self._tx_stack:
            raise MigError("cannot add a primary output inside a transaction")
        self._check_signal(signal)
        node = signal_node(signal)
        self._pos.append(signal)
        self._po_names.append(name if name is not None else f"f{len(self._pos) - 1}")
        self._generation += 1
        if self._track_events:
            self._log_event((EVENT_PO, len(self._pos) - 1, None, signal))
        # No fanout bookkeeping for POs: they are queried via po_refs.
        return len(self._pos) - 1

    def set_po(self, index: int, signal: Signal) -> None:
        """Redirect an existing primary output to a new signal."""
        self._check_signal(signal)
        old = self._pos[index]
        if self._tx_stack:
            self._undo.append(("p", index, old))
        self._pos[index] = signal
        self._generation += 1
        if self._track_events and old != signal:
            self._log_event((EVENT_PO, index, old, signal))

    def make_maj(self, a: Signal, b: Signal, c: Signal) -> Signal:
        """Return the signal of ``M(a, b, c)``, creating a node if needed.

        Applies Ω.M reduction and structural hashing; Ω.C is implicit
        in the sorted child order.
        """
        for signal in (a, b, c):
            self._check_signal(signal)
        children = tuple(sorted((a, b, c)))
        reduced = _reduce_majority(children)  # type: ignore[arg-type]
        if reduced is not None:
            return reduced
        existing = self._strash.get(children)  # type: ignore[arg-type]
        if existing is not None:
            self.strash_hits += 1
            return make_signal(existing)
        self.strash_misses += 1
        node = self._new_node(children)  # type: ignore[arg-type]
        return make_signal(node)

    def make_and(self, a: Signal, b: Signal) -> Signal:
        """``a AND b`` as ``M(a, b, 0)``."""
        return self.make_maj(a, b, CONST0)

    def make_or(self, a: Signal, b: Signal) -> Signal:
        """``a OR b`` as ``M(a, b, 1)``."""
        return self.make_maj(a, b, CONST1)

    def make_xor(self, a: Signal, b: Signal) -> Signal:
        """``a XOR b`` as ``AND(OR(a, b), NAND(a, b))`` (3 nodes)."""
        return self.make_and(self.make_or(a, b), signal_not(self.make_and(a, b)))

    def make_mux(self, sel: Signal, then: Signal, other: Signal) -> Signal:
        """``sel ? then : other`` as ``OR(AND(sel, then), AND(!sel, other))``."""
        return self.make_or(
            self.make_and(sel, then), self.make_and(signal_not(sel), other)
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def substitute(self, node: int, replacement: Signal) -> None:
        """Replace every reference to ``node`` by ``replacement``.

        ``replacement`` must be functionally equivalent to ``node`` for
        the graph to stay correct; the caller is responsible for that
        (all the axiom implementations in :mod:`repro.mig.rewrite`
        guarantee it).  Structural hashing is repaired transitively:
        parents whose rewritten triples collide with existing nodes are
        merged, and parents that become degenerate under Ω.M are
        reduced, cascading upward.
        """
        self._check_signal(replacement)
        if signal_node(replacement) == node:
            if replacement == make_signal(node):
                return
            raise MigError("cannot substitute a node by its own complement")
        if self._in_cone(signal_node(replacement), node):
            raise MigError(f"substitution of node {node} would create a cycle")
        # Cascaded merges can replace a node that is itself the target
        # of a pending (or already processed) redirection; the
        # resolution map keeps every redirection pointing at the final
        # live node (complements compose along the chain).
        resolution: Dict[int, Signal] = {}

        def resolve(signal: Signal) -> Signal:
            complement = signal & 1
            target = signal_node(signal)
            while target in resolution:
                step = resolution[target]
                complement ^= step & 1
                target = signal_node(step)
            return (target << 1) | complement

        worklist: List[Tuple[int, Signal]] = [(node, replacement)]
        while worklist:
            old, new = worklist.pop()
            new = resolve(new)
            if signal_node(new) == old:
                continue  # chain already collapsed onto this node
            resolution[old] = new
            # Redirect primary outputs.
            for i, po in enumerate(self._pos):
                if signal_node(po) == old:
                    redirected = new ^ (po & 1)
                    if self._tx_stack:
                        self._undo.append(("p", i, po))
                    self._pos[i] = redirected
                    if self._track_events:
                        self._log_event((EVENT_PO, i, po, redirected))
            # Redirect parents (snapshot: _rebuild_parent mutates fanout).
            for parent in list(self._fanout[old].keys()):
                merged = self._rebuild_parent(parent, old, new)
                if merged is not None:
                    worklist.append(merged)
        self._generation += 1

    def _rebuild_parent(
        self, parent: int, old: int, new: Signal
    ) -> Optional[Tuple[int, Signal]]:
        """Rewrite ``parent``'s children, replacing node ``old``.

        Returns a follow-up (node, replacement) pair if the parent
        itself reduced or merged into another node, else None.
        """
        triple = self._children[parent]
        if triple is None:
            return None
        new_children = tuple(
            sorted(
                (new ^ (s & 1)) if signal_node(s) == old else s for s in triple
            )
        )
        self._detach(parent)
        reduced = _reduce_majority(new_children)  # type: ignore[arg-type]
        if reduced is not None:
            return (parent, reduced)
        existing = self._strash.get(new_children)  # type: ignore[arg-type]
        if existing is not None and existing != parent:
            return (parent, make_signal(existing))
        self._attach(parent, new_children)  # type: ignore[arg-type]
        return None

    def replace_node_children(
        self, node: int, children: Tuple[Signal, Signal, Signal]
    ) -> Optional[Signal]:
        """Give ``node`` a new child triple (caller asserts equivalence).

        Returns None on success; if the new triple reduces (Ω.M) or
        collides with an existing node, the graph is left unchanged and
        the signal the node *would* equal is returned so the caller can
        decide to :meth:`substitute` instead.
        """
        for signal in children:
            self._check_signal(signal)
            if self._in_cone(signal_node(signal), node):
                raise MigError("new children would create a cycle")
        new_children = tuple(sorted(children))
        reduced = _reduce_majority(new_children)  # type: ignore[arg-type]
        if reduced is not None:
            return reduced
        existing = self._strash.get(new_children)  # type: ignore[arg-type]
        if existing is not None and existing != node:
            return make_signal(existing)
        if existing == node:
            return None
        self._detach(node)
        self._attach(node, new_children)  # type: ignore[arg-type]
        self._generation += 1
        return None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def reachable_nodes(self) -> List[int]:
        """Gate nodes reachable from the POs, in topological order.

        Memoized per generation (every mutating primitive bumps
        ``_generation`` before control returns to a caller that could
        traverse); returns a fresh list the caller may mutate.
        """
        return list(self._reachable_cached())

    def _reachable_cached(self) -> List[int]:
        """The shared per-generation topological order — do NOT mutate.

        In-package consumers (CostView, clone, simulation, the cost
        kernels) read this directly to skip both the DFS and the
        defensive copy.
        """
        if self._order_cache_gen != self._generation or self._order_cache is None:
            self._order_cache = self._compute_reachable()
            self._order_cache_gen = self._generation
        return self._order_cache

    def _compute_reachable(self) -> List[int]:
        children_arr = self._children
        visited: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, int]] = []
        for po in self._pos:
            root = po >> 1
            if root in visited or children_arr[root] is None:
                continue
            stack.append((root, 0))
            while stack:
                node, child_index = stack.pop()
                if node in visited:
                    continue
                triple = children_arr[node]
                pushed = False
                for i in range(child_index, 3):
                    child = triple[i] >> 1  # type: ignore[index]
                    if child not in visited and children_arr[child] is not None:
                        stack.append((node, i + 1))
                        stack.append((child, 0))
                        pushed = True
                        break
                if not pushed:
                    visited.add(node)
                    order.append(node)
        return order

    def num_gates(self) -> int:
        """Number of live (PO-reachable) gate nodes — the MIG *size*."""
        return len(self._reachable_cached())

    def cone_nodes(self, signal: Signal) -> List[int]:
        """Gate nodes in the transitive fan-in cone of ``signal`` (topo order)."""
        root = signal_node(signal)
        if not self.is_gate(root):
            return []
        visited: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            node, child_index = stack.pop()
            if node in visited:
                continue
            triple = self._children[node]
            assert triple is not None
            pushed = False
            for i in range(child_index, 3):
                child = signal_node(triple[i])
                if child not in visited and self.is_gate(child):
                    stack.append((node, i + 1))
                    stack.append((child, 0))
                    pushed = True
                    break
            if not pushed:
                visited.add(node)
                order.append(node)
        return order

    def _in_cone(self, node: int, target: int) -> bool:
        """True iff ``target`` is in the fan-in cone of ``node`` (or equal)."""
        if node == target:
            return True
        children_arr = self._children
        if children_arr[node] is None:
            return False
        stack = [node]
        seen = {node}
        while stack:
            current = stack.pop()
            triple = children_arr[current]
            if triple is None:
                continue
            for s in triple:
                child = s >> 1
                if child == target:
                    return True
                if child not in seen and children_arr[child] is not None:
                    seen.add(child)
                    stack.append(child)
        return False

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate_words(
        self, input_words: Sequence[int], mask: int
    ) -> List[int]:
        """Bit-parallel simulation over arbitrary-width words.

        ``input_words[i]`` holds the test vectors of the *i*-th primary
        input; bit *v* of every word is test vector *v*.  Returns one
        word per primary output.
        """
        if len(input_words) != len(self._pis):
            raise MigError(
                f"expected {len(self._pis)} input words, got {len(input_words)}"
            )
        values: Dict[int, int] = {0: 0}
        for node, word in zip(self._pis, input_words):
            values[node] = word & mask

        def signal_word(signal: Signal) -> int:
            word = values[signal_node(signal)]
            return word ^ mask if signal & 1 else word

        for node in self._reachable_cached():
            a, b, c = (signal_word(s) for s in self.children(node))
            values[node] = (a & b) | (a & c) | (b & c)
        return [signal_word(po) for po in self._pos]

    def truth_tables(self) -> List[TruthTable]:
        """Exhaustive per-output truth tables (guarded to 20 inputs)."""
        num_vars = len(self._pis)
        if num_vars > 20:
            raise MigError(f"refusing exhaustive simulation of {num_vars} inputs")
        mask = table_mask(num_vars)
        words = [
            TruthTable.variable(num_vars, i).bits for i in range(num_vars)
        ]
        return [
            TruthTable(num_vars, word)
            for word in self.simulate_words(words, mask)
        ]

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------

    def clone(self) -> "Mig":
        """Deep-copy the live part of the graph (dead nodes dropped).

        Built by direct array construction: the node remapping is
        injective on signals, so mapped triples can neither Ω.M-reduce
        nor collide in the strash, and the result is identical to the
        (much slower) make_maj-based rebuild it replaces.
        """
        copy = type(self)(self.name)  # clones stay on the same engine
        children_arr = self._children
        mapping = [-1] * len(children_arr)  # node -> signal in copy
        mapping[0] = CONST0
        c_children = copy._children
        c_is_pi = copy._is_pi
        c_fanout = copy._fanout
        c_strash = copy._strash
        for node, name in zip(self._pis, self._pi_names):
            idx = len(c_children)
            c_children.append(None)
            c_is_pi.append(True)
            c_fanout.append({})
            copy._pis.append(idx)
            copy._pi_names.append(name)
            mapping[node] = idx << 1

        def copy_gate(node: int) -> None:
            sa, sb, sc = children_arr[node]  # type: ignore[misc]
            a = mapping[sa >> 1] ^ (sa & 1)
            b = mapping[sb >> 1] ^ (sb & 1)
            c = mapping[sc >> 1] ^ (sc & 1)
            if b < a:
                a, b = b, a
            if c < b:
                b, c = c, b
                if b < a:
                    a, b = b, a
            triple = (a, b, c)
            idx = len(c_children)
            c_children.append(triple)
            c_is_pi.append(False)
            c_fanout.append({})
            c_strash[triple] = idx
            for s in triple:
                fo = c_fanout[s >> 1]
                fo[idx] = fo.get(idx, 0) + 1
            mapping[node] = idx << 1

        for node in self._reachable_cached():
            copy_gate(node)
        for po, name in zip(self._pos, self._po_names):
            driver = signal_node(po)
            if mapping[driver] == -1:
                # PO on an unreachable-from-other-POs node: copy its cone.
                for node in self.cone_nodes(po):
                    if mapping[node] == -1:
                        copy_gate(node)
                if mapping[driver] == -1:
                    raise MigError(f"PO references detached node {driver}")
            copy._pos.append(mapping[driver] ^ (po & 1))
            copy._po_names.append(name)
        copy._generation = len(c_children) - 1 + len(copy._pos)
        return copy

    def sweep_dead(self) -> int:
        """Detach all gate nodes unreachable from the POs.

        Rewriting passes construct candidate structures speculatively;
        rejected candidates stay allocated but dead.  Sweeping detaches
        them (clearing their strash/fanout entries) so fanout-based
        analyses (single-use checks, MFFC sizes) see only live logic.
        Node ids remain stable; returns the number of nodes detached.
        """
        live = set(self._reachable_cached())
        detached = 0
        for node in range(len(self._children)):
            if self._children[node] is not None and node not in live:
                self._detach(node)
                detached += 1
        if detached:
            self._generation += 1
        return detached

    def copy_from(self, other: "Mig") -> None:
        """Overwrite this graph with a deep copy of ``other``.

        Used by the optimization drivers to roll back to the best
        snapshot seen during iterative exploration.  PI/PO counts and
        names must match (they always do for snapshots of the same
        function).
        """
        if other.num_pis != self.num_pis or other.num_pos != self.num_pos:
            raise MigError("copy_from requires matching interfaces")
        source = other.clone()
        if self._tx_stack:
            # Wholesale record: the replaced arrays are captured by
            # reference (O(1)) — nothing mutates them once swapped out,
            # and rollback swaps them straight back.
            self._undo.append((
                "w",
                (
                    self._children,
                    self._is_pi,
                    self._fanout,
                    self._pis,
                    self._pi_names,
                    self._pos,
                    self._po_names,
                    self._strash,
                ),
            ))
        self._children = source._children
        self._is_pi = source._is_pi
        self._fanout = source._fanout
        self._pis = source._pis
        self._pi_names = source._pi_names
        self._pos = source._pos
        self._po_names = source._po_names
        self._strash = source._strash
        self._generation += 1
        # The graph changed wholesale without per-mutation events: jump
        # the event base past every live cursor so views full-recompute.
        self._events_base += len(self._events) + 1
        self._events.clear()

    def compact(self) -> None:
        """Renumber to the canonical clone-fixpoint id space, dropping
        dead nodes.

        Equivalent to the historical ``mig.copy_from(mig.clone())``
        idiom: the result is ``clone(clone(self))``.  A single clone
        would *not* do — renumbering re-sorts child triples, which
        reorders the next PO-driven traversal — but the double image is
        a fixpoint, so ``compact`` is idempotent on content.  The
        optimizers call this after :meth:`rollback` wherever the legacy
        clone-based engine renumbered state via ``copy_from``, keeping
        the two engines bit-identical.
        """
        self.compactions += 1
        self.copy_from(self.clone())

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while at least one checkpoint is open."""
        return bool(self._tx_stack)

    def checkpoint(self) -> int:
        """Open a transaction; returns a token for commit/rollback.

        Transactions nest: each checkpoint marks a position in the
        shared undo journal, and tokens must be resolved innermost
        first.  While any transaction is open, ``add_pi``/``add_po``
        raise (the optimizers never extend the interface mid-run, and
        interface edits are not journaled).
        """
        self._tx_stack.append(len(self._undo))
        self.tx_checkpoints += 1
        return len(self._tx_stack) - 1

    def commit(self, token: int) -> None:
        """Close the innermost transaction, keeping its mutations."""
        if token != len(self._tx_stack) - 1:
            raise MigError(
                f"commit token {token} is not the innermost transaction"
            )
        self._tx_stack.pop()
        if not self._tx_stack:
            self._undo.clear()

    def rollback(self, token: int) -> None:
        """Undo every mutation since the matching :meth:`checkpoint`.

        Replays the journal suffix in reverse: each inverse operation
        restores ``_children``/``_fanout``/``_strash``/``_pos`` exactly
        and logs the inverse structural event, so attached views
        delta-update instead of recomputing.  Dict *insertion order*
        (fanout, strash) is not restored — only content — which is why
        the optimizer call sites follow a rollback with
        :meth:`compact` wherever the legacy engine renumbered state
        (``clone`` never reads those dicts, so the compacted result is
        bit-identical to the legacy one).  ``generation`` keeps rising.
        """
        if token != len(self._tx_stack) - 1:
            raise MigError(
                f"rollback token {token} is not the innermost transaction"
            )
        mark = self._tx_stack.pop()
        undo = self._undo
        children_arr = self._children
        fanout = self._fanout
        strash = self._strash
        track = self._track_events
        replayed = 0
        # Inverse events are buffered and flushed with one extend (same
        # order, same overflow point — see _log_events_bulk); runs of
        # consecutive allocation records pop the tail with one truncate.
        pending: List[tuple] = []
        i = len(undo) - 1
        while i >= mark:
            record = undo[i]
            kind = record[0]
            if kind == "a":
                _kind, node, prev = record
                triple = children_arr[node]
                children_arr[node] = None
                if prev is None:
                    del strash[triple]
                else:
                    strash[triple] = prev
                for s in triple:  # type: ignore[union-attr]
                    counts = fanout[s >> 1]
                    counts[node] -= 1
                    if not counts[node]:
                        del counts[node]
                if track:
                    pending.append((EVENT_DETACH, node, triple))
            elif kind == "d":
                _kind, node, triple, owned = record
                children_arr[node] = triple
                if owned:
                    strash[triple] = node
                for s in triple:
                    counts = fanout[s >> 1]
                    counts[node] = counts.get(node, 0) + 1
                if track:
                    pending.append((EVENT_ATTACH, node, triple))
            elif kind == "n":
                # Allocations journal in ascending node order, so a
                # reverse-replay run of "n" records pops a contiguous
                # tail — validate the whole run, then truncate once.
                top = len(children_arr) - 1
                run = 0
                while i - run >= mark and undo[i - run][0] == "n":
                    node = undo[i - run][1]
                    if node != top - run or children_arr[node] is not None:
                        raise MigError("undo journal corrupt: bad node pop")
                    run += 1
                del children_arr[top - run + 1 :]
                del self._is_pi[top - run + 1 :]
                del fanout[top - run + 1 :]
                replayed += run
                i -= run
                continue
            elif kind == "p":
                _kind, index, old = record
                current = self._pos[index]
                self._pos[index] = old
                if track and current != old:
                    pending.append((EVENT_PO, index, current, old))
            else:  # "w" — wholesale array swap (copy_from/compact)
                # Flush buffered events first: the base jump below
                # depends on the live event count.
                if pending:
                    self._log_events_bulk(pending)
                    pending = []
                (
                    self._children,
                    self._is_pi,
                    self._fanout,
                    self._pis,
                    self._pi_names,
                    self._pos,
                    self._po_names,
                    self._strash,
                ) = record[1]
                children_arr = self._children
                fanout = self._fanout
                strash = self._strash
                # Same contract as the forward wholesale op: no
                # per-mutation events exist, force a full recompute.
                self._events_base += len(self._events) + 1
                self._events.clear()
            replayed += 1
            i -= 1
        if pending:
            self._log_events_bulk(pending)
        del undo[mark:]
        self.tx_rollbacks += 1
        self.tx_undo_replayed += replayed
        self._generation += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_signal(self, signal: Signal) -> None:
        node = signal_node(signal)
        if not 0 <= node < len(self._children):
            raise MigError(f"signal {signal} references unknown node {node}")

    def _new_node(
        self,
        children: Optional[Tuple[Signal, Signal, Signal]],
        is_pi: bool = False,
    ) -> int:
        node = len(self._children)
        self._children.append(None)
        self._is_pi.append(is_pi)
        self._fanout.append({})
        if self._tx_stack:
            self._undo.append(("n", node))
        if children is not None:
            self._attach(node, children)
        self._generation += 1
        return node

    def _attach(self, node: int, children: Tuple[Signal, Signal, Signal]) -> None:
        """Install a sorted child triple and register fanout + strash."""
        self._children[node] = children
        if self._tx_stack:
            # The previous strash owner (a dead duplicate gate, usually
            # None) must be reinstated on rollback.
            self._undo.append(("a", node, self._strash.get(children)))
        self._strash[children] = node
        for s in children:
            child = signal_node(s)
            self._fanout[child][node] = self._fanout[child].get(node, 0) + 1
        if self._track_events:
            self._log_event((EVENT_ATTACH, node, children))

    def _detach(self, node: int) -> None:
        """Remove a gate's children from fanout tables and the strash."""
        triple = self._children[node]
        if triple is None:
            return
        owned = self._strash.get(triple) == node
        if self._tx_stack:
            self._undo.append(("d", node, triple, owned))
        if owned:
            del self._strash[triple]
        for s in triple:
            child = signal_node(s)
            counts = self._fanout[child]
            counts[node] -= 1
            if counts[node] == 0:
                del counts[node]
        self._children[node] = None
        if self._track_events:
            self._log_event((EVENT_DETACH, node, triple))

    def check_invariants(self) -> None:
        """Assert the structural invariants (used by the test-suite)."""
        for node, triple in enumerate(self._children):
            if triple is None:
                continue
            if list(triple) != sorted(triple):
                raise MigError(f"node {node} has unsorted children {triple}")
            if _reduce_majority(triple) is not None:
                raise MigError(f"node {node} is Ω.M-reducible: {triple}")
            if self._strash.get(triple) != node:
                # A dead duplicate is tolerated only if it is unreachable.
                if node in self.reachable_nodes():
                    raise MigError(f"live node {node} missing from strash")
            for s in triple:
                child = signal_node(s)
                if child >= node and self.is_gate(child):
                    # children always have smaller indices than parents
                    # unless rewrites reused slots; just require acyclicity
                    if self._in_cone(child, node):
                        raise MigError(f"cycle through node {node}")

    def __repr__(self) -> str:
        return (
            f"Mig({self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates()})"
        )


class ObjectMig(Mig):
    """The legacy pure-object storage engine (tuples/dicts/lists only).

    Kept alive for one release as the bit-identity oracle for the slab
    engine (``REPRO_GRAPH=object``, the fuzz harness ``graph-diff``
    mode, the CI engine-identity smoke).  All behavior lives in the
    :class:`Mig` base; this class only pins the dispatch.
    """

    __slots__ = ()
