"""The paper's MIG optimization algorithms (Sec. III-C and III-D).

Four entry points, mirroring the paper's Algorithms 1–4:

* :func:`optimize_area`   — conventional size optimization (Alg. 1);
* :func:`optimize_depth`  — conventional depth optimization (Alg. 2);
* :func:`optimize_rram`   — the proposed bi-objective optimization of
  RRAM count and computational steps (Alg. 3);
* :func:`optimize_steps`  — the proposed step-count optimization
  (Alg. 4).

All four mutate the given MIG in place and return an
:class:`OptimizationResult` describing the trajectory.  They iterate up
to ``effort`` cycles (the paper fixes ``effort = 40``) with early exit
once a full cycle makes no structural change — this is result-identical
to running the remaining cycles, which would all be no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import active_trajectory, span, traced
from .batch import batch_enabled, batch_min_nodes
from .costview import CostView
from .graph import (
    Mig,
    signal_is_complemented,
    signal_node,
    transactions_enabled,
)
from .rewrite import (
    apply_associativity,
    apply_complementary_associativity,
    apply_distributivity_lr,
    apply_distributivity_rl,
    apply_inverter_propagation,
    apply_relevance,
    inverter_propagation_case,
)
from .views import Realization, level_stats, node_heights, node_levels, rram_costs

DEFAULT_EFFORT = 40


@dataclass
class OptimizationResult:
    """Trajectory of one optimization run."""

    algorithm: str
    cycles_run: int
    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    history: List[Tuple[int, int]] = field(default_factory=list)  # (size, depth)
    #: CostView observability counters (``repro.cli --profile``).
    profile: Optional[Dict[str, int]] = None

    @property
    def size_reduction(self) -> int:
        """Nodes removed by the run (negative = growth)."""
        return self.initial_size - self.final_size

    @property
    def depth_reduction(self) -> int:
        """Levels removed by the run (negative = growth)."""
        return self.initial_depth - self.final_depth


# Every pass accepts an optional CostView; without one it falls back to
# the from-scratch views (same answers, recomputed per call).


def _levels_of(mig: Mig, view: Optional[CostView]) -> Dict[int, int]:
    return view.levels() if view is not None else node_levels(mig)


def _stats_of(mig: Mig, view: Optional[CostView]):
    return view.stats() if view is not None else level_stats(mig)


def _costs_of(mig: Mig, realization: Realization, view: Optional[CostView]):
    return view.costs(realization) if view is not None else rram_costs(
        mig, realization
    )


def _reachable_of(mig: Mig, view: Optional[CostView]) -> List[int]:
    return view.reachable() if view is not None else mig.reachable_nodes()


def _size_depth(
    mig: Mig, view: Optional[CostView] = None
) -> Tuple[int, int]:
    if view is not None:
        return view.size_depth()
    stats = level_stats(mig)
    return stats.size, stats.depth


def _record_trial(
    mig: Mig, view: Optional[CostView], *, rule: str, accepted: bool
) -> None:
    """Feed the active trajectory recorder (no-op when none installed)."""
    recorder = active_trajectory()
    if recorder is not None:
        recorder.record_state(mig, view, rule=rule, accepted=accepted)


# ----------------------------------------------------------------------
# Building-block passes
# ----------------------------------------------------------------------


@traced("pass.eliminate")
def eliminate(
    mig: Mig, *, max_rounds: int = 64, view: Optional[CostView] = None
) -> bool:
    """``Ω.M; Ω.D_{R→L}`` to convergence — the paper's *eliminate*.

    Ω.M is enforced structurally at all times, so the pass reduces to
    repeatedly applying right-to-left distributivity wherever it cannot
    increase the node count.
    """
    changed_any = False
    for _round in range(max_rounds):
        changed = False
        for node in _reachable_of(mig, view):
            if not mig.is_gate(node):
                continue
            if apply_distributivity_rl(mig, node):
                changed = True
        if not changed:
            break
        changed_any = True
    return changed_any


@traced("pass.reshape")
def reshape(
    mig: Mig, *, variant: int = 0, view: Optional[CostView] = None
) -> bool:
    """One ``Ω.A; Ψ.C`` sweep that re-arranges the graph.

    Used by Alg. 1 between eliminations to expose new merging
    opportunities.  ``variant`` alternates the node traversal direction
    between cycles so successive reshapes explore different orders.
    """
    levels = _levels_of(mig, view)
    nodes = _reachable_of(mig, view)
    if variant % 2:
        nodes = list(reversed(nodes))
    changed = False
    for node in nodes:
        if not mig.is_gate(node):
            continue
        if apply_associativity(mig, node, levels, allow_neutral=True):
            changed = True
            levels = _levels_of(mig, view)
        elif apply_complementary_associativity(mig, node, levels):
            changed = True
            levels = _levels_of(mig, view)
    return changed


def _critical_nodes_from(
    mig: Mig, levels: Dict[int, int], view: Optional[CostView] = None
) -> List[int]:
    heights = view.heights() if view is not None else node_heights(mig)
    depth = 0
    for po in mig.pos:
        depth = max(depth, levels.get(signal_node(po), 0))
    nodes = [
        node
        for node in _reachable_of(mig, view)
        if levels[node] + heights.get(node, 0) == depth
    ]
    nodes.sort(key=lambda n: levels[n], reverse=True)
    return nodes


@traced("pass.push_up")
def push_up(
    mig: Mig,
    *,
    use_relevance: bool = True,
    max_sweeps: int = 24,
    view: Optional[CostView] = None,
) -> bool:
    """The paper's *push-up*: drive critical variables to upper levels.

    Per sweep: for every node on a critical path (deepest first), try
    ``Ω.M`` (implicit), ``Ω.D_{L→R}``, ``Ω.A``, ``Ψ.C`` and finally
    ``Ψ.R`` relevance, accepting level-reducing moves.  Sweeps repeat
    while the depth keeps improving.
    """
    changed_any = False
    best_depth: Optional[int] = None
    stale_sweeps = 0
    for _sweep in range(max_sweeps):
        levels = _levels_of(mig, view)
        depth = 0
        for po in mig.pos:
            depth = max(depth, levels.get(signal_node(po), 0))
        if best_depth is None or depth < best_depth:
            best_depth = depth
            stale_sweeps = 0
        else:
            stale_sweeps += 1
            if stale_sweeps >= 2:
                break
        moved = False
        for node in _critical_nodes_from(mig, levels, view):
            if not mig.is_gate(node):
                continue
            if (
                apply_distributivity_lr(mig, node, levels)
                or apply_associativity(mig, node, levels)
                or apply_complementary_associativity(mig, node, levels)
                or (use_relevance and apply_relevance(mig, node, levels))
            ):
                moved = True
        if not moved:
            break
        changed_any = True
    return changed_any


# ----------------------------------------------------------------------
# Inverter propagation pass (Sec. III-C3 / III-D)
# ----------------------------------------------------------------------

#: Batched-score rebuilds per inverter-propagation round before the
#: round falls back to scalar scoring.  Every accepted flip invalidates
#: the batch (the score arrays price moves against the pre-flip
#: histogram), so a round with many accepts would otherwise re-kernel
#: per accept; past this cap the scalar loop is cheaper.
_BATCH_CASE_REBUILDS = 32


def _apply_flip_tracked(
    mig: Mig, node: int, levels: Dict[int, int]
) -> Optional[bool]:
    """Flip ``node`` and report whether incremental tracking survives.

    Returns True when the flip allocated a fresh node (pure polarity
    toggle, level structure untouched), False when the flip merged into
    an existing node (caller must recompute statistics), or None when
    the flip did not apply.
    """
    before_alloc = mig.num_nodes_allocated
    level = levels.get(node)
    if not apply_inverter_propagation(mig, node):
        return None
    fresh = mig.num_nodes_allocated == before_alloc + 1
    if fresh and level is not None:
        levels[mig.num_nodes_allocated - 1] = level
    return fresh


@traced("pass.inverter_propagation")
def inverter_propagation_pass(
    mig: Mig,
    realization: Realization,
    *,
    cases: Optional[Sequence[int]] = (1, 2, 3),
    steps_weight: int = 4,
    rram_weight: int = 1,
    max_rounds: int = 4,
    view: Optional[CostView] = None,
) -> bool:
    """Greedy complement re-placement via Ω.I.

    Scans all gates bottom-up and flips candidates (``M(x,y,z) →
    !M(!x,!y,!z)``) when the *predicted* weighted cost change
    ``steps_weight·ΔS + rram_weight·ΔR`` is an improvement (ties broken
    toward fewer complemented edges on lower levels).

    ``cases`` selects the candidate filter: a sequence restricts flips
    to the paper's Sec. III-C3 cases (nodes with ≥ 2 complemented
    ingoing edges, split 1/2/3 by fanout polarity); ``None`` is the
    *base rule applied to the entire MIG* used by the first round of
    Alg. 4 — any gate is a candidate and the acceptance policy alone
    decides.

    Flips do not move nodes between levels, so ``ΔS``/``ΔR`` are
    predicted exactly from incrementally maintained per-level complement
    counts; the rare flip that merges nodes structurally triggers a full
    recount.
    """
    changed_any = False
    for _round in range(max_rounds):
        stats = _stats_of(mig, view)
        # No defensive copy: node_levels is freshly built per stats()
        # call and excluded from the frozen dataclass hash/compare.
        levels = stats.node_levels
        n_per_level = list(stats.nodes_per_level)
        c_per_level = list(stats.complements_per_level)
        po_complements = stats.po_complements
        k_r = realization.rrams_per_gate

        def total_l(c_levels: List[int], po_c: int) -> int:
            count = sum(1 for c in c_levels[1:] if c > 0)
            return count + (1 if po_c > 0 else 0)

        def total_r(c_levels: List[int]) -> int:
            best = po_complements
            for level in range(1, len(n_per_level)):
                best = max(best, k_r * n_per_level[level] + c_levels[level])
            return best

        def predict_one(node: int, level: int):
            """Scalar per-move prediction (shared by both paths): the
            post-flip complement histogram ``(new_c, new_po_c)``, or
            None when an attached parent is untracked (dead) or out of
            range — the move is unscorable and is skipped."""
            new_c = list(c_per_level)
            new_po_c = po_complements
            children = mig.children(node)
            non_const = [s for s in children if signal_node(s) != 0]
            old_cin = sum(1 for s in non_const if signal_is_complemented(s))
            new_c[level] += (len(non_const) - old_cin) - old_cin
            for parent in mig.fanout_counts(node):
                parent_level = levels.get(parent)
                if parent_level is None or parent_level >= len(new_c):
                    return None
                for s in mig.children(parent):
                    if signal_node(s) != node:
                        continue
                    new_c[parent_level] += -1 if signal_is_complemented(s) else 1
            for po_index in mig.po_refs(node):
                po = mig.pos[po_index]
                new_po_c += -1 if signal_is_complemented(po) else 1
            return new_c, new_po_c

        # Batched trial evaluation (repro.mig.batch): classify and
        # price every candidate in one numpy pass against the slab
        # arrays, then walk the same node order consuming precomputed
        # verdicts.  Accepted flips invalidate the batch (the scores
        # price moves against the pre-flip histogram), so the arrays
        # rebuild on generation drift — bounded per round by
        # ``_BATCH_CASE_REBUILDS`` before falling back to scalar.
        case_kernel = (
            getattr(mig, "slab_invprop_case_array", None)
            if view is not None and batch_enabled()
            else None
        )
        kernel_on = case_kernel is not None
        case_arr = score_ok = score_cost = score_own = None
        case_gen = -1
        rebuilds = 0

        changed = False
        for node in _reachable_of(mig, view):
            if not mig.is_gate(node):
                continue
            if kernel_on and case_gen != mig._generation:
                rebuilds += 1
                if rebuilds > _BATCH_CASE_REBUILDS:
                    kernel_on = False
                else:
                    with span(
                        "opt.batch_score", pass_name="inverter_propagation"
                    ):
                        arr = case_kernel(batch_min_nodes())
                    if arr is None:
                        kernel_on = False
                    else:
                        case_gen = mig._generation
                        count = len(levels)
                        ids = np.fromiter(
                            levels.keys(), dtype=np.int64, count=count
                        )
                        lvls = np.fromiter(
                            levels.values(), dtype=np.int64, count=count
                        )
                        # Candidate superset: tracked gates the scalar
                        # loop could query (stale entries for detached
                        # nodes are harmless — never looked up).
                        keep = (
                            (lvls > 0)
                            & (lvls < len(c_per_level))
                            & (ids < len(arr))
                        )
                        cand = ids[keep]
                        if cases is not None:
                            cand = cand[np.isin(arr[cand], list(cases))]
                        view.counters.batch_score_calls += 1
                        view.counters.batch_candidates_scored += len(cand)
                        # Python lists beat per-element numpy indexing
                        # in the scalar walk below by ~5×.
                        case_arr = arr.tolist()
                        if len(cand):
                            with span(
                                "opt.batch_score", pass_name="invprop_scores"
                            ):
                                scores = mig.slab_invprop_scores(
                                    cand,
                                    levels,
                                    n_per_level,
                                    c_per_level,
                                    po_complements,
                                    k_r,
                                    steps_weight,
                                    rram_weight,
                                )
                            score_ok = scores["ok"].tolist()
                            score_cost = scores["cost"].tolist()
                            score_own = scores["c_own"].tolist()
                        else:
                            # Nothing passes the case filter, so the
                            # score rows are never read.
                            score_ok = score_cost = score_own = ()
            if kernel_on:
                case = case_arr[node] or None
            else:
                case = inverter_propagation_case(mig, node)
            if cases is not None and (case is None or case not in cases):
                continue
            level = levels.get(node)
            if level is None or level >= len(c_per_level):
                continue
            # Predict the new complement counts after flipping `node`.
            predicted = None
            if kernel_on:
                if not score_ok[node]:
                    continue
                new_cost = score_cost[node]
                c_own = score_own[node]
            else:
                predicted = predict_one(node, level)
                if predicted is None:
                    continue
                new_cost = steps_weight * total_l(predicted[0], predicted[1])
                new_cost += rram_weight * total_r(predicted[0])
                c_own = predicted[0][level]
            old_cost = steps_weight * total_l(c_per_level, po_complements)
            old_cost += rram_weight * total_r(c_per_level)
            if view is not None:
                view.counters.moves_tried += 1
            if new_cost > old_cost:
                continue
            if new_cost == old_cost:
                # Tie-break: prefer pushing complements upward (cases
                # 1/2 shrink the current level's complement population),
                # which is what creates follow-up opportunities
                # (Sec. III-D); refuse neutral case-3 churn.
                if case == 3 or case is None or c_own >= c_per_level[level]:
                    continue
            if predicted is None:
                # Batch path: materialize the exact histogram only for
                # the accepted move (bookkeeping below needs it).
                predicted = predict_one(node, level)
                if predicted is None:
                    continue
            new_c, new_po_c = predicted
            outcome = _apply_flip_tracked(mig, node, levels)
            if outcome is None:
                continue
            changed = True
            changed_any = True
            if view is not None:
                view.counters.moves_accepted += 1
            if outcome:
                c_per_level = new_c
                po_complements = new_po_c
            else:
                # Structural merge — recount everything.
                stats = _stats_of(mig, view)
                levels = stats.node_levels
                n_per_level = list(stats.nodes_per_level)
                c_per_level = list(stats.complements_per_level)
                po_complements = stats.po_complements
        if not changed:
            break
    return changed_any


def _level_clear_plan(
    mig: Mig, level: int, levels: Dict[int, int]
) -> Optional[Tuple[List[int], List[int]]]:
    """Plan the Ω.I flips that would rid ``level`` of complemented
    ingoing edges, or None when the level is structurally unclearable.

    Strategy per gate of the level: complemented gate-driven edges are
    cleared by flipping the *child* (moving the complement below);
    a gate whose complemented edges are all PI-driven can only be
    cleared by flipping itself, which requires every non-constant edge
    to be complemented.  Pure analysis — no mutation.
    """
    children_to_flip: List[int] = []
    nodes_to_flip: List[int] = []
    found = False
    for node in mig.reachable_nodes():
        if levels.get(node) != level:
            continue
        complemented = [
            s
            for s in mig.children(node)
            if signal_is_complemented(s) and signal_node(s) != 0
        ]
        if not complemented:
            continue
        found = True
        gate_children = [
            signal_node(s) for s in complemented if mig.is_gate(signal_node(s))
        ]
        non_const = sum(
            1 for s in mig.children(node) if signal_node(s) != 0
        )
        if len(gate_children) == len(complemented):
            children_to_flip.extend(gate_children)
        elif len(complemented) == non_const:
            nodes_to_flip.append(node)
        else:
            return None
    if not found:
        return None
    return (list(dict.fromkeys(children_to_flip)), nodes_to_flip)


def _try_clear_level(mig: Mig, level: int, levels: Dict[int, int]) -> bool:
    """Execute a level-clearing plan; see :func:`_level_clear_plan`."""
    plan = _level_clear_plan(mig, level, levels)
    if plan is None:
        return False
    children_to_flip, nodes_to_flip = plan
    for node in children_to_flip:
        if mig.is_gate(node):
            apply_inverter_propagation(mig, node)
    for node in nodes_to_flip:
        if mig.is_gate(node):
            apply_inverter_propagation(mig, node)
    return True


def _batch_collision_cache(
    mig: Mig,
    view: CostView,
    remaining: Sequence[Tuple[int, int]],
    node_level_map: Dict[int, int],
) -> Dict[Tuple[int, ...], bool]:
    """Strash-collision verdicts for every remaining level candidate.

    Recomputes each candidate's flip plan exactly as the main loop
    will (PO level inline, gate levels via :func:`_level_clear_plan`)
    and probes the whole batch in one vectorized strash pass
    (:meth:`CostView.batch_probe_flip_groups`).  Sound only at the
    round's compaction fixpoint, where the graph content — and hence
    every plan and every probe verdict — is invariant across rejected
    trials; an accepted candidate breaks the loop, so stale verdicts
    are never consumed.
    """
    plans: List[List[int]] = []
    for _count, level in remaining:
        if level == -1:
            flips: List[int] = []
            feasible = True
            for po in mig.pos:
                if signal_is_complemented(po) and signal_node(po) != 0:
                    driver = signal_node(po)
                    if not mig.is_gate(driver):
                        feasible = False
                        break
                    flips.append(driver)
            if not feasible or not flips:
                continue
            flips = list(dict.fromkeys(flips))
        else:
            plan = _level_clear_plan(mig, level, node_level_map)
            if plan is None:
                continue
            flips = plan[0] + plan[1]
        plans.append(flips)
    with span("opt.batch_score", pass_name="clear_levels_probe"):
        return view.batch_probe_flip_groups(plans)


@traced("pass.clear_complemented_levels")
def clear_complemented_levels(
    mig: Mig,
    realization: Realization,
    *,
    max_rounds: int = 16,
    view: Optional[CostView] = None,
) -> bool:
    """Greedy level-clearing: the objective of paper Sec. III-D made
    explicit.

    ``S = K_S·D + L`` counts *levels* with complemented edges, so a
    level is only worth cleaning if every one of its complemented edges
    goes away together.  Each candidate level (cheapest first) is
    attacked with a coordinated group of Ω.I flips; the attempt is
    committed only when the global step count strictly improves (RRAM
    count as tie-break), otherwise rolled back.

    With a :class:`CostView` attached, rejected candidates are scored
    with :meth:`CostView.predict_flip_group` instead of the
    apply/measure/rollback cycle that dominates the whole-set runtime.
    This is result-identical: the prediction is exact unless a strash
    collision is possible (then it falls back to the measured path),
    and the baseline's rollback renumbering — ``copy_from(snapshot)``
    lands on ``clone(clone(state))``, and cloning is *not* idempotent
    because renumbering re-sorts triples and thus reorders the next
    traversal — is reproduced verbatim by ``copy_from(clone())``; the
    trial flips themselves never touch the surviving arrays.
    """
    changed_any = False
    for _round in range(max_rounds):
        stats = _stats_of(mig, view)
        before = (
            stats.step_count(realization),
            stats.rram_count(realization),
        )
        candidates = sorted(
            (count, lvl)
            for lvl, count in enumerate(stats.complements_per_level)
            if count > 0
        )
        if stats.po_complements > 0:
            candidates.append((stats.po_complements, -1))
        improved = False
        node_level_map = stats.node_levels
        # The baseline's rejected-candidate state dance — ``snapshot =
        # clone(); <trial, discarded>; copy_from(snapshot)`` — lands on
        # ``clone(clone(state))``.  One clone is NOT enough (renumbering
        # re-sorts triples, which reorders the next traversal), but the
        # double clone is a fixpoint: ``clone`` is identity on its own
        # double image, so once a round has compacted, every further
        # rejected candidate maps the state back onto itself and the
        # clones can be skipped (tests cross-check this against a
        # reference clone-per-candidate implementation).
        at_fixpoint = False

        def reject_compact() -> None:
            nonlocal at_fixpoint
            if not at_fixpoint:
                mig.compact()
                at_fixpoint = True

        # Batched strash probing: once the round hits its compaction
        # fixpoint the graph content is pinned across rejected trials,
        # so the collision pre-check inside ``predict_flip_group`` can
        # be hoisted out and vectorized over all remaining candidates.
        collision_cache: Optional[Dict[Tuple[int, ...], bool]] = None
        batch_probes = (
            view is not None
            and batch_enabled()
            and stats.size >= batch_min_nodes()
        )
        for cand_index, (_count, level) in enumerate(candidates):
            if (
                batch_probes
                and at_fixpoint
                and collision_cache is None
                and len(candidates) - cand_index >= 2
            ):
                collision_cache = _batch_collision_cache(
                    mig, view, candidates[cand_index:], node_level_map
                )
            # Cheap structural feasibility check before paying for the
            # snapshot clone (and the exact flip plan for prediction).
            if level == -1:
                flips: List[int] = []
                feasible = True
                for po in mig.pos:
                    if signal_is_complemented(po) and signal_node(po) != 0:
                        driver = signal_node(po)
                        if not mig.is_gate(driver):
                            feasible = False
                            break
                        flips.append(driver)
                if not feasible or not flips:
                    # Baseline clones, fails inside _try_clear_po_level
                    # and rolls back without applying anything.
                    reject_compact()
                    continue
                flips = list(dict.fromkeys(flips))
            else:
                plan = _level_clear_plan(mig, level, node_level_map)
                if plan is None:
                    continue
                flips = plan[0] + plan[1]
            if view is not None:
                view.counters.moves_tried += 1
                collides = (
                    collision_cache.get(tuple(flips))
                    if collision_cache is not None
                    else None
                )
                predicted = view.predict_flip_group(
                    flips, realization, collides=collides
                )
                if predicted is not None:
                    if predicted < before:
                        for node in flips:
                            if mig.is_gate(node):
                                apply_inverter_propagation(mig, node)
                        view.counters.moves_accepted += 1
                        improved = True
                        changed_any = True
                        _record_trial(
                            mig, view, rule="clear_level", accepted=True
                        )
                        break
                    view.counters.predicted_skips += 1
                    reject_compact()
                    _record_trial(
                        mig, view, rule="clear_level", accepted=False
                    )
                    continue
            # Measured trial.  The transactional engine replaces the
            # whole-graph snapshot clone with an O(touched) undo
            # journal; a rejected trial rolls back and compacts, which
            # is bit-identical to the legacy ``copy_from(snapshot)``
            # (both land on ``clone(clone(pre-trial state))``, and
            # ``clone`` never reads the dicts whose insertion order a
            # rollback scrambles).
            if transactions_enabled():
                token = mig.checkpoint()
                snapshot = None
            else:
                token = None
                snapshot = mig.clone()
            if level == -1:
                ok = _try_clear_po_level(mig)
            else:
                ok = _try_clear_level(mig, level, node_level_map)
            if not ok:
                if token is not None:
                    mig.rollback(token)
                    mig.compact()
                else:
                    mig.copy_from(snapshot)
                at_fixpoint = True
                _record_trial(mig, view, rule="clear_level", accepted=False)
                continue
            after_costs = _costs_of(mig, realization, view)
            after = (after_costs.steps, after_costs.rrams)
            if after < before:
                if token is not None:
                    mig.commit(token)
                improved = True
                changed_any = True
                if view is not None:
                    view.counters.moves_accepted += 1
                _record_trial(mig, view, rule="clear_level", accepted=True)
                break
            if token is not None:
                mig.rollback(token)
                mig.compact()
            else:
                mig.copy_from(snapshot)
            at_fixpoint = True
            _record_trial(mig, view, rule="clear_level", accepted=False)
        if not improved:
            break
    return changed_any


def _try_clear_po_level(mig: Mig) -> bool:
    """Clear the virtual output level by flipping complemented-PO
    drivers (gate drivers only)."""
    drivers = []
    for po in mig.pos:
        if signal_is_complemented(po) and signal_node(po) != 0:
            node = signal_node(po)
            if not mig.is_gate(node):
                return False
            drivers.append(node)
    if not drivers:
        return False
    for node in dict.fromkeys(drivers):
        if mig.is_gate(node):
            apply_inverter_propagation(mig, node)
    return True


# ----------------------------------------------------------------------
# Optimization drivers (Algorithms 1–4)
# ----------------------------------------------------------------------
#
# Each driver iterates its cycle body up to `effort` times, tracking the
# best snapshot seen under the algorithm's objective, and finally rolls
# the graph back to that snapshot.  The paper's C++ implementation runs
# a fixed 40 cycles; the reshaping moves are non-monotone (they may
# wander uphill to escape local minima), so best-snapshot tracking is
# what makes the published "effort" loop well-behaved.


@traced("pass.relevance_sweep")
def _relevance_sweep(mig: Mig, view: Optional[CostView] = None) -> bool:
    """Apply Ψ.R across the critical paths (the middle step of Alg. 2)."""
    levels = _levels_of(mig, view)
    changed = False
    for node in _critical_nodes_from(mig, levels, view):
        if not mig.is_gate(node):
            continue
        if apply_relevance(mig, node, levels):
            changed = True
            levels = _levels_of(mig, view)
    return changed


def _drive(
    mig: Mig,
    algorithm: str,
    effort: int,
    cycle_body,
    objective,
    view: Optional[CostView] = None,
) -> OptimizationResult:
    """Shared driver: iterate, snapshot the best, roll back at the end.

    ``cycle_body(mig, cycle) -> bool`` runs one optimization cycle and
    reports whether anything changed; ``objective(mig)`` returns a
    comparable key (smaller is better).
    """
    initial_size, initial_depth = _size_depth(mig, view)
    best_key = objective(mig)
    # Best-snapshot tracking: the transactional engine keeps a
    # checkpoint open at the best state seen so far — improving cycles
    # commit it and open a fresh one (O(1)), worse cycles accumulate
    # undo records.  The legacy engine clones the whole graph at every
    # improvement.  Both finish identically: restoring the best state
    # renumbers via ``clone(clone(best))``, reproduced here by
    # rollback + compact.
    use_tx = transactions_enabled()
    best: Optional[Mig] = None
    token = mig.checkpoint() if use_tx else None
    if not use_tx:
        best = mig.clone()
    history: List[Tuple[int, int]] = []
    cycles = 0
    stale = 0
    with span(f"optimize.{algorithm}", effort=effort):
        for cycle in range(effort):
            cycles = cycle + 1
            with span(f"{algorithm}.cycle", cycle=cycle):
                changed = cycle_body(mig, cycle)
            history.append(_size_depth(mig, view))
            key = objective(mig)
            improved_cycle = key < best_key
            _record_trial(
                mig, view, rule=f"{algorithm}.cycle", accepted=improved_cycle
            )
            if improved_cycle:
                best_key = key
                if use_tx:
                    mig.commit(token)
                    token = mig.checkpoint()
                else:
                    best = mig.clone()
                stale = 0
            else:
                stale += 1
            if not changed or stale >= 3:
                break
        if objective(mig) > best_key:
            if use_tx:
                mig.rollback(token)
                mig.compact()
            else:
                mig.copy_from(best)
            _record_trial(
                mig, view, rule=f"{algorithm}.restore_best", accepted=True
            )
        elif use_tx:
            mig.commit(token)
    final_size, final_depth = _size_depth(mig, view)
    return OptimizationResult(
        algorithm=algorithm,
        cycles_run=cycles,
        initial_size=initial_size,
        initial_depth=initial_depth,
        final_size=final_size,
        final_depth=final_depth,
        history=history,
        profile=view.profile() if view is not None else None,
    )


def optimize_area(mig: Mig, effort: int = DEFAULT_EFFORT) -> OptimizationResult:
    """Paper Alg. 1: cycles of ``eliminate; Ω.A/Ψ.C reshape; eliminate``.

    Objective: MIG size (node count), depth as tie-break.
    """

    view = CostView(mig)

    def body(graph: Mig, cycle: int) -> bool:
        changed = eliminate(graph, view=view)
        changed |= reshape(graph, variant=cycle, view=view)
        changed |= eliminate(graph, view=view)
        return changed

    def objective(graph: Mig) -> Tuple[int, int]:
        size, depth = _size_depth(graph, view if graph is mig else None)
        return (size, depth)

    result = _drive(mig, "area", effort, body, objective, view)
    eliminate(mig, view=view)
    size, depth = _size_depth(mig, view)
    result.final_size, result.final_depth = size, depth
    result.profile = view.profile()
    return result


def optimize_depth(mig: Mig, effort: int = DEFAULT_EFFORT) -> OptimizationResult:
    """Paper Alg. 2: cycles of ``push-up; Ψ.R; push-up``.

    Objective: MIG depth, size as tie-break.
    """

    view = CostView(mig)

    def body(graph: Mig, cycle: int) -> bool:
        changed = push_up(graph, use_relevance=False, view=view)
        changed |= _relevance_sweep(graph, view)
        changed |= push_up(graph, use_relevance=False, view=view)
        return changed

    def objective(graph: Mig) -> Tuple[int, int]:
        size, depth = _size_depth(graph, view if graph is mig else None)
        return (depth, size)

    return _drive(mig, "depth", effort, body, objective, view)


def optimize_rram(
    mig: Mig,
    realization: Realization = Realization.MAJ,
    effort: int = DEFAULT_EFFORT,
    *,
    step_budget_factor: Optional[float] = None,
) -> OptimizationResult:
    """Paper Alg. 3 (proposed multi-objective RRAM-cost optimization):
    ``push-up; Ω.I_{R→L}(1–3); push-up; Ω.A + Ω.D_{R→L}`` per cycle.

    The bi-objective is realized as RRAM minimization under a step
    budget: a short step-oriented probe first establishes the
    achievable step count ``S*``, then the cycle loop explores with the
    lexicographic objective *(steps ≤ budget, RRAMs, steps)* where
    ``budget = step_budget_factor · S*``.  This reproduces the
    trade-off profile of the paper's Table II Σ row — versus the pure
    step optimizer, roughly 20 % fewer RRAMs for roughly 20–35 % more
    steps.

    The default budget factor is realization-aware: the MAJ realization
    (3 steps/level) can afford generous step slack for RRAM savings;
    under IMP (10 steps/level) steps dominate every other cost and the
    budget stays tight so the flow remains competitive with the
    conventional algorithms on S (the paper's Sec. IV-B claims).
    """
    if step_budget_factor is None:
        step_budget_factor = 1.45 if realization is Realization.MAJ else 1.05
    initial_size, initial_depth = _size_depth(mig)

    # Phase 1 — step-oriented probe (Alg. 3 also opens with push-up and
    # complement management; the probe is the same machinery run to a
    # reduced budget).
    probe = mig.clone()
    probe_result = optimize_steps(probe, realization, min(effort, 16))
    probe_costs = rram_costs(probe, realization)
    budget = int(probe_costs.steps * step_budget_factor) + 1

    view = CostView(mig)

    def objective(graph: Mig) -> Tuple[int, int, int]:
        costs = _costs_of(
            graph, realization, view if graph is mig else None
        )
        return (
            1 if costs.steps > budget else 0,
            costs.rrams,
            costs.steps,
        )

    if objective(probe) < objective(mig):
        mig.copy_from(probe)

    def body(graph: Mig, cycle: int) -> bool:
        changed = push_up(graph, use_relevance=False, view=view)
        changed |= inverter_propagation_pass(
            graph, realization, cases=(1, 2, 3), steps_weight=2,
            rram_weight=1, view=view,
        )
        changed |= clear_complemented_levels(graph, realization, view=view)
        changed |= push_up(graph, use_relevance=False, view=view)
        changed |= reshape(graph, variant=cycle, view=view)
        changed |= eliminate(graph, view=view)
        return changed

    result = _drive(mig, "rram", effort, body, objective, view)
    result.cycles_run += probe_result.cycles_run
    result.initial_size = initial_size
    result.initial_depth = initial_depth
    size, depth = _size_depth(mig, view)
    result.final_size, result.final_depth = size, depth
    result.profile = view.profile()
    if probe_result.profile:
        for key, value in probe_result.profile.items():
            result.profile[key] = result.profile.get(key, 0) + value
    return result


def optimize_steps(
    mig: Mig,
    realization: Realization = Realization.MAJ,
    effort: int = DEFAULT_EFFORT,
) -> OptimizationResult:
    """Paper Alg. 4 (proposed step optimization):
    ``push-up; Ω.I_{R→L}; Ω.I_{R→L}(1–3); push-up`` per cycle.

    Objective: the realization's step count ``S = K_S·D + L``, RRAM
    count as tie-break.
    """

    view = CostView(mig)

    def body(graph: Mig, cycle: int) -> bool:
        changed = push_up(graph, use_relevance=False, view=view)
        changed |= inverter_propagation_pass(
            graph, realization, cases=None, steps_weight=8, rram_weight=1,
            view=view,
        )
        changed |= inverter_propagation_pass(
            graph, realization, cases=(1, 2, 3), steps_weight=8,
            rram_weight=1, view=view,
        )
        changed |= clear_complemented_levels(graph, realization, view=view)
        changed |= push_up(graph, use_relevance=False, view=view)
        return changed

    def objective(graph: Mig) -> Tuple[int, int]:
        costs = _costs_of(
            graph, realization, view if graph is mig else None
        )
        return (costs.steps, costs.rrams)

    result = _drive(mig, "steps", effort, body, objective, view)
    before = objective(mig)
    if transactions_enabled():
        token = mig.checkpoint()
        push_up(mig, use_relevance=True, view=view)
        if objective(mig) > before:
            mig.rollback(token)
            mig.compact()
        else:
            mig.commit(token)
    else:
        snapshot = mig.clone()
        push_up(mig, use_relevance=True, view=view)
        if objective(mig) > before:
            mig.copy_from(snapshot)
    size, depth = _size_depth(mig, view)
    result.final_size, result.final_depth = size, depth
    result.profile = view.profile()
    return result


ALGORITHMS = {
    "area": optimize_area,
    "depth": optimize_depth,
    "rram": optimize_rram,
    "steps": optimize_steps,
}
