"""Equivalence checking utilities.

Optimization must never change function; every algorithm in this
library is checked with these helpers.  Small circuits (≤ 14 inputs by
default) are compared exhaustively via bit-parallel truth tables;
larger ones with a seeded batch of random simulation vectors (a
pragmatic miter — adequate here because every individual rewrite step
is axiom-derived and already function-preserving by construction).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim import random_slices
from ..truth import TruthTable
from .graph import Mig

EXHAUSTIVE_LIMIT = 14
DEFAULT_RANDOM_VECTORS = 2048


def mig_truth_tables(mig: Mig) -> List[TruthTable]:
    """Alias of :meth:`Mig.truth_tables` for symmetric naming."""
    return mig.truth_tables()


def _random_words(
    num_inputs: int, num_vectors: int, seed: int
) -> List[int]:
    # Shared packed-sampling primitive: byte-for-byte the historical
    # getrandbits-per-input pattern, so recorded verdicts never shift.
    return random_slices(num_inputs, num_vectors, seed)


def migs_equivalent(
    first: Mig,
    second: Mig,
    *,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    num_vectors: int = DEFAULT_RANDOM_VECTORS,
    seed: int = 0xD47E,
) -> bool:
    """Check two MIGs compute the same outputs (same PI/PO order)."""
    if first.num_pis != second.num_pis or first.num_pos != second.num_pos:
        return False
    num_inputs = first.num_pis
    if num_inputs <= exhaustive_limit:
        return first.truth_tables() == second.truth_tables()
    mask = (1 << num_vectors) - 1
    words = _random_words(num_inputs, num_vectors, seed)
    return first.simulate_words(words, mask) == second.simulate_words(words, mask)


def mig_matches_tables(
    mig: Mig, tables: Sequence[TruthTable]
) -> bool:
    """Check an MIG against reference truth tables (exhaustive)."""
    if mig.num_pos != len(tables):
        return False
    return mig.truth_tables() == list(tables)


def mig_matches_netlist(
    mig: Mig,
    netlist,
    *,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    num_vectors: int = DEFAULT_RANDOM_VECTORS,
    seed: int = 0xD47E,
) -> bool:
    """Check an MIG against the netlist it was lowered from.

    Inputs/outputs are matched positionally (the ``mig_from_netlist``
    contract).  Exhaustive below ``exhaustive_limit`` inputs, seeded
    random words above — the same miter discipline as
    :func:`migs_equivalent`, used by the fuzzing oracle on generated
    circuits too large to enumerate.
    """
    if mig.num_pis != len(netlist.inputs):
        return False
    if mig.num_pos != len(netlist.outputs):
        return False
    if mig.num_pis <= exhaustive_limit:
        return mig.truth_tables() == netlist.truth_tables()
    words = _random_words(mig.num_pis, num_vectors, seed)
    mask = (1 << num_vectors) - 1
    mig_out = mig.simulate_words(words, mask)
    net_out = netlist.simulate_words(
        {name: word for name, word in zip(netlist.inputs, words)}, mask
    )
    return mig_out == [net_out[name] for name in netlist.outputs]


class EquivalenceGuard:
    """Snapshot-and-verify wrapper used by tests and the safe optimizer.

    Records the reference behaviour of an MIG at construction; a later
    :meth:`verify` call checks the (mutated) MIG still matches.
    """

    def __init__(
        self,
        mig: Mig,
        *,
        exhaustive_limit: int = EXHAUSTIVE_LIMIT,
        num_vectors: int = DEFAULT_RANDOM_VECTORS,
        seed: int = 0xD47E,
    ) -> None:
        self._mig = mig
        self._num_inputs = mig.num_pis
        self._exhaustive = self._num_inputs <= exhaustive_limit
        if self._exhaustive:
            self._reference: object = mig.truth_tables()
            self._words: Optional[List[int]] = None
            self._mask = 0
        else:
            self._words = _random_words(self._num_inputs, num_vectors, seed)
            self._mask = (1 << num_vectors) - 1
            self._reference = mig.simulate_words(self._words, self._mask)

    def verify(self) -> bool:
        """True iff the guarded MIG still matches its recorded behaviour."""
        if self._exhaustive:
            return self._mig.truth_tables() == self._reference
        assert self._words is not None
        return (
            self._mig.simulate_words(self._words, self._mask) == self._reference
        )

    def verify_or_raise(self) -> None:
        """Raise ``AssertionError`` when the function changed."""
        if not self.verify():
            raise AssertionError(
                f"MIG {self._mig.name!r} no longer matches its reference function"
            )
