"""Constructing MIGs from other representations and exporting them.

Lowering rules follow the MIG literature [13]:
``AND(a,b) = M(a,b,0)``, ``OR(a,b) = M(a,b,1)``, n-ary gates decompose
into balanced trees (minimizing depth, which matters because the step
count ``S`` of the paper's cost model is depth-dominated), XOR uses the
3-node ``AND(OR(a,b), NAND(a,b))`` form, and MAJ maps natively.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..network import GateType, Netlist, NetlistError
from ..truth import TruthTable
from .graph import CONST0, CONST1, Mig, Signal, signal_not


def _balanced_reduce(
    signals: Sequence[Signal], combine: Callable[[Signal, Signal], Signal]
) -> Signal:
    """Combine signals pairwise into a balanced (minimum-depth) tree."""
    work = list(signals)
    if not work:
        raise ValueError("cannot reduce an empty operand list")
    while len(work) > 1:
        next_layer = [
            combine(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)
        ]
        if len(work) % 2:
            next_layer.append(work[-1])
        work = next_layer
    return work[0]


def mig_from_netlist(netlist: Netlist) -> Mig:
    """Lower a gate-level netlist into a fresh MIG."""
    netlist.validate()
    mig = Mig(netlist.name)
    values: Dict[str, Signal] = {}
    for name in netlist.inputs:
        values[name] = mig.add_pi(name)

    for gate in netlist.topological_order():
        operands = [values[op] for op in gate.operands]
        gate_type = gate.gate_type
        if gate_type is GateType.CONST0:
            signal = CONST0
        elif gate_type is GateType.CONST1:
            signal = CONST1
        elif gate_type is GateType.BUF:
            signal = operands[0]
        elif gate_type is GateType.NOT:
            signal = signal_not(operands[0])
        elif gate_type in (GateType.AND, GateType.NAND):
            signal = _balanced_reduce(operands, mig.make_and)
            if gate_type is GateType.NAND:
                signal = signal_not(signal)
        elif gate_type in (GateType.OR, GateType.NOR):
            signal = _balanced_reduce(operands, mig.make_or)
            if gate_type is GateType.NOR:
                signal = signal_not(signal)
        elif gate_type in (GateType.XOR, GateType.XNOR):
            signal = _balanced_reduce(operands, mig.make_xor)
            if gate_type is GateType.XNOR:
                signal = signal_not(signal)
        elif gate_type is GateType.MAJ:
            signal = mig.make_maj(*operands)
        elif gate_type is GateType.MUX:
            signal = mig.make_mux(*operands)
        else:
            raise NetlistError(f"cannot lower gate type {gate_type}")
        values[gate.name] = signal

    for name in netlist.outputs:
        mig.add_po(values[name], name)
    return mig


def mig_from_truth_tables(
    tables: Sequence[TruthTable], name: str = "mig"
) -> Mig:
    """Synthesize an MIG by recursive Shannon decomposition.

    Cofactor tables are memoized across outputs, so shared logic is
    discovered automatically.  Suitable for the exactly-specified
    benchmark functions (≤ ~16 inputs).
    """
    if not tables:
        raise ValueError("need at least one output table")
    num_vars = tables[0].num_vars
    if any(t.num_vars != num_vars for t in tables):
        raise ValueError("all output tables must share the variable count")

    mig = Mig(name)
    pi_signals = [mig.add_pi() for _ in range(num_vars)]
    memo: Dict[TruthTable, Signal] = {}

    def build(table: TruthTable, var: int) -> Signal:
        known = memo.get(table)
        if known is not None:
            return known
        complement = memo.get(~table)
        if complement is not None:
            return signal_not(complement)
        if table.bits == 0:
            return CONST0
        if (~table).bits == 0:
            return CONST1
        # Find the highest variable the function still depends on.
        while var >= 0 and not table.depends_on(var):
            var -= 1
        assert var >= 0, "non-constant table must depend on something"
        hi = build(table.cofactor(var, True), var - 1)
        lo = build(table.cofactor(var, False), var - 1)
        if hi == signal_not(lo):
            # f = x ? !lo : lo  ==  x XOR lo
            signal = mig.make_xor(pi_signals[var], lo)
        else:
            signal = mig.make_mux(pi_signals[var], hi, lo)
        memo[table] = signal
        return signal

    for index, table in enumerate(tables):
        mig.add_po(build(table, num_vars - 1), f"f{index}")
    return mig


def mig_to_netlist(mig: Mig) -> Netlist:
    """Export an MIG as a MAJ/NOT netlist (round-trippable to .bench)."""
    netlist = Netlist(mig.name)
    names: Dict[int, str] = {}
    for node, name in zip(mig.pis, mig.pi_names):
        netlist.add_input(name)
        names[node] = name

    const_needed = any(
        s >> 1 == 0 for node in mig.reachable_nodes() for s in mig.children(node)
    ) or any(po >> 1 == 0 for po in mig.pos)
    if const_needed:
        netlist.add_gate("__const0", GateType.CONST0, [])
        names[0] = "__const0"

    inverters: Dict[str, str] = {}

    def net_of(signal: Signal) -> str:
        base = names[signal >> 1]
        if not signal & 1:
            return base
        if base not in inverters:
            inv = f"__{base}_n"
            netlist.add_gate(inv, GateType.NOT, [base])
            inverters[base] = inv
        return inverters[base]

    for node in mig.reachable_nodes():
        gate_name = f"n{node}"
        operands = [net_of(s) for s in mig.children(node)]
        netlist.add_gate(gate_name, GateType.MAJ, operands)
        names[node] = gate_name

    used: Dict[str, int] = {}
    for po, po_name in zip(mig.pos, mig.po_names):
        net = net_of(po)
        # Outputs must be distinct nets for formats like .bench; add
        # buffers when several POs share a driver.
        if net in used or po_name != net:
            buf_name = po_name if po_name not in names.values() else f"__{po_name}"
            if netlist.has_net(buf_name):
                buf_name = f"__{po_name}_{used.get(net, 0)}"
            netlist.add_gate(buf_name, GateType.BUF, [net])
            net = buf_name
        used[net] = used.get(net, 0) + 1
        netlist.set_output(net)
    netlist.validate()
    return netlist
