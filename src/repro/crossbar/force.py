"""Force-directed placement refinement (Fruchterman–Reingold).

The greedy placer is oblivious to *which* blocks talk to each other:
it packs the compiler's emission order.  This pass treats each layout
block as a node of a communication graph — an edge for every op whose
sensed device and written device live in different blocks, weighted by
how often the pair communicates — and runs a deterministic
Fruchterman–Reingold spring embedding (attraction ``d²/k`` along
edges, repulsion ``k²/d`` between all pairs, linearly cooling
displacement cap).  The resulting coordinates are *not* a legal
placement; legalization re-runs the greedy placer with the blocks
re-sorted by their refined ``(y, x)`` positions, so communicating
blocks land on nearby rows.

Everything is deterministic: initial positions come from the greedy
placement's block centroids, coincident nodes are separated by an
index-based epsilon, and there is no randomness anywhere — repeated
runs give byte-identical placements.

The refinement is advisory: :func:`repro.crossbar.mapping.map_program`
keeps whichever placement (greedy or refined) schedules to fewer
parallel cycles, breaking ties on wirelength.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..rram.isa import LayoutBlock, Program, op_sensed
from .model import CrossbarModel, MappingError
from .place import place_greedy

#: Beyond this many blocks the O(n²) repulsion sweep is not worth it.
MAX_REFINE_BLOCKS = 600

#: Cooling schedule length; enough for the small graphs we refine.
ITERATIONS = 60


def _block_of_device(blocks: Sequence[LayoutBlock]) -> Dict[int, int]:
    """First block claiming each device (recycling → first wins)."""
    owner: Dict[int, int] = {}
    for block_index, block in enumerate(blocks):
        for device in block.devices:
            owner.setdefault(device, block_index)
    return owner


def _communication_edges(
    program: Program, owner: Mapping[int, int]
) -> Dict[Tuple[int, int], int]:
    """Inter-block edge weights: one count per op crossing blocks."""
    edges: Dict[Tuple[int, int], int] = {}
    for step in program.steps:
        for op in step.ops:
            dst_block = owner.get(op.dst)
            if dst_block is None:
                continue
            for device in op_sensed(op):
                src_block = owner.get(device)
                if src_block is None or src_block == dst_block:
                    continue
                key = (min(src_block, dst_block), max(src_block, dst_block))
                edges[key] = edges.get(key, 0) + 1
    return edges


def _centroids(
    blocks: Sequence[LayoutBlock],
    cells: Mapping[int, Tuple[int, int]],
    owner: Mapping[int, int],
) -> List[Tuple[float, float]]:
    """Initial node positions: centroid of each block's placed cells."""
    positions: List[Tuple[float, float]] = []
    for block_index, block in enumerate(blocks):
        rows: List[int] = []
        cols: List[int] = []
        for device in block.devices:
            if owner.get(device) != block_index:
                continue
            row, col = cells[device]
            rows.append(row)
            cols.append(col)
        if rows:
            positions.append(
                (sum(rows) / len(rows), sum(cols) / len(cols))
            )
        else:  # every device recycled from an earlier block
            positions.append((float(block_index), 0.0))
    return positions


def fruchterman_reingold(
    positions: List[Tuple[float, float]],
    edges: Mapping[Tuple[int, int], int],
    width: float,
    height: float,
    iterations: int = ITERATIONS,
) -> List[Tuple[float, float]]:
    """Deterministic FR layout in a ``width × height`` frame."""
    count = len(positions)
    if count <= 1:
        return list(positions)
    area = max(width * height, 1.0)
    k = math.sqrt(area / count)
    pos = [list(p) for p in positions]
    temperature = max(width, height) / 8.0
    cooling = temperature / (iterations + 1)
    for _ in range(iterations):
        disp = [[0.0, 0.0] for _ in range(count)]
        for i in range(count):
            yi, xi = pos[i]
            for j in range(i + 1, count):
                dy = yi - pos[j][0]
                dx = xi - pos[j][1]
                dist = math.hypot(dy, dx)
                if dist < 1e-9:
                    # Deterministic separation of coincident nodes.
                    dy, dx = 1e-3 * (i - j), 1e-3
                    dist = math.hypot(dy, dx)
                force = (k * k) / dist
                disp[i][0] += (dy / dist) * force
                disp[i][1] += (dx / dist) * force
                disp[j][0] -= (dy / dist) * force
                disp[j][1] -= (dx / dist) * force
        for (i, j), weight in sorted(edges.items()):
            dy = pos[i][0] - pos[j][0]
            dx = pos[i][1] - pos[j][1]
            dist = math.hypot(dy, dx)
            if dist < 1e-9:
                continue
            force = weight * dist * dist / k
            disp[i][0] -= (dy / dist) * force
            disp[i][1] -= (dx / dist) * force
            disp[j][0] += (dy / dist) * force
            disp[j][1] += (dx / dist) * force
        for i in range(count):
            dy, dx = disp[i]
            magnitude = math.hypot(dy, dx)
            if magnitude > 1e-9:
                step = min(magnitude, temperature)
                pos[i][0] += (dy / magnitude) * step
                pos[i][1] += (dx / magnitude) * step
            pos[i][0] = min(max(pos[i][0], 0.0), height - 1.0)
            pos[i][1] = min(max(pos[i][1], 0.0), width - 1.0)
        temperature = max(temperature - cooling, 1e-3)
    return [(y, x) for y, x in pos]


def refine_placement(
    program: Program,
    model: CrossbarModel,
    cells: Mapping[int, Tuple[int, int]],
) -> Optional[Dict[int, Tuple[int, int]]]:
    """One refine-and-legalize pass; ``None`` when skipped or illegal.

    Embeds the block graph with :func:`fruchterman_reingold`, re-sorts
    the blocks by refined position, and legalizes by re-running the
    greedy placer on the new order.  The caller decides whether the
    result actually improves on the input placement.
    """
    blocks = list(program.blocks)
    if not blocks or len(blocks) > MAX_REFINE_BLOCKS:
        return None
    owner = _block_of_device(blocks)
    edges = _communication_edges(program, owner)
    if not edges:
        return None
    refined = fruchterman_reingold(
        _centroids(blocks, cells, owner),
        edges,
        float(model.width),
        float(model.height),
    )
    reordered = [
        block
        for _, block in sorted(
            zip(refined, blocks), key=lambda pair: (pair[0], pair[1].label)
        )
    ]
    try:
        return place_greedy(program, model, reordered)
    except MappingError:
        return None
