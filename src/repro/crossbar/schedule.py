"""Row-parallel rescheduling of a placed sequential program.

Regroups a :class:`~repro.rram.isa.Program`'s sequential steps into
:class:`~repro.rram.isa.ParallelStep` cycles (HIPE-MAGIC-style): ops
from different sequential steps execute in the same crossbar cycle
whenever data dependencies and the wordline sense-path rule allow.

Algorithm — bundle-based ASAP list scheduling:

1. Within each sequential step, ops are unioned into **bundles**: two
   ops join when they sense a common device (so one sense-flip fault
   site stays a single parallel-step site) or when one senses a device
   the other writes (so the pre-step-snapshot semantics of the original
   step are preserved without cross-bundle ordering constraints).
2. Bundles are visited in sequential order and dropped at the earliest
   parallel cycle that satisfies (a) reads-after-writes strictly later,
   writes-after-reads same-cycle-or-later, writes-after-writes strictly
   later; (b) write-once per cycle; (c) exclusive sensed-device
   ownership — no two bundles ever sense the same device in one cycle,
   which keeps fault remapping exact; (d) the sense-path row rule,
   checked incrementally.
3. Empty cycles are compacted away.

**Never worse than S** (given a placement under which every sequential
step is row-legal — the placer's invariant): by induction, the bundle
of sequential step ``si`` lands at cycle index ≤ ``si``.  All its
dependencies come from steps < ``si``, hence (inductively) from cycles
≤ ``si − 1``, so its ready cycle is ≤ ``si``; and cycle ``si`` can
only hold bundles of step ``si`` itself, whose ops are co-legal by
construction (the row rule is monotone under subsets, bundles of one
step share no sensed devices, and write-once held sequentially).  So
the scan always succeeds by cycle ``si``, and compaction only shrinks
the count further.  Typically it *beats* S: literal/input loads have
no dependencies and float to the earliest cycles, complement-inversion
steps overlap neighbouring levels' compute cycles, and the emptied
cycles vanish.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..rram.isa import (
    MicroOp,
    ParallelStep,
    Program,
    Step,
    op_depends,
    op_sensed,
)
from .model import row_rule_ok

#: (sequential step index, op index) — an op's identity in the source.
OpSite = Tuple[int, int]


class _Cycle:
    """Mutable state of one parallel cycle under construction."""

    __slots__ = ("ops", "sources", "written", "sense_owner", "row_claims")

    def __init__(self) -> None:
        self.ops: List[MicroOp] = []
        self.sources: List[OpSite] = []
        self.written: Set[int] = set()
        #: sensed device → owning bundle uid (exclusive per cycle).
        self.sense_owner: Dict[int, int] = {}
        #: row → (sensing op uids, sensed devices) for the row rule.
        self.row_claims: Dict[int, Tuple[Set[OpSite], Set[int]]] = {}


def _step_bundles(step: Step) -> List[List[int]]:
    """Partition a step's op indices into scheduling bundles."""
    count = len(step.ops)
    parent = list(range(count))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(first: int, second: int) -> None:
        root_a, root_b = find(first), find(second)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)

    writer: Dict[int, int] = {
        op.dst: op_index for op_index, op in enumerate(step.ops)
    }
    first_senser: Dict[int, int] = {}
    for op_index, op in enumerate(step.ops):
        for device in op_sensed(op):
            if device in first_senser:
                union(op_index, first_senser[device])
            else:
                first_senser[device] = op_index
            if device in writer:
                union(op_index, writer[device])

    grouped: Dict[int, List[int]] = {}
    for op_index in range(count):
        grouped.setdefault(find(op_index), []).append(op_index)
    return [grouped[root] for root in sorted(grouped)]


def _bundle_fits(
    cycle: _Cycle,
    ops: List[MicroOp],
    uids: List[OpSite],
    sensed: Set[int],
    row_of: Mapping[int, int],
) -> bool:
    if any(op.dst in cycle.written for op in ops):
        return False
    if any(device in cycle.sense_owner for device in sensed):
        return False
    staged: Dict[int, Tuple[Set[OpSite], Set[int]]] = {}
    for op, uid in zip(ops, uids):
        for device in op_sensed(op):
            row = row_of[device]
            claim = staged.get(row)
            if claim is None:
                existing = cycle.row_claims.get(row)
                claim = (
                    (set(existing[0]), set(existing[1]))
                    if existing is not None
                    else (set(), set())
                )
                staged[row] = claim
            claim[0].add(uid)
            claim[1].add(device)
    for claim_ops, claim_devices in staged.values():
        if not row_rule_ok(len(claim_ops), len(claim_devices)):
            return False
    return True


def schedule_rows(
    program: Program, cells: Mapping[int, Tuple[int, int]]
) -> Tuple[
    List[ParallelStep],
    Dict[OpSite, OpSite],
    Dict[Tuple[int, int], int],
]:
    """Build the row-parallel schedule for a placed program.

    Returns ``(steps, op_map, sense_map)`` — the provenance maps a
    :class:`~repro.rram.isa.PlacedProgram` carries (see its docstring).
    The sequential program must be row-legal under ``cells``; the
    internal bound assertion trips otherwise.
    """
    row_of = {device: cell[0] for device, cell in cells.items()}
    cycles: List[_Cycle] = [_Cycle() for _ in program.steps]
    last_write: Dict[int, int] = {}
    last_read: Dict[int, int] = {}
    op_map_raw: Dict[OpSite, Tuple[int, int]] = {}
    sense_map_raw: Dict[Tuple[int, int], int] = {}
    bundle_uid = 0

    for seq_index, step in enumerate(program.steps):
        for bundle in _step_bundles(step):
            ops = [step.ops[op_index] for op_index in bundle]
            uids = [(seq_index, op_index) for op_index in bundle]
            sensed: Set[int] = set()
            ready = 0
            for op in ops:
                for device in op_depends(op):
                    ready = max(ready, last_write.get(device, -1) + 1)
                sensed.update(op_sensed(op))
                ready = max(
                    ready,
                    last_write.get(op.dst, -1) + 1,
                    last_read.get(op.dst, -1),
                )
            target: Optional[int] = None
            for cycle_index in range(ready, seq_index + 1):
                if _bundle_fits(
                    cycles[cycle_index], ops, uids, sensed, row_of
                ):
                    target = cycle_index
                    break
            if target is None:  # pragma: no cover - contradicts the proof
                raise AssertionError(
                    f"scheduler exceeded the sequential bound at step "
                    f"{seq_index}; is the placement row-legal?"
                )
            cycle = cycles[target]
            for op, uid in zip(ops, uids):
                op_map_raw[uid] = (target, len(cycle.ops))
                cycle.ops.append(op)
                cycle.sources.append(uid)
                cycle.written.add(op.dst)
                last_write[op.dst] = max(
                    last_write.get(op.dst, -1), target
                )
                for device in op_depends(op):
                    last_read[device] = max(
                        last_read.get(device, -1), target
                    )
                for device in op_sensed(op):
                    row = row_of[device]
                    claim = cycle.row_claims.setdefault(
                        row, (set(), set())
                    )
                    claim[0].add(uid)
                    claim[1].add(device)
            for device in sensed:
                cycle.sense_owner[device] = bundle_uid
                sense_map_raw[(seq_index, device)] = target
            bundle_uid += 1

    # Compact empty cycles and renumber the provenance maps.
    remap: Dict[int, int] = {}
    steps: List[ParallelStep] = []
    for cycle_index, cycle in enumerate(cycles):
        if not cycle.ops:
            continue
        remap[cycle_index] = len(steps)
        steps.append(
            ParallelStep(
                ops=cycle.ops,
                label=f"par-{len(steps)}",
                sources=cycle.sources,
            )
        )
    op_map = {
        site: (remap[cycle_index], op_index)
        for site, (cycle_index, op_index) in op_map_raw.items()
    }
    sense_map = {
        site: remap[cycle_index]
        for site, cycle_index in sense_map_raw.items()
    }
    return steps, op_map, sense_map
