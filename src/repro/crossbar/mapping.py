"""The crossbar mapping facade: place, refine, schedule, audit.

:func:`map_program` is the one entry point the CLI, flows, fuzz
oracle, and tests use.  It turns a compiled sequential
:class:`~repro.rram.isa.Program` into a fully audited
:class:`~repro.rram.isa.PlacedProgram`:

1. **fit** — with explicit ``width``/``height`` the array is fixed
   (and :class:`~repro.crossbar.model.MappingError` propagates when the
   program does not fit); otherwise a near-square array is auto-fitted,
   growing the wordline count geometrically until placement succeeds
   (``height == num_devices`` is a guaranteed terminal: one device per
   wordline trivially satisfies the sense-path rule);
2. **place** — greedy level-packing (:mod:`repro.crossbar.place`);
3. **refine** — optional deterministic force-directed pass
   (:mod:`repro.crossbar.force`), kept only when it schedules to
   strictly fewer parallel cycles, or equal cycles with lower
   wirelength;
4. **schedule** — bundle ASAP regrouping (:mod:`repro.crossbar.schedule`);
5. **audit** — :func:`repro.crossbar.model.check_placed` re-verifies
   placement, provenance, and sense-path legality from scratch before
   the result is released.

Telemetry: spans ``crossbar.map`` / ``crossbar.place`` /
``crossbar.refine`` / ``crossbar.schedule``; counter
``crossbar.mapped_programs``; histograms ``crossbar.parallel_steps``,
``crossbar.step_ratio``, ``crossbar.utilization``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..rram.isa import PlacedProgram, Program
from ..telemetry import metrics, span, traced
from .force import MAX_REFINE_BLOCKS, refine_placement
from .model import CrossbarModel, MappingError, check_placed, wirelength
from .place import place_greedy
from .schedule import schedule_rows


def fit_array(program: Program) -> CrossbarModel:
    """A near-square starting array for auto-fit.

    Wide enough for the widest layout block (so gadgets can stay on
    one wordline) and for a square-ish aspect ratio.
    """
    count = max(1, program.num_devices)
    widest_block = max(
        (len(set(block.devices)) for block in program.blocks), default=1
    )
    width = max(widest_block, math.ceil(math.sqrt(count)), 1)
    height = max(1, math.ceil(count / width))
    return CrossbarModel(width, height)


@traced("crossbar.map")
def map_program(
    program: Program,
    width: Optional[int] = None,
    height: Optional[int] = None,
    *,
    refine: Optional[bool] = None,
) -> PlacedProgram:
    """Map a compiled program onto a crossbar; see the module docstring.

    ``refine=None`` (auto) refines exactly when the force-directed
    pass is tractable (≤ :data:`~repro.crossbar.force.MAX_REFINE_BLOCKS`
    blocks); ``True``/``False`` force it on or off.
    """
    if (width is None) != (height is None):
        raise MappingError(
            "specify both width and height, or neither for auto-fit"
        )
    fixed = width is not None and height is not None

    if fixed:
        model = CrossbarModel(width, height)
        with span("crossbar.place", array=str(model)):
            cells = place_greedy(program, model)
    else:
        model = fit_array(program)
        cells = None
        while cells is None:
            try:
                with span("crossbar.place", array=str(model)):
                    cells = place_greedy(program, model)
            except MappingError:
                if model.height >= program.num_devices:
                    raise  # pragma: no cover - one-device-per-row is legal
                grown = min(
                    max(math.ceil(model.height * 1.3), model.height + 1),
                    max(1, program.num_devices),
                )
                model = CrossbarModel(model.width, grown)

    do_refine = refine if refine is not None else (
        len(program.blocks) <= MAX_REFINE_BLOCKS
    )
    with span("crossbar.schedule", array=str(model)):
        steps, op_map, sense_map = schedule_rows(program, cells)
    if do_refine:
        with span("crossbar.refine", array=str(model)):
            refined_cells = refine_placement(program, model, cells)
            if refined_cells is not None:
                refined_schedule = schedule_rows(program, refined_cells)
                better = len(refined_schedule[0]) < len(steps) or (
                    len(refined_schedule[0]) == len(steps)
                    and wirelength(program, refined_cells)
                    < wirelength(program, cells)
                )
                if better:
                    cells = refined_cells
                    steps, op_map, sense_map = refined_schedule

    placed = PlacedProgram(
        program=program,
        width=model.width,
        height=model.height,
        cells=dict(cells),
        steps=steps,
        op_map=op_map,
        sense_map=sense_map,
    )
    check_placed(placed)

    registry = metrics()
    registry.counter("crossbar.mapped_programs").inc()
    registry.histogram("crossbar.parallel_steps").observe(
        placed.num_parallel_steps
    )
    registry.histogram("crossbar.step_ratio").observe(
        round(placed.step_ratio, 4)
    )
    registry.histogram("crossbar.utilization").observe(
        round(placed.utilization, 4)
    )
    return placed
