"""W×H 1T1R crossbar array model and the sense-path conflict rule.

The paper's cost model treats the RRAM fabric as a bag of R devices;
this module pins it to geometry: a ``width × height`` 1T1R array where
each device occupies one ``(row, col)`` cell, rows share a wordline,
and columns share a bitline.  Execution is still step-wise simultaneous
(see :class:`repro.rram.isa.Step`), but a *parallel* step now has a
physical constraint:

**Sense-path rule.**  Each wordline has a single sense path.  Within
one step, for every row ``r``, let ``S`` be the ops sensing at least
one device placed on ``r`` and ``D`` the set of devices on ``r`` they
sense.  The step is legal on ``r`` iff ``|S| ≤ 1`` or ``|D| == 1``:
either one op owns the row's sense path (it may sense several of the
row's devices — a multi-bitline read), or all sensing ops observe the
same single device (a broadcast of one sensed value).  Writes never
conflict on rows — every cell has its own access transistor — so only
sensing is constrained.

Note the rule is over *sensed* devices (:func:`repro.rram.isa.op_sensed`),
not data dependencies: ``Imp``/``IntrinsicMaj`` read-modify-write their
``dst`` through the device's own switching physics, which does not
occupy the wordline sense path.

The rule is monotone under op subsets (any subset of a legal step is
legal), which is what lets the scheduler regroup a row-legal sequential
program without ever exceeding its step count — see
``docs/MAPPING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..rram.isa import MicroOp, PlacedProgram, Program, op_sensed


class MappingError(RuntimeError):
    """Raised when a program cannot be mapped onto the given array."""


@dataclass(frozen=True)
class CrossbarModel:
    """A ``width × height`` 1T1R array (columns × wordlines)."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise MappingError(
                f"array dimensions must be positive, got "
                f"{self.width}x{self.height}"
            )

    @property
    def num_cells(self) -> int:
        return self.width * self.height

    def fits(self, num_devices: int) -> bool:
        """Capacity check only; legality needs a placement attempt."""
        return num_devices <= self.num_cells

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.width}x{self.height}"


def row_rule_ok(num_sensing_ops: int, num_sensed_devices: int) -> bool:
    """The sense-path rule for one (row, step) pair."""
    return num_sensing_ops <= 1 or num_sensed_devices == 1


def step_row_violation(
    ops: Sequence[MicroOp], row_of: Mapping[int, int]
) -> Optional[str]:
    """First sense-path violation of one step, or ``None`` if legal."""
    per_row: Dict[int, Tuple[Set[int], Set[int]]] = {}
    for op_index, op in enumerate(ops):
        for device in op_sensed(op):
            row = row_of[device]
            claim = per_row.setdefault(row, (set(), set()))
            claim[0].add(op_index)
            claim[1].add(device)
    for row in sorted(per_row):
        sensing_ops, devices = per_row[row]
        if not row_rule_ok(len(sensing_ops), len(devices)):
            return (
                f"row {row}: {len(sensing_ops)} ops contend for the "
                f"sense path over devices {sorted(devices)}"
            )
    return None


def check_placement(
    program: Program,
    model: CrossbarModel,
    cells: Mapping[int, Tuple[int, int]],
) -> None:
    """Validate a placement of ``program`` onto ``model`` from scratch.

    Checks in-bounds injective cells for every device and the
    sense-path rule on every *sequential* step — the invariant the
    scheduler's ≤-S guarantee rests on.  Raises :class:`MappingError`.
    """
    if len(cells) != program.num_devices:
        raise MappingError(
            f"placement covers {len(cells)} of {program.num_devices} "
            "devices"
        )
    occupied: Dict[Tuple[int, int], int] = {}
    for device, (row, col) in cells.items():
        if not (0 <= row < model.height and 0 <= col < model.width):
            raise MappingError(
                f"device {device} at ({row}, {col}) is outside the "
                f"{model} array"
            )
        if (row, col) in occupied:
            raise MappingError(
                f"devices {occupied[(row, col)]} and {device} share "
                f"cell ({row}, {col})"
            )
        occupied[(row, col)] = device
    row_of = {device: cell[0] for device, cell in cells.items()}
    for step_index, step in enumerate(program.steps):
        violation = step_row_violation(step.ops, row_of)
        if violation is not None:
            raise MappingError(
                f"sequential step {step_index} ({step.label!r}) is not "
                f"row-legal under this placement: {violation}"
            )


def check_placed(placed: PlacedProgram) -> None:
    """Full legality audit of a mapped program.

    Combines the structural checks of
    :meth:`repro.rram.isa.PlacedProgram.validate` (placement shape,
    write-once, provenance bijection) with the crossbar-specific
    sense-path rule on every parallel step *and* on the source
    sequential steps.  Raises :class:`MappingError` on any violation.
    """
    model = CrossbarModel(placed.width, placed.height)
    try:
        placed.validate()
    except ValueError as exc:
        raise MappingError(str(exc)) from exc
    check_placement(placed.program, model, placed.cells)
    row_of = {device: cell[0] for device, cell in placed.cells.items()}
    for step_index, step in enumerate(placed.steps):
        violation = step_row_violation(step.ops, row_of)
        if violation is not None:
            raise MappingError(
                f"parallel step {step_index} violates the sense-path "
                f"rule: {violation}"
            )


def wirelength(
    program: Program, cells: Mapping[int, Tuple[int, int]]
) -> int:
    """Total Manhattan distance between sensed and written cells.

    A proxy for drive energy / IR drop: every op contributes the
    distance from each device it senses to the device it writes.  Used
    to compare placements of equal step count.
    """
    total = 0
    for step in program.steps:
        for op in step.ops:
            dst_row, dst_col = cells[op.dst]
            for device in op_sensed(op):
                src_row, src_col = cells[device]
                total += abs(dst_row - src_row) + abs(dst_col - src_col)
    return total
