"""Greedy level-packing placement of a compiled program onto an array.

The placer walks the compiler's :class:`~repro.rram.isa.LayoutBlock`
stream in order (primary inputs, constants, PO-inversion registers,
then gadgets level by level) and packs each block onto a single row
when it can — gadget slots that live on one wordline give the merged
level steps their row locality — falling back to scattering a block's
devices across rows when no single row accepts it whole.

Legality is maintained incrementally: for every ``(row, sequential
step)`` pair the placer tracks which ops sense on that row and which
devices they sense, so a candidate row can be accepted or rejected in
time proportional to the candidate devices' sense sites rather than by
re-checking whole steps.  The invariant established here — **every
sequential step is row-legal under the final placement** — is exactly
what lets the scheduler guarantee the parallel step count never
exceeds the paper's sequential ``S`` (see ``docs/MAPPING.md``).

Device recycling in the compiler means one device index can appear in
several blocks; the placer honours the first block that mentions a
device and skips it afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..rram.isa import LayoutBlock, Program, op_sensed
from .model import CrossbarModel, MappingError, row_rule_ok

#: device → list of (sequential step index, op uid) pairs sensing it.
SenseSites = Dict[int, List[Tuple[int, Tuple[int, int]]]]

#: (row, step) claim: (op uids sensing on the row, devices they sense).
_Claim = Tuple[Set[Tuple[int, int]], Set[int]]


def sense_sites(program: Program) -> SenseSites:
    """Index every sensed device by the ops that sense it, per step."""
    sites: SenseSites = {}
    for step_index, step in enumerate(program.steps):
        for op_index, op in enumerate(step.ops):
            uid = (step_index, op_index)
            for device in op_sensed(op):
                sites.setdefault(device, []).append((step_index, uid))
    return sites


class _RowLedger:
    """Incremental per-(row, step) sense-path claims."""

    def __init__(self) -> None:
        self._claims: Dict[Tuple[int, int], _Claim] = {}

    def trial(
        self,
        row: int,
        devices: Sequence[int],
        sites: SenseSites,
    ) -> Optional[Dict[Tuple[int, int], _Claim]]:
        """Claims after placing ``devices`` on ``row``, or ``None``.

        Returns only the touched ``(row, step)`` entries (as fresh
        sets) when every one of them stays legal; the caller commits
        them via :meth:`commit`.
        """
        staged: Dict[Tuple[int, int], _Claim] = {}
        for device in devices:
            for step_index, uid in sites.get(device, ()):
                key = (row, step_index)
                claim = staged.get(key)
                if claim is None:
                    existing = self._claims.get(key)
                    claim = (
                        (set(existing[0]), set(existing[1]))
                        if existing is not None
                        else (set(), set())
                    )
                    staged[key] = claim
                claim[0].add(uid)
                claim[1].add(device)
        for ops, devs in staged.values():
            if not row_rule_ok(len(ops), len(devs)):
                return None
        return staged

    def commit(self, staged: Dict[Tuple[int, int], _Claim]) -> None:
        self._claims.update(staged)


def _unique_unplaced(
    devices: Sequence[int], cells: Mapping[int, Tuple[int, int]]
) -> List[int]:
    seen: Set[int] = set()
    fresh: List[int] = []
    for device in devices:
        if device in cells or device in seen:
            continue
        seen.add(device)
        fresh.append(device)
    return fresh


def place_greedy(
    program: Program,
    model: CrossbarModel,
    blocks: Optional[Sequence[LayoutBlock]] = None,
) -> Dict[int, Tuple[int, int]]:
    """Assign every device a unique in-bounds ``(row, col)`` cell.

    ``blocks`` overrides the program's own block order (the
    force-directed refiner re-enters here with a spatially re-sorted
    stream).  Raises :class:`MappingError` when the array cannot hold
    a legal placement under this greedy strategy.
    """
    if not model.fits(program.num_devices):
        raise MappingError(
            f"program needs {program.num_devices} devices but the "
            f"{model} array has only {model.num_cells} cells"
        )
    sites = sense_sites(program)
    ledger = _RowLedger()
    cells: Dict[int, Tuple[int, int]] = {}
    cols_used = [0] * model.height

    order = list(blocks) if blocks is not None else list(program.blocks)
    covered = {device for block in order for device in block.devices}
    orphans = [
        device
        for device in range(program.num_devices)
        if device not in covered
    ]
    if orphans:
        order.append(LayoutBlock("orphans", tuple(orphans)))

    hint_row = 0
    for block in order:
        devices = _unique_unplaced(block.devices, cells)
        if not devices:
            continue
        placed_row = _place_block_on_one_row(
            devices, model, ledger, sites, cells, cols_used, hint_row
        )
        if placed_row is None:
            _scatter_block(
                block, devices, model, ledger, sites, cells, cols_used
            )
        else:
            hint_row = (placed_row + 1) % model.height
    return cells


def _place_block_on_one_row(
    devices: List[int],
    model: CrossbarModel,
    ledger: _RowLedger,
    sites: SenseSites,
    cells: Dict[int, Tuple[int, int]],
    cols_used: List[int],
    hint_row: int,
) -> Optional[int]:
    """Try every row starting at the hint; returns the row or ``None``."""
    for offset in range(model.height):
        row = (hint_row + offset) % model.height
        if cols_used[row] + len(devices) > model.width:
            continue
        staged = ledger.trial(row, devices, sites)
        if staged is None:
            continue
        ledger.commit(staged)
        for device in devices:
            cells[device] = (row, cols_used[row])
            cols_used[row] += 1
        return row
    return None


def _scatter_block(
    block: LayoutBlock,
    devices: List[int],
    model: CrossbarModel,
    ledger: _RowLedger,
    sites: SenseSites,
    cells: Dict[int, Tuple[int, int]],
    cols_used: List[int],
) -> None:
    """Fallback: place the block's devices one by one, anywhere legal."""
    for device in devices:
        for row in range(model.height):
            if cols_used[row] >= model.width:
                continue
            staged = ledger.trial(row, (device,), sites)
            if staged is None:
                continue
            ledger.commit(staged)
            cells[device] = (row, cols_used[row])
            cols_used[row] += 1
            break
        else:
            raise MappingError(
                f"no legal cell for device {device} of block "
                f"{block.label!r} on the {model} array"
            )
