"""Crossbar-constrained mapping: geometry for the paper's cost model.

Places a compiled RRAM micro-program onto a W×H 1T1R array and
reschedules it into row-parallel cycles that never exceed — and
typically beat — the paper's sequential step count S.  See
``docs/MAPPING.md`` for the model, the sense-path conflict rule, and
the placement/legalization loop.
"""

from .force import (
    MAX_REFINE_BLOCKS,
    fruchterman_reingold,
    refine_placement,
)
from .mapping import fit_array, map_program
from .model import (
    CrossbarModel,
    MappingError,
    check_placed,
    check_placement,
    row_rule_ok,
    step_row_violation,
    wirelength,
)
from .place import place_greedy, sense_sites
from .schedule import schedule_rows

__all__ = [
    "CrossbarModel",
    "MappingError",
    "MAX_REFINE_BLOCKS",
    "check_placed",
    "check_placement",
    "fit_array",
    "fruchterman_reingold",
    "map_program",
    "place_greedy",
    "refine_placement",
    "row_rule_ok",
    "schedule_rows",
    "sense_sites",
    "step_row_violation",
    "wirelength",
]
