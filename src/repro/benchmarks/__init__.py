"""Benchmark circuits: structural builders, synthetic generator, the
two evaluation suites, and the paper's published numbers."""

from . import builders, paperdata
from .generators import SyntheticSpec, synthesize
from .scale import (
    load_scale_mig,
    load_scale_netlist,
    scale_names,
    wallace_multiplier_netlist,
)
from .suite import (
    ALL_BENCHMARKS,
    LARGE_BENCHMARKS,
    SMALL_BENCHMARKS,
    BenchmarkSpec,
    benchmark,
    fuzz_corpus_names,
    large_names,
    load_mig,
    load_netlist,
    small_names,
)

__all__ = [
    "builders",
    "paperdata",
    "SyntheticSpec",
    "synthesize",
    "ALL_BENCHMARKS",
    "LARGE_BENCHMARKS",
    "SMALL_BENCHMARKS",
    "BenchmarkSpec",
    "benchmark",
    "fuzz_corpus_names",
    "large_names",
    "load_mig",
    "load_netlist",
    "load_scale_mig",
    "load_scale_netlist",
    "scale_names",
    "small_names",
    "wallace_multiplier_netlist",
]
