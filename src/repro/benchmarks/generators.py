"""Deterministic synthetic benchmark circuits.

The MCNC/espresso PLA sources of many paper benchmarks are not
redistributable in this offline environment (DESIGN.md §3).  This
module generates seeded stand-ins with the same primary-input/output
counts and sizes in the same regime, so the optimization algorithms and
cost models are exercised on graphs of comparable shape.

The generator builds a *layered funnel* of banded random logic:

* gates live on ``target_depth`` layers; each layer's gates sit at
  evenly spaced *positions* along the primary-input tape and draw their
  operands from nearby nets of the previous layers (a locality band);
* every net of a layer is consumed by at least one gate of the next
  layer (assigned to the nearest position), so the generated logic is
  almost entirely live — sizes track ``num_gates`` faithfully;
* the last layer has exactly ``num_outputs`` gates, which become the
  primary outputs, spread across the tape.

Local operand selection keeps each output cone's input support banded,
which keeps the BDDs of Table III's baseline buildable in natural input
order even for the 135-input circuits, while depth stays near
``target_depth`` — the regime of the paper's benchmark set.  Everything
is driven by an explicit seed: a spec always yields the same netlist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..network import GateType, Netlist

# Gate palette: (type, weight).  XOR kept moderate to bound BDD growth.
_PALETTE: Sequence[Tuple[GateType, float]] = (
    (GateType.AND, 0.24),
    (GateType.OR, 0.24),
    (GateType.NAND, 0.10),
    (GateType.NOR, 0.06),
    (GateType.XOR, 0.12),
    (GateType.XNOR, 0.04),
    (GateType.MAJ, 0.12),
    (GateType.MUX, 0.08),
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic benchmark circuit."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    seed: int
    bandwidth: float = 6.0  # operand reach in tape positions
    target_depth: int = 12  # number of gate layers
    chain_bias: float = 0.25  # probability of intra-layer chaining

    def build(self) -> Netlist:
        """Generate the netlist (deterministic in the spec)."""
        return synthesize(self)


def _pick_gate_type(rng: random.Random) -> GateType:
    roll = rng.random()
    acc = 0.0
    for gate_type, weight in _PALETTE:
        acc += weight
        if roll < acc:
            return gate_type
    return GateType.AND


class _Net:
    __slots__ = ("name", "position")

    def __init__(self, name: str, position: float) -> None:
        self.name = name
        self.position = position


def synthesize(spec: SyntheticSpec) -> Netlist:
    """Build the layered banded netlist described by ``spec``."""
    if spec.num_inputs < 2:
        raise ValueError("synthetic circuits need at least two inputs")
    if spec.num_outputs < 1:
        raise ValueError("synthetic circuits need at least one output")
    layers = max(2, spec.target_depth)
    rng = random.Random(spec.seed)
    netlist = Netlist(spec.name)

    previous: List[_Net] = [
        _Net(netlist.add_input(f"x{i}"), float(i))
        for i in range(spec.num_inputs)
    ]
    older: List[_Net] = []  # nets from layers before the previous one

    widths = _width_schedule(layers, spec.num_gates, spec.num_outputs)
    gate_count = 0

    for layer in range(1, layers + 1):
        width = widths[layer - 1]
        # Gate skeletons: type, arity, anchor position.
        skeletons: List[Tuple[GateType, int, float]] = []
        for j in range(width):
            gate_type = _pick_gate_type(rng)
            arity = 3 if gate_type in (GateType.MAJ, GateType.MUX) else 2
            anchor = (j + 0.5) * spec.num_inputs / width
            anchor += rng.uniform(-0.5, 0.5)
            skeletons.append((gate_type, arity, anchor))

        operand_lists: List[List[_Net]] = [[] for _ in range(width)]

        # Pass 1 — consumption guarantee: assign every previous-layer
        # net to the nearest gate with spare capacity.
        order = sorted(range(len(previous)), key=lambda i: previous[i].position)
        for index in order:
            net = previous[index]
            best_gate = None
            best_distance = None
            for g, (gtype, arity, anchor) in enumerate(skeletons):
                if len(operand_lists[g]) >= arity:
                    continue
                if any(o is net for o in operand_lists[g]):
                    continue
                distance = abs(anchor - net.position)
                if best_distance is None or distance < best_distance:
                    best_gate, best_distance = g, distance
            if best_gate is not None:
                operand_lists[best_gate].append(net)

        # Pass 2 — fill remaining slots from the locality band (the
        # previous layer preferred, older nets occasionally for
        # reconvergence and cross-layer fanout).  With `chain_bias`
        # probability a gate instead consumes a net created earlier in
        # its *own* layer, producing the depth skew real multi-level
        # netlists have (and giving push-up something to optimize).
        pool = previous + older
        current: List[_Net] = []
        for g, (gtype, arity, anchor) in enumerate(skeletons):
            attempts = 0
            while len(operand_lists[g]) < arity and attempts < 64:
                attempts += 1
                if current and rng.random() < spec.chain_bias:
                    candidate = _nearest_sample(
                        rng, current, anchor, spec.bandwidth
                    )
                    if candidate is not None and not any(
                        o is candidate for o in operand_lists[g]
                    ):
                        operand_lists[g].append(candidate)
                    continue
                source = previous if rng.random() < 0.8 or not older else older
                candidate = _nearest_sample(rng, source, anchor, spec.bandwidth)
                if candidate is None:
                    candidate = _nearest_sample(
                        rng, pool, anchor, spec.bandwidth * 4
                    )
                if candidate is None or any(
                    o is candidate for o in operand_lists[g]
                ):
                    continue
                operand_lists[g].append(candidate)
            while len(operand_lists[g]) < arity:
                # Degenerate fallback: widen to the whole pool.
                candidate = pool[rng.randrange(len(pool))]
                if not any(o is candidate for o in operand_lists[g]):
                    operand_lists[g].append(candidate)
            # Create the gate immediately so later gates of this layer
            # can chain onto it.
            operands = operand_lists[g]
            name = f"g{gate_count}"
            netlist.add_gate(name, gtype, [o.name for o in operands])
            gate_count += 1
            position = sum(o.position for o in operands) / len(operands)
            current.append(_Net(name, position))

        older = previous + older
        if len(older) > 4 * spec.num_inputs:
            older = older[: 4 * spec.num_inputs]
        previous = current

    for net in previous:
        netlist.set_output(net.name)
    netlist.validate()
    return netlist


def _width_schedule(layers: int, num_gates: int, num_outputs: int) -> List[int]:
    """Per-layer gate counts: geometric taper ending at ``num_outputs``.

    The taper ratio is what keeps the funnel *live*: a layer can consume
    at most ~2.3× its own operand capacity, so each layer must hold at
    least ~45% of the previous one.  The first width is searched so the
    total tracks ``num_gates``.
    """

    def widths_for(first: float) -> List[int]:
        if layers == 1:
            return [num_outputs]
        ratio = (num_outputs / first) ** (1.0 / (layers - 1))
        ratio = max(ratio, 0.45)
        values = [max(1, round(first * ratio**i)) for i in range(layers)]
        values[-1] = num_outputs
        return values

    low, high = 1.0, float(max(num_gates, num_outputs, 2))
    for _ in range(40):
        mid = (low + high) / 2
        if sum(widths_for(mid)) < num_gates:
            low = mid
        else:
            high = mid
    return widths_for(high)


def _nearest_sample(
    rng: random.Random,
    nets: Sequence[_Net],
    anchor: float,
    band: float,
):
    """A random net within ``band`` of ``anchor`` (None if none)."""
    candidates = [net for net in nets if abs(net.position - anchor) <= band]
    if not candidates:
        return None
    return candidates[rng.randrange(len(candidates))]
