"""Structural netlist builders for exactly-specified benchmark functions.

These construct gate-level netlists for the benchmark functions whose
mathematical definition is public (DESIGN.md §3): parity trees,
population counters (the ``rd`` rate-detection family), symmetric band
detectors (``9sym``/``sym10``), wide multiplexers (``cm150a``),
arithmetic (adders, squarers, a 4-bit ALU for ``alu4``'s interface),
and small two-level control functions.  Every builder is checked
against the reference truth tables of :mod:`repro.truth` in the
test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..network import GateType, Netlist

class _NetNamer:
    """Fresh, readable net names."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        count = self._counts.get(prefix, 0)
        self._counts[prefix] = count + 1
        return f"{prefix}{count}"


def _xor_tree(netlist: Netlist, namer: _NetNamer, nets: Sequence[str]) -> str:
    work = list(nets)
    while len(work) > 1:
        nxt = []
        for i in range(0, len(work) - 1, 2):
            name = namer.fresh("xr")
            netlist.add_gate(name, GateType.XOR, [work[i], work[i + 1]])
            nxt.append(name)
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]


def parity_netlist(num_inputs: int, name: str = "parity") -> Netlist:
    """Balanced XOR tree — ``parity`` (16 inputs) and ``xor5``."""
    netlist = Netlist(name)
    namer = _NetNamer()
    inputs = [netlist.add_input(f"x{i}") for i in range(num_inputs)]
    netlist.set_output(_xor_tree(netlist, namer, inputs))
    return netlist


def _full_adder(
    netlist: Netlist, namer: _NetNamer, a: str, b: str, c: str
) -> Tuple[str, str]:
    """Full adder: returns (sum, carry) nets; carry is a MAJ gate."""
    s = namer.fresh("fas")
    carry = namer.fresh("fac")
    ab = namer.fresh("fax")
    netlist.add_gate(ab, GateType.XOR, [a, b])
    netlist.add_gate(s, GateType.XOR, [ab, c])
    netlist.add_gate(carry, GateType.MAJ, [a, b, c])
    return s, carry


def _half_adder(
    netlist: Netlist, namer: _NetNamer, a: str, b: str
) -> Tuple[str, str]:
    s = namer.fresh("has")
    carry = namer.fresh("hac")
    netlist.add_gate(s, GateType.XOR, [a, b])
    netlist.add_gate(carry, GateType.AND, [a, b])
    return s, carry


def popcount_nets(
    netlist: Netlist, namer: _NetNamer, bits: Sequence[str]
) -> List[str]:
    """Carry-save population counter; returns count bits, LSB first."""
    columns: List[List[str]] = [list(bits)]
    result: List[str] = []
    column = 0
    while column < len(columns):
        current = columns[column]
        while len(current) > 1:
            if len(current) >= 3:
                a, b, c = current.pop(), current.pop(), current.pop()
                s, carry = _full_adder(netlist, namer, a, b, c)
            else:
                a, b = current.pop(), current.pop()
                s, carry = _half_adder(netlist, namer, a, b)
            current.append(s)
            while len(columns) <= column + 1:
                columns.append([])
            columns[column + 1].append(carry)
        if current:
            result.append(current[0])
        else:
            const = namer.fresh("zero")
            netlist.add_gate(const, GateType.CONST0, [])
            result.append(const)
        column += 1
    return result


def count_ones_netlist(
    num_inputs: int, num_outputs: int, name: str = "rd"
) -> Netlist:
    """The ``rd53``/``rd73``/``rd84`` family: binary count of ones."""
    netlist = Netlist(name)
    namer = _NetNamer()
    inputs = [netlist.add_input(f"x{i}") for i in range(num_inputs)]
    count = popcount_nets(netlist, namer, inputs)
    for bit in range(num_outputs):
        if bit < len(count):
            netlist.set_output(count[bit])
        else:  # pragma: no cover - callers request valid widths
            zero = namer.fresh("zero")
            netlist.add_gate(zero, GateType.CONST0, [])
            netlist.set_output(zero)
    return netlist


def _compare_const(
    netlist: Netlist,
    namer: _NetNamer,
    bits: Sequence[str],
    constant: int,
) -> Tuple[str, str]:
    """Return nets (bits >= constant, bits <= constant) for an unsigned
    comparison against a compile-time constant."""
    gt: Optional[str] = None  # strictly-greater given equal prefix
    eq: Optional[str] = None  # prefix equal so far (None = trivially true)
    for index in reversed(range(len(bits))):
        bit = bits[index]
        want = (constant >> index) & 1
        if want:
            this_eq = bit
            this_gt: Optional[str] = None  # a single bit cannot exceed 1
        else:
            inv = namer.fresh("cmpn")
            netlist.add_gate(inv, GateType.NOT, [bit])
            this_eq = inv
            this_gt = bit
        if this_gt is not None:
            if eq is None:
                term = this_gt
            else:
                term = namer.fresh("cmpg")
                netlist.add_gate(term, GateType.AND, [eq, this_gt])
            if gt is None:
                gt = term
            else:
                new_gt = namer.fresh("cmpo")
                netlist.add_gate(new_gt, GateType.OR, [gt, term])
                gt = new_gt
        if eq is None:
            eq = this_eq
        else:
            new_eq = namer.fresh("cmpe")
            netlist.add_gate(new_eq, GateType.AND, [eq, this_eq])
            eq = new_eq
    assert eq is not None
    if gt is None:
        zero = namer.fresh("zero")
        netlist.add_gate(zero, GateType.CONST0, [])
        gt = zero
    ge_or_eq = namer.fresh("cmpge")
    netlist.add_gate(ge_or_eq, GateType.OR, [gt, eq])
    le = namer.fresh("cmple")
    netlist.add_gate(le, GateType.NOT, [gt])
    return ge_or_eq, le


def symmetric_band_netlist(
    num_inputs: int, low: int, high: int, name: str = "sym"
) -> Netlist:
    """``9sym``/``sym10``: 1 iff ``low <= popcount(x) <= high``."""
    netlist = Netlist(name)
    namer = _NetNamer()
    inputs = [netlist.add_input(f"x{i}") for i in range(num_inputs)]
    count = popcount_nets(netlist, namer, inputs)
    ge_low, _ = _compare_const(netlist, namer, count, low)
    _, le_high = _compare_const(netlist, namer, count, high)
    out = namer.fresh("band")
    netlist.add_gate(out, GateType.AND, [ge_low, le_high])
    netlist.set_output(out)
    return netlist


def mux_netlist(
    select_bits: int, name: str = "cm150a", with_enable: bool = False
) -> Netlist:
    """``2**k``-to-1 multiplexer tree — ``cm150a`` at ``k = 4`` with the
    enable pin that brings its interface to 21 inputs."""
    netlist = Netlist(name)
    namer = _NetNamer()
    data = [netlist.add_input(f"d{i}") for i in range(1 << select_bits)]
    selects = [netlist.add_input(f"s{i}") for i in range(select_bits)]
    enable = netlist.add_input("en") if with_enable else None
    layer = data
    for level in range(select_bits):
        nxt = []
        for i in range(0, len(layer), 2):
            net = namer.fresh(f"m{level}_")
            netlist.add_gate(
                net, GateType.MUX, [selects[level], layer[i + 1], layer[i]]
            )
            nxt.append(net)
        layer = nxt
    out = layer[0]
    if enable is not None:
        gated = namer.fresh("out_en")
        netlist.add_gate(gated, GateType.AND, [out, enable])
        out = gated
    netlist.set_output(out)
    return netlist


def ripple_adder_nets(
    netlist: Netlist,
    namer: _NetNamer,
    a: Sequence[str],
    b: Sequence[str],
    carry_in: Optional[str] = None,
) -> Tuple[List[str], str]:
    """Ripple-carry adder over equal-width operands; returns (sums, cout)."""
    assert len(a) == len(b)
    if carry_in is None:
        carry_in = namer.fresh("zero")
        netlist.add_gate(carry_in, GateType.CONST0, [])
    sums: List[str] = []
    carry = carry_in
    for bit_a, bit_b in zip(a, b):
        s, carry = _full_adder(netlist, namer, bit_a, bit_b, carry)
        sums.append(s)
    return sums, carry


def adder_netlist(width: int, name: str = "adder") -> Netlist:
    """``a + b + cin`` with ``width``-bit operands."""
    netlist = Netlist(name)
    namer = _NetNamer()
    a = [netlist.add_input(f"a{i}") for i in range(width)]
    b = [netlist.add_input(f"b{i}") for i in range(width)]
    cin = netlist.add_input("cin")
    sums, cout = ripple_adder_nets(netlist, namer, a, b, cin)
    for s in sums:
        netlist.set_output(s)
    netlist.set_output(cout)
    return netlist


def squarer_plus_netlist(name: str = "5xp1") -> Netlist:
    """7-in/10-out arithmetic circuit standing in for MCNC ``5xp1``:
    ``out = x*x + y`` with a 5-bit ``x`` and 2-bit ``y``."""
    netlist = Netlist(name)
    namer = _NetNamer()
    x = [netlist.add_input(f"x{i}") for i in range(5)]
    y = [netlist.add_input(f"y{i}") for i in range(2)]
    # Partial products of the squarer feed a carry-save column adder.
    columns: List[List[str]] = [[] for _ in range(10)]
    for i in range(5):
        for j in range(5):
            if i == j:
                columns[i + j].append(x[i])
            elif i < j:
                # x_i x_j appears twice: once shifted (2·x_i·x_j).
                pp = namer.fresh("pp")
                netlist.add_gate(pp, GateType.AND, [x[i], x[j]])
                columns[i + j + 1].append(pp)
    columns[0].append(y[0])
    columns[1].append(y[1])
    outputs: List[str] = []
    for index in range(10):
        column = columns[index]
        while len(column) > 1:
            if len(column) >= 3:
                a, b, c = column.pop(), column.pop(), column.pop()
                s, carry = _full_adder(netlist, namer, a, b, c)
            else:
                a, b = column.pop(), column.pop()
                s, carry = _half_adder(netlist, namer, a, b)
            column.append(s)
            if index + 1 < 10:
                columns[index + 1].append(carry)
        if column:
            outputs.append(column[0])
        else:
            zero = namer.fresh("zero")
            netlist.add_gate(zero, GateType.CONST0, [])
            outputs.append(zero)
    for out in outputs:
        netlist.set_output(out)
    return netlist


def alu_netlist(name: str = "alu4") -> Netlist:
    """A 14-in/8-out 4-bit ALU standing in for MCNC ``alu4``.

    Inputs: ``a[4]``, ``b[4]``, opcode ``op[3]``, ``cin``, ``en``, ``inv``.
    Ops 0–7: add, sub, and, or, xor, nor, pass-a, maj.  Outputs:
    ``f[4]``, ``cout``, ``zero``, ``neg``, ``parity`` gated by ``en``,
    with ``inv`` optionally complementing ``b`` first.
    """
    netlist = Netlist(name)
    namer = _NetNamer()
    a = [netlist.add_input(f"a{i}") for i in range(4)]
    b_raw = [netlist.add_input(f"b{i}") for i in range(4)]
    op = [netlist.add_input(f"op{i}") for i in range(3)]
    cin = netlist.add_input("cin")
    en = netlist.add_input("en")
    inv = netlist.add_input("inv")

    b: List[str] = []
    for i, bit in enumerate(b_raw):
        net = namer.fresh("bx")
        netlist.add_gate(net, GateType.XOR, [bit, inv])
        b.append(net)

    add_sums, add_cout = ripple_adder_nets(netlist, namer, a, b, cin)
    # Subtraction: a + !b + 1 (reuse the inverter ability via fresh nets).
    nb = []
    for bit in b:
        net = namer.fresh("nb")
        netlist.add_gate(net, GateType.NOT, [bit])
        nb.append(net)
    one = namer.fresh("one")
    netlist.add_gate(one, GateType.CONST1, [])
    sub_sums, sub_cout = ripple_adder_nets(netlist, namer, a, nb, one)

    def bitwise(kind: GateType, prefix: str) -> List[str]:
        nets = []
        for bit_a, bit_b in zip(a, b):
            net = namer.fresh(prefix)
            netlist.add_gate(net, kind, [bit_a, bit_b])
            nets.append(net)
        return nets

    and_bits = bitwise(GateType.AND, "fa")
    or_bits = bitwise(GateType.OR, "fo")
    xor_bits = bitwise(GateType.XOR, "fx")
    nor_bits = bitwise(GateType.NOR, "fn")
    maj_bits = []
    for i in range(4):
        net = namer.fresh("fm")
        netlist.add_gate(net, GateType.MAJ, [a[i], b[i], cin])
        maj_bits.append(net)

    choices = [add_sums, sub_sums, and_bits, or_bits, xor_bits, nor_bits, a, maj_bits]
    f_bits: List[str] = []
    for bit in range(4):
        layer = [choice[bit] for choice in choices]
        for level in range(3):
            nxt = []
            for i in range(0, len(layer), 2):
                net = namer.fresh(f"sel{bit}_")
                netlist.add_gate(
                    net, GateType.MUX, [op[level], layer[i + 1], layer[i]]
                )
                nxt.append(net)
            layer = nxt
        gated = namer.fresh(f"f{bit}_")
        netlist.add_gate(gated, GateType.AND, [layer[0], en])
        f_bits.append(gated)
        netlist.set_output(gated)

    cout = namer.fresh("cout")
    netlist.add_gate(cout, GateType.MUX, [op[0], sub_cout, add_cout])
    netlist.set_output(cout)

    nzero = namer.fresh("nzero")
    netlist.add_gate(nzero, GateType.OR, f_bits)
    zero = namer.fresh("zero_")
    netlist.add_gate(zero, GateType.NOT, [nzero])
    netlist.set_output(zero)
    netlist.set_output(f_bits[3])  # sign
    par = _xor_tree(netlist, namer, f_bits)
    netlist.set_output(par)
    return netlist


def sop_netlist(
    name: str,
    num_inputs: int,
    products_per_output: Sequence[Sequence[Sequence[Tuple[int, bool]]]],
) -> Netlist:
    """Two-level AND-OR netlist from literal lists.

    ``products_per_output[o]`` is a list of products; each product is a
    list of ``(input_index, positive)`` literals.
    """
    netlist = Netlist(name)
    namer = _NetNamer()
    inputs = [netlist.add_input(f"x{i}") for i in range(num_inputs)]
    inverted: Dict[int, str] = {}

    def literal(index: int, positive: bool) -> str:
        if positive:
            return inputs[index]
        if index not in inverted:
            net = namer.fresh("inv")
            netlist.add_gate(net, GateType.NOT, [inputs[index]])
            inverted[index] = net
        return inverted[index]

    for out_index, products in enumerate(products_per_output):
        product_nets = []
        for product in products:
            literals = [literal(i, pos) for i, pos in product]
            if len(literals) == 1:
                product_nets.append(literals[0])
            else:
                net = namer.fresh("p")
                netlist.add_gate(net, GateType.AND, literals)
                product_nets.append(net)
        out = f"f{out_index}"
        if len(product_nets) == 1:
            netlist.add_gate(out, GateType.BUF, product_nets)
        else:
            netlist.add_gate(out, GateType.OR, product_nets)
        netlist.set_output(out)
    return netlist


def con1_style_netlist(name: str = "con1") -> Netlist:
    """Structural netlist matching
    :func:`repro.truth.con1_style_function`."""
    return sop_netlist(
        name,
        7,
        [
            [
                [(0, True), (2, True), (4, False)],
                [(1, True), (3, True), (5, True)],
                [(0, False), (6, True)],
            ],
            [
                [(4, True), (5, True)],
                [(0, True), (1, False), (6, True)],
                [(2, True), (3, False), (6, False)],
            ],
        ],
    )


def t481_style_netlist(name: str = "t481") -> Netlist:
    """16-in/1-out structured function standing in for MCNC ``t481``:
    XOR over four group predicates ``(a·b) OR (c XOR d)``."""
    netlist = Netlist(name)
    namer = _NetNamer()
    inputs = [netlist.add_input(f"x{i}") for i in range(16)]
    groups = []
    for g in range(4):
        a, b, c, d = inputs[4 * g : 4 * g + 4]
        conj = namer.fresh("g_and")
        netlist.add_gate(conj, GateType.AND, [a, b])
        xr = namer.fresh("g_xor")
        netlist.add_gate(xr, GateType.XOR, [c, d])
        pred = namer.fresh("g_or")
        netlist.add_gate(pred, GateType.OR, [conj, xr])
        groups.append(pred)
    netlist.set_output(_xor_tree(netlist, namer, groups))
    return netlist


def count_compare_netlist(
    num_inputs: int, split: int, name: str = "max46"
) -> Netlist:
    """``popcount(x[:split]) > popcount(x[split:])`` — ``max46`` stand-in."""
    netlist = Netlist(name)
    namer = _NetNamer()
    inputs = [netlist.add_input(f"x{i}") for i in range(num_inputs)]
    left = popcount_nets(netlist, namer, inputs[:split])
    right = popcount_nets(netlist, namer, inputs[split:])
    width = max(len(left), len(right))

    def pad(bits: List[str]) -> List[str]:
        while len(bits) < width:
            zero = namer.fresh("zero")
            netlist.add_gate(zero, GateType.CONST0, [])
            bits.append(zero)
        return bits

    left, right = pad(left), pad(right)
    gt: Optional[str] = None
    eq: Optional[str] = None
    for index in reversed(range(width)):
        nr = namer.fresh("nr")
        netlist.add_gate(nr, GateType.NOT, [right[index]])
        here_gt = namer.fresh("hg")
        netlist.add_gate(here_gt, GateType.AND, [left[index], nr])
        here_eq = namer.fresh("he")
        netlist.add_gate(here_eq, GateType.XNOR, [left[index], right[index]])
        if gt is None:
            gt, eq = here_gt, here_eq
        else:
            assert eq is not None
            with_eq = namer.fresh("we")
            netlist.add_gate(with_eq, GateType.AND, [eq, here_gt])
            new_gt = namer.fresh("ng")
            netlist.add_gate(new_gt, GateType.OR, [gt, with_eq])
            new_eq = namer.fresh("ne")
            netlist.add_gate(new_eq, GateType.AND, [eq, here_eq])
            gt, eq = new_gt, new_eq
    assert gt is not None
    netlist.set_output(gt)
    return netlist
