"""The evaluation benchmark suites (paper Sec. IV-A).

Two groups, mirroring the paper's tables:

* ``large`` — the 25 ISCAS89/LGsynth91-derived functions of Tables II
  and III (left), 7–135 inputs;
* ``small`` — the 25 Reed-Muller-workshop functions of Table III
  (right), 3–16 inputs.

Functions with a public mathematical definition are built *exactly*
(structural builders checked against reference truth tables); the
remaining MCNC PLA benchmarks are deterministic seeded synthetics with
matching interfaces (DESIGN.md §3).  ``kind`` records which is which so
EXPERIMENTS.md can report provenance per row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List

from ..mig import Mig, mig_from_netlist, mig_from_truth_tables, mig_to_netlist
from ..network import Netlist
from ..truth import TruthTable, clip_style_function
from . import builders
from .generators import SyntheticSpec


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark circuit: interface, provenance, and builder."""

    name: str
    group: str  # "large" | "small"
    num_inputs: int
    num_outputs: int
    kind: str  # "exact" | "structured" | "synthetic"
    builder: Callable[[], Netlist] = field(compare=False)
    description: str = ""


def _seeded_table_netlist(
    name: str, num_vars: int, seed: int
) -> Callable[[], Netlist]:
    """A deterministic random single-output function, lowered through
    Shannon decomposition (used for tiny benchmarks whose original
    content is unavailable)."""

    def build() -> Netlist:
        rng = random.Random(seed)
        bits = rng.getrandbits(1 << num_vars)
        table = TruthTable(num_vars, bits)
        mig = mig_from_truth_tables([table], name)
        netlist = mig_to_netlist(mig)
        netlist.name = name
        return netlist

    return build


def _tables_netlist(
    name: str, tables_fn: Callable[[], List[TruthTable]]
) -> Callable[[], Netlist]:
    def build() -> Netlist:
        mig = mig_from_truth_tables(tables_fn(), name)
        netlist = mig_to_netlist(mig)
        netlist.name = name
        return netlist

    return build


def _single_output(
    name: str,
    base_builder: Callable[[], Netlist],
    output_index: int,
) -> Callable[[], Netlist]:
    """Project one output of a multi-output builder (``rd53f1`` etc.),
    preserving the structural logic of its cone."""

    def build() -> Netlist:
        return base_builder().extract_output_cone(output_index, name)

    return build


def _synthetic(spec: SyntheticSpec) -> Callable[[], Netlist]:
    return spec.build


def _spec(
    name: str,
    group: str,
    inputs: int,
    outputs: int,
    kind: str,
    builder: Callable[[], Netlist],
    description: str = "",
) -> BenchmarkSpec:
    return BenchmarkSpec(name, group, inputs, outputs, kind, builder, description)


# ----------------------------------------------------------------------
# Large set — Tables II and III (left)
# ----------------------------------------------------------------------

_LARGE: List[BenchmarkSpec] = [
    _spec("5xp1", "large", 7, 10, "exact",
          builders.squarer_plus_netlist,
          "x*x + y arithmetic (5-bit x, 2-bit y)"),
    _spec("alu4", "large", 14, 8, "exact",
          builders.alu_netlist, "4-bit 8-function ALU"),
    _spec("apex1", "large", 45, 45, "synthetic",
          _synthetic(SyntheticSpec("apex1", 45, 45, 1300, seed=0xA9E1, bandwidth=3.5))),
    _spec("apex2", "large", 39, 3, "synthetic",
          _synthetic(SyntheticSpec("apex2", 39, 3, 520, seed=0xA9E2, bandwidth=4.0))),
    _spec("apex4", "large", 9, 19, "synthetic",
          _synthetic(SyntheticSpec("apex4", 9, 19, 1500, seed=0xA9E4, bandwidth=3.0))),
    _spec("apex5", "large", 117, 88, "synthetic",
          _synthetic(SyntheticSpec("apex5", 117, 88, 1200, seed=0xA9E5, bandwidth=5.0))),
    _spec("apex6", "large", 135, 99, "synthetic",
          _synthetic(SyntheticSpec("apex6", 135, 99, 1250, seed=0xA9E6, bandwidth=5.0))),
    _spec("apex7", "large", 49, 37, "synthetic",
          _synthetic(SyntheticSpec("apex7", 49, 37, 420, seed=0xA9E7, bandwidth=4.0))),
    _spec("b9", "large", 41, 21, "synthetic",
          _synthetic(SyntheticSpec("b9", 41, 21, 240, seed=0xB9, bandwidth=4.0))),
    _spec("clip", "large", 9, 5, "exact",
          _tables_netlist("clip", clip_style_function),
          "signed 9-bit saturation to 5 bits"),
    _spec("cm150a", "large", 21, 1, "exact",
          lambda: builders.mux_netlist(4, "cm150a", with_enable=True),
          "16:1 multiplexer with enable"),
    _spec("cm162a", "large", 14, 5, "synthetic",
          _synthetic(SyntheticSpec("cm162a", 14, 5, 80, seed=0xC162, bandwidth=4.0, target_depth=8))),
    _spec("cm163a", "large", 16, 5, "synthetic",
          _synthetic(SyntheticSpec("cm163a", 16, 5, 90, seed=0xC163, bandwidth=4.0, target_depth=8))),
    _spec("cordic", "large", 23, 2, "synthetic",
          _synthetic(SyntheticSpec("cordic", 23, 2, 320, seed=0xC0D1, bandwidth=4.0))),
    _spec("misex1", "large", 8, 7, "synthetic",
          _synthetic(SyntheticSpec("misex1", 8, 7, 110, seed=0x35E1, bandwidth=3.0, target_depth=9))),
    _spec("misex3", "large", 14, 14, "synthetic",
          _synthetic(SyntheticSpec("misex3", 14, 14, 1250, seed=0x35E3, bandwidth=3.0))),
    _spec("parity", "large", 16, 1, "exact",
          lambda: builders.parity_netlist(16, "parity"), "16-input odd parity"),
    _spec("seq", "large", 41, 35, "synthetic",
          _synthetic(SyntheticSpec("seq", 41, 35, 1800, seed=0x5E9, bandwidth=3.0))),
    _spec("t481", "large", 16, 1, "structured",
          builders.t481_style_netlist,
          "XOR of four group predicates (t481-style decomposition)"),
    _spec("table5", "large", 17, 15, "synthetic",
          _synthetic(SyntheticSpec("table5", 17, 15, 1350, seed=0x7AB5, bandwidth=3.0))),
    _spec("too_large", "large", 38, 3, "synthetic",
          _synthetic(SyntheticSpec("too_large", 38, 3, 460, seed=0x700, bandwidth=4.0))),
    _spec("x1", "large", 51, 35, "synthetic",
          _synthetic(SyntheticSpec("x1", 51, 35, 620, seed=0x1001, bandwidth=4.0))),
    _spec("x2", "large", 10, 7, "synthetic",
          _synthetic(SyntheticSpec("x2", 10, 7, 80, seed=0x1002, bandwidth=3.0, target_depth=8))),
    _spec("x3", "large", 135, 99, "synthetic",
          _synthetic(SyntheticSpec("x3", 135, 99, 1100, seed=0x1003, bandwidth=5.0))),
    _spec("x4", "large", 94, 71, "synthetic",
          _synthetic(SyntheticSpec("x4", 94, 71, 900, seed=0x1004, bandwidth=5.0))),
]


# ----------------------------------------------------------------------
# Small set — Table III (right)
# ----------------------------------------------------------------------


def _rd_bit(name: str, inputs: int, outputs: int, bit: int) -> BenchmarkSpec:
    return _spec(
        name, "small", inputs, 1, "exact",
        _single_output(
            name, lambda: builders.count_ones_netlist(inputs, outputs, name), bit
        ),
        f"bit {bit} of the {inputs}-input ones-count",
    )


_SMALL: List[BenchmarkSpec] = [
    _spec("9sym_d", "small", 9, 1, "exact",
          lambda: builders.symmetric_band_netlist(9, 3, 6, "9sym_d"),
          "1 iff 3..6 of 9 inputs set"),
    _spec("con1f1", "small", 7, 1, "exact",
          _single_output("con1f1", builders.con1_style_netlist, 0)),
    _spec("con2f2", "small", 7, 1, "exact",
          _single_output("con2f2", builders.con1_style_netlist, 1)),
    _spec("exam1_d", "small", 3, 1, "synthetic",
          _seeded_table_netlist("exam1_d", 3, 0xE1)),
    _spec("exam3_d", "small", 4, 1, "synthetic",
          _seeded_table_netlist("exam3_d", 4, 0xE3)),
    _spec("max46_d", "small", 9, 1, "structured",
          lambda: builders.count_compare_netlist(9, 5, "max46_d"),
          "popcount(x[:5]) > popcount(x[5:])"),
    _spec("newill_d", "small", 8, 1, "synthetic",
          _seeded_table_netlist("newill_d", 8, 0x111)),
    _spec("newtag_d", "small", 8, 1, "synthetic",
          _seeded_table_netlist("newtag_d", 8, 0x7A6)),
    _rd_bit("rd53f1", 5, 3, 0),
    _rd_bit("rd53f2", 5, 3, 1),
    _rd_bit("rd53f3", 5, 3, 2),
    _rd_bit("rd73f1", 7, 3, 0),
    _rd_bit("rd73f2", 7, 3, 1),
    _rd_bit("rd73f3", 7, 3, 2),
    _rd_bit("rd84f1", 8, 4, 0),
    _rd_bit("rd84f2", 8, 4, 1),
    _rd_bit("rd84f3", 8, 4, 2),
    _rd_bit("rd84f4", 8, 4, 3),
    _spec("sao2f1", "small", 10, 1, "synthetic",
          _synthetic(SyntheticSpec("sao2f1", 10, 1, 90, seed=0x5A01, bandwidth=3.0, target_depth=9))),
    _spec("sao2f2", "small", 10, 1, "synthetic",
          _synthetic(SyntheticSpec("sao2f2", 10, 1, 100, seed=0x5A02, bandwidth=3.0, target_depth=9))),
    _spec("sao2f3", "small", 10, 1, "synthetic",
          _synthetic(SyntheticSpec("sao2f3", 10, 1, 110, seed=0x5A03, bandwidth=3.0, target_depth=9))),
    _spec("sao2f4", "small", 10, 1, "synthetic",
          _synthetic(SyntheticSpec("sao2f4", 10, 1, 120, seed=0x5A04, bandwidth=3.0, target_depth=9))),
    _spec("sym10_d", "small", 10, 1, "exact",
          lambda: builders.symmetric_band_netlist(10, 3, 6, "sym10_d"),
          "1 iff 3..6 of 10 inputs set"),
    _spec("t481_d", "small", 16, 1, "structured",
          lambda: builders.t481_style_netlist("t481_d")),
    _spec("xor5_d", "small", 5, 1, "exact",
          lambda: builders.parity_netlist(5, "xor5_d"), "5-input parity"),
]

LARGE_BENCHMARKS: Dict[str, BenchmarkSpec] = {b.name: b for b in _LARGE}
SMALL_BENCHMARKS: Dict[str, BenchmarkSpec] = {b.name: b for b in _SMALL}
ALL_BENCHMARKS: Dict[str, BenchmarkSpec] = {**LARGE_BENCHMARKS, **SMALL_BENCHMARKS}


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name."""
    try:
        return ALL_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(ALL_BENCHMARKS)}"
        ) from None


@lru_cache(maxsize=None)
def load_netlist(name: str) -> Netlist:
    """Build (and cache) the netlist of a benchmark."""
    spec = benchmark(name)
    netlist = spec.builder()
    if len(netlist.inputs) != spec.num_inputs:
        raise RuntimeError(
            f"{name}: built {len(netlist.inputs)} inputs, "
            f"spec says {spec.num_inputs}"
        )
    if len(netlist.outputs) != spec.num_outputs:
        raise RuntimeError(
            f"{name}: built {len(netlist.outputs)} outputs, "
            f"spec says {spec.num_outputs}"
        )
    return netlist


def load_mig(name: str) -> Mig:
    """Build a fresh MIG for a benchmark (safe to mutate)."""
    return mig_from_netlist(load_netlist(name))


def large_names() -> List[str]:
    """The 25 large benchmark names in table order."""
    return [b.name for b in _LARGE]


def small_names() -> List[str]:
    """The 25 small benchmark names in table order."""
    return [b.name for b in _SMALL]


def fuzz_corpus_names(max_inputs: int = 8) -> List[str]:
    """The small-circuit corpus the fault-injection campaign sweeps.

    Bundled benchmarks whose interface admits exhaustive verification
    vectors (≤ ``max_inputs`` primary inputs), so detector-sensitivity
    numbers are measured against the *complete* input space rather
    than a sample.
    """
    return [
        b.name
        for b in (*_SMALL, *_LARGE)
        if b.num_inputs <= max_inputs
    ]
