"""EPFL-class large arithmetic benchmarks (the *scale* tier).

The paper's corpus tops out at MCNC scale (≤135 inputs, a few thousand
MIG nodes).  The related mapping work this reproduction integrates with
(CONTRA, HIPE-MAGIC) evaluates on EPFL arithmetic circuits orders of
magnitude larger, so this module generates comparable structures —
ripple-carry adders and Wallace-tree multipliers — from the same
exactly-specified full/half-adder builders as the bundled corpus,
scaled until the resulting MIGs pass 100k gates.

The generators are deterministic (no RNG), so the tier is reproducible
byte-for-byte: ``repro-synth bench --what scale`` records R/S and wall
time per circuit in BENCH_runtime.json, and
``benchmarks/perf_guard.py --scale`` holds the ~10k-gate member under a
CI time budget.

Gate counts below are *MIG* gates after :func:`mig_from_netlist` (each
XOR costs 3 majority gates, each MAJ carry costs 1):

=============  ========
name           MIG size
=============  ========
rca1536        10,752
wallace32      8,352
wallace64      33,474
wallace128     132,627
=============  ========
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..network import GateType, Netlist
from .builders import _full_adder, _half_adder, _NetNamer, adder_netlist


def wallace_multiplier_netlist(width: int, name: str = "wallace") -> Netlist:
    """``a * b`` with ``width``-bit operands via Wallace-tree reduction.

    Partial products fill ``2*width - 1`` columns; full/half adders
    compress every column to at most two rows per round (carries spill
    into the next column), and a final ripple pass propagates the
    remaining two rows into the ``2*width``-bit product.
    """
    netlist = Netlist(name)
    namer = _NetNamer()
    a = [netlist.add_input(f"a{i}") for i in range(width)]
    b = [netlist.add_input(f"b{i}") for i in range(width)]
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            pp = namer.fresh("pp")
            netlist.add_gate(pp, GateType.AND, [a[i], b[j]])
            columns[i + j].append(pp)
    while any(len(column) > 2 for column in columns):
        next_columns: List[List[str]] = [[] for _ in range(len(columns) + 1)]
        for i, column in enumerate(columns):
            j = 0
            while len(column) - j >= 3:
                s, carry = _full_adder(
                    netlist, namer, column[j], column[j + 1], column[j + 2]
                )
                next_columns[i].append(s)
                next_columns[i + 1].append(carry)
                j += 3
            if len(column) - j == 2:
                s, carry = _half_adder(netlist, namer, column[j], column[j + 1])
                next_columns[i].append(s)
                next_columns[i + 1].append(carry)
                j += 2
            next_columns[i].extend(column[j:])
        while len(next_columns) > 2 * width and not next_columns[-1]:
            next_columns.pop()
        columns = next_columns
    # Final carry-propagate pass over the (≤2)-row columns.
    carry: str = ""
    product: List[str] = []
    for column in columns:
        operands = list(column)
        if carry:
            operands.append(carry)
        if not operands:
            zero = namer.fresh("zero")
            netlist.add_gate(zero, GateType.CONST0, [])
            product.append(zero)
            carry = ""
        elif len(operands) == 1:
            product.append(operands[0])
            carry = ""
        elif len(operands) == 2:
            s, carry = _half_adder(netlist, namer, operands[0], operands[1])
            product.append(s)
        else:
            s, carry = _full_adder(
                netlist, namer, operands[0], operands[1], operands[2]
            )
            product.append(s)
    if carry:
        product.append(carry)
    for bit in product[: 2 * width]:
        netlist.set_output(bit)
    return netlist


_SCALE_BUILDERS: Dict[str, Callable[[], Netlist]] = {
    "rca1536": lambda: adder_netlist(1536, name="rca1536"),
    "wallace32": lambda: wallace_multiplier_netlist(32, name="wallace32"),
    "wallace64": lambda: wallace_multiplier_netlist(64, name="wallace64"),
    "wallace128": lambda: wallace_multiplier_netlist(128, name="wallace128"),
}


def scale_names() -> List[str]:
    """The scale-tier benchmark names, smallest first."""
    return list(_SCALE_BUILDERS)


def load_scale_netlist(name: str) -> Netlist:
    """Build a scale-tier netlist by name (raises KeyError on unknown)."""
    if name not in _SCALE_BUILDERS:
        raise KeyError(
            f"unknown scale benchmark {name!r} "
            f"(expected one of {', '.join(_SCALE_BUILDERS)})"
        )
    netlist = _SCALE_BUILDERS[name]()
    netlist.validate()
    return netlist


def load_scale_mig(name: str):
    """Build a fresh MIG for a scale-tier benchmark (safe to mutate)."""
    from ..mig.build import mig_from_netlist

    return mig_from_netlist(load_scale_netlist(name))
