"""Paper-reported numbers, transcribed verbatim from Tables II and III.

Used by the benchmark harness to print paper-vs-measured comparisons
and by EXPERIMENTS.md.  Column layout of :data:`TABLE2`, per benchmark:
``(R, S)`` pairs for the six algorithm/realization configurations in
table order — Area-IMP, Depth-IMP, RRAM-costs-IMP, RRAM-costs-MAJ,
Step-IMP, Step-MAJ.  :data:`TABLE3_BDD` carries the BDD baseline [11]
``(R, S)``; :data:`TABLE3_AIG` the AIG baseline [12] step counts (that
paper does not report RRAM counts).
"""

from __future__ import annotations

from typing import Dict, Tuple

Pair = Tuple[int, int]

#: Table II — (R, S) per configuration, keyed by benchmark.
TABLE2: Dict[str, Dict[str, Pair]] = {}

_TABLE2_ROWS = [
    # name, inputs, AreaIMP(R,S), DepthIMP, RRAM-IMP, RRAM-MAJ, StepIMP, StepMAJ
    ("5xp1", 7, (170, 110), (213, 110), (199, 99), (149, 36), (264, 77), (182, 28)),
    ("alu4", 14, (1542, 286), (1858, 242), (2160, 176), (1370, 72), (2461, 165), (1717, 56)),
    ("apex1", 45, (2647, 241), (3399, 187), (3676, 165), (2343, 56), (4335, 121), (2972, 44)),
    ("apex2", 39, (355, 275), (583, 231), (531, 143), (358, 56), (653, 132), (435, 47)),
    ("apex4", 9, (3854, 198), (4122, 176), (4728, 143), (2820, 64), (5340, 132), (3602, 48)),
    ("apex5", 117, (1240, 275), (1757, 143), (1482, 141), (1053, 47), (1975, 98), (1286, 35)),
    ("apex6", 135, (1097, 198), (1277, 143), (1652, 121), (1018, 44), (1742, 99), (1191, 36)),
    ("apex7", 49, (300, 176), (389, 143), (408, 132), (277, 48), (526, 121), (348, 44)),
    ("b9", 41, (252, 99), (252, 88), (252, 87), (168, 32), (252, 66), (168, 28)),
    ("clip", 9, (256, 132), (276, 121), (312, 110), (217, 40), (380, 99), (275, 36)),
    ("cm150a", 21, (132, 99), (132, 99), (147, 77), (95, 32), (132, 88), (90, 32)),
    ("cm162a", 14, (90, 99), (90, 77), (90, 86), (60, 30), (90, 66), (65, 24)),
    ("cm163a", 16, (102, 77), (102, 77), (102, 76), (68, 27), (102, 66), (68, 24)),
    ("cordic", 23, (199, 164), (242, 132), (189, 121), (134, 48), (229, 99), (162, 39)),
    ("misex1", 8, (101, 77), (128, 66), (111, 66), (76, 24), (130, 55), (94, 20)),
    ("misex3", 14, (1547, 253), (2118, 231), (2207, 165), (1444, 67), (2621, 143), (1762, 52)),
    ("parity", 16, (224, 176), (224, 176), (216, 132), (152, 53), (216, 154), (152, 48)),
    ("seq", 41, (2032, 308), (2566, 242), (3189, 153), (1970, 64), (3551, 132), (2498, 60)),
    ("t481", 16, (102, 209), (168, 132), (148, 142), (90, 52), (188, 110), (123, 40)),
    ("table5", 17, (1598, 286), (2719, 231), (2630, 154), (1723, 64), (3393, 142), (2252, 52)),
    ("too_large", 38, (315, 341), (512, 264), (510, 164), (322, 64), (587, 121), (392, 48)),
    ("x1", 51, (442, 164), (736, 110), (569, 99), (435, 36), (711, 77), (509, 28)),
    ("x2", 10, (66, 88), (92, 77), (66, 76), (46, 26), (94, 66), (68, 24)),
    ("x3", 135, (1075, 198), (1363, 143), (1729, 99), (1008, 44), (1787, 99), (1201, 36)),
    ("x4", 94, (570, 121), (591, 88), (599, 77), (391, 28), (694, 66), (563, 24)),
]

TABLE2_CONFIGS = (
    "area_imp",
    "depth_imp",
    "rram_imp",
    "rram_maj",
    "step_imp",
    "step_maj",
)

TABLE2_INPUTS: Dict[str, int] = {}
for _row in _TABLE2_ROWS:
    _name, _inputs = _row[0], _row[1]
    TABLE2_INPUTS[_name] = _inputs
    TABLE2[_name] = dict(zip(TABLE2_CONFIGS, _row[2:]))

#: Table II Σ row, for the aggregate claims of Sec. IV-B.
TABLE2_TOTALS: Dict[str, Pair] = {
    "area_imp": (20308, 4650),
    "depth_imp": (25909, 3729),
    "rram_imp": (27902, 3004),
    "rram_maj": (17787, 1154),
    "step_imp": (32453, 2594),
    "step_maj": (22175, 953),
}

#: Table III (left) — the BDD-based baseline [11], (R, S).
TABLE3_BDD: Dict[str, Pair] = {
    "5xp1": (84, 73),
    "alu4": (642, 334),
    "apex1": (1626, 705),
    "apex2": (122, 237),
    "apex4": (2073, 447),
    "apex5": (806, 888),
    "apex6": (770, 1169),
    "apex7": (290, 437),
    "b9": (125, 298),
    "clip": (120, 89),
    "cm150a": (56, 127),
    "cm162a": (46, 102),
    "cm163a": (42, 116),
    "cordic": (32, 149),
    "misex1": (83, 69),
    "misex3": (444, 185),
    "parity": (23, 113),
    "seq": (1566, 692),
    "t481": (26, 107),
    "table5": (580, 168),
    "too_large": (282, 232),
    "x1": (230, 398),
    "x2": (60, 80),
    "x3": (770, 1169),
    "x4": (401, 642),
}

TABLE3_BDD_TOTALS: Pair = (11299, 9026)

#: Table III (right) — AIG baseline [12] step counts and the paper's
#: multi-objective MIG results on the small set: (AIG S, MIG-IMP (R,S),
#: MIG-MAJ (R,S)).
TABLE3_AIG: Dict[str, Tuple[int, Pair, Pair]] = {
    "9sym_d": (1418, (923, 175), (398, 60)),
    "con1f1": (18, (70, 75), (28, 26)),
    "con2f2": (19, (60, 76), (24, 24)),
    "exam1_d": (12, (43, 44), (19, 16)),
    "exam3_d": (12, (50, 55), (20, 23)),
    "max46_d": (427, (408, 131), (193, 48)),
    "newill_d": (50, (129, 109), (57, 40)),
    "newtag_d": (21, (90, 96), (36, 33)),
    "rd53f1": (27, (60, 64), (24, 25)),
    "rd53f2": (57, (77, 77), (35, 28)),
    "rd53f3": (32, (86, 66), (38, 24)),
    "rd73f1": (238, (291, 121), (140, 44)),
    "rd73f2": (46, (129, 88), (57, 32)),
    "rd73f3": (104, (193, 107), (84, 39)),
    "rd84f1": (351, (430, 153), (187, 52)),
    "rd84f2": (47, (172, 88), (76, 31)),
    "rd84f3": (23, (90, 50), (36, 15)),
    "rd84f4": (345, (473, 141), (214, 47)),
    "sao2f1": (102, (110, 108), (72, 35)),
    "sao2f2": (112, (234, 119), (98, 42)),
    "sao2f3": (380, (325, 143), (143, 55)),
    "sao2f4": (252, (326, 143), (163, 59)),
    "sym10_d": (1172, (1475, 187), (643, 72)),
    "t481_d": (1564, (1285, 187), (567, 72)),
    "xor5_d": (32, (86, 66), (38, 24)),
}

#: Σ row of Table III (right): AIG S, MIG-IMP (R, S), MIG-MAJ (R, S).
TABLE3_AIG_TOTALS: Tuple[int, Pair, Pair] = (6861, (7615, 2669), (3390, 966))

#: Headline aggregate claims of Sec. IV (for EXPERIMENTS.md checks).
PAPER_CLAIMS = {
    # Multi-objective (IMP) steps vs conventional area opt: -35.39 %.
    "rram_imp_steps_vs_area": 0.3539,
    # Multi-objective (IMP) steps vs conventional depth opt: -30.43 %.
    "rram_imp_steps_vs_depth": 0.3043,
    # Multi-objective (MAJ) RRAMs vs step opt (MAJ): -19.78 %.
    "rram_maj_rrams_vs_step": 0.1978,
    # ... at +21.09 % steps.
    "rram_maj_steps_penalty_vs_step": 0.2109,
    # BDD steps / MIG-MAJ steps ≈ 8×; / MIG-IMP ≈ 4.5 (text: "scales
    # down to 4.5"; the Σ-row ratio is 9026/3004 ≈ 3.0).
    "bdd_over_mig_maj_steps": 8.0,
    # apex6+x3 (135 inputs): BDD steps / MIG-MAJ steps ≈ 26.5×.
    "bdd_over_mig_maj_steps_largest": 26.5,
    # AIG steps / MIG-MAJ ≈ 7.1×, / MIG-IMP ≈ 2.57×.
    "aig_over_mig_maj_steps": 7.1,
    "aig_over_mig_imp_steps": 2.57,
}
