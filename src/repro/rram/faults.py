"""Opt-in fault models for the RRAM array executor.

The synthesis flow proves programs correct against ideal device
physics; this module asks the complementary question: *if the silicon
misbehaves, does the functional verifier notice?*  Four single-fault
classes are modelled, each a plausible RRAM defect:

``stuck-set`` / ``stuck-reset``
    A device welded into LRS (logic 1) or HRS (logic 0).  It senses its
    stuck value and ignores every switching pulse.
``dropped-write``
    One micro-op of one step silently fails to switch its destination
    (a pulse of insufficient amplitude/duration); the device keeps its
    previous state.
``sense-flip``
    The sense amplifier misreads one device during one step: every op
    of that step sensing the device observes the inverted value.

A :class:`FaultModel` bundles any number of such faults and is accepted
by :class:`repro.rram.array.RramArray` and
:func:`repro.rram.array.run_program`; with no model attached the
executor takes the original fault-free paths.

:func:`enumerate_fault_models` yields every single-fault model of one
class for a compiled program — the site list the fuzzing harness
(:mod:`repro.fuzz.harness`) sweeps when measuring detector sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from .isa import Program

#: The fault classes understood by :func:`enumerate_fault_models`.
FAULT_CLASSES: Tuple[str, ...] = (
    "stuck-set",
    "stuck-reset",
    "dropped-write",
    "sense-flip",
)


@dataclass(frozen=True)
class FaultModel:
    """An immutable set of injected faults for one execution.

    ``stuck`` maps device index → stuck logic value; ``dropped_writes``
    holds ``(step_index, op_index)`` pairs whose write is suppressed;
    ``sense_flips`` holds ``(step_index, device)`` pairs whose sensed
    value is inverted throughout that step.
    """

    stuck: Tuple[Tuple[int, bool], ...] = ()
    dropped_writes: FrozenSet[Tuple[int, int]] = frozenset()
    sense_flips: FrozenSet[Tuple[int, int]] = frozenset()
    #: Human-readable provenance, e.g. ``"stuck-set@dev3"``.
    label: str = ""

    @staticmethod
    def stuck_at(device: int, value: bool) -> "FaultModel":
        """A single stuck-at fault on ``device``."""
        kind = "stuck-set" if value else "stuck-reset"
        return FaultModel(
            stuck=((device, value),), label=f"{kind}@dev{device}"
        )

    @staticmethod
    def dropped_write(step: int, op: int) -> "FaultModel":
        """A single suppressed write: op ``op`` of step ``step``."""
        return FaultModel(
            dropped_writes=frozenset({(step, op)}),
            label=f"dropped-write@s{step}.op{op}",
        )

    @staticmethod
    def sense_flip(step: int, device: int) -> "FaultModel":
        """A single mis-sense of ``device`` during step ``step``."""
        return FaultModel(
            sense_flips=frozenset({(step, device)}),
            label=f"sense-flip@s{step}.dev{device}",
        )

    @property
    def stuck_map(self) -> Dict[int, bool]:
        """``stuck`` as a dict (the executor's lookup form)."""
        return dict(self.stuck)

    def describe(self) -> Dict[str, object]:
        """JSON-serializable description (for repro bundles)."""
        return {
            "label": self.label,
            "stuck": [[d, v] for d, v in self.stuck],
            "dropped_writes": sorted(self.dropped_writes),
            "sense_flips": sorted(self.sense_flips),
        }


@dataclass
class FaultVerdict:
    """Outcome of probing one fault model against one program.

    ``detected``  — some verification vector produced wrong outputs;
    ``exercised`` — the fault visibly corrupted at least one sensed or
    output value (a fault can be exercised yet *masked* at the outputs
    on every vector — exactly the misses the harness must report);
    ``latent``    — the fault never changed any observable value, so no
    functional test could possibly see it (excluded from sensitivity).
    """

    model: FaultModel
    detected: bool = False
    exercised: bool = False
    vectors_run: int = 0

    @property
    def missed(self) -> bool:
        """Exercised but never caught — a verification escape."""
        return self.exercised and not self.detected

    @property
    def latent(self) -> bool:
        return not self.exercised


@dataclass
class FaultCampaignStats:
    """Aggregated sensitivity numbers over one sweep of fault sites."""

    fault_class: str
    detected: int = 0
    missed: int = 0
    latent: int = 0
    misses: List[FaultVerdict] = field(default_factory=list)

    @property
    def sites(self) -> int:
        return self.detected + self.missed + self.latent

    @property
    def detection_rate(self) -> float:
        """Detected fraction of the *exercisable* faults (latent ones
        are invisible to any functional test and excluded, the standard
        fault-simulation convention)."""
        exercised = self.detected + self.missed
        if exercised == 0:
            return 1.0
        return self.detected / exercised

    def merge(self, other: "FaultCampaignStats") -> None:
        self.detected += other.detected
        self.missed += other.missed
        self.latent += other.latent
        self.misses.extend(other.misses)


def enumerate_fault_models(
    program: Program, fault_class: str
) -> List[FaultModel]:
    """Every single-fault model of ``fault_class`` for ``program``.

    Site spaces: one per device for the stuck classes, one per written
    micro-op for ``dropped-write``, one per (step, sensed device) pair
    for ``sense-flip``.
    """
    if fault_class == "stuck-set":
        return [
            FaultModel.stuck_at(d, True) for d in range(program.num_devices)
        ]
    if fault_class == "stuck-reset":
        return [
            FaultModel.stuck_at(d, False) for d in range(program.num_devices)
        ]
    if fault_class == "dropped-write":
        return [
            FaultModel.dropped_write(step_index, op_index)
            for step_index, step in enumerate(program.steps)
            for op_index in range(len(step.ops))
        ]
    if fault_class == "sense-flip":
        return [
            FaultModel.sense_flip(step_index, device)
            for step_index, step in enumerate(program.steps)
            for device in sorted(set(step.read_devices()))
        ]
    raise ValueError(
        f"unknown fault class {fault_class!r}; expected one of {FAULT_CLASSES}"
    )
