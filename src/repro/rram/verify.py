"""Functional verification of compiled RRAM programs.

Replays a compiled micro-program on the device-level array simulator
and checks every probed input assignment against the MIG's reference
simulation.  This closes the loop between the synthesis layer and the
hardware model: a program that passes computes the right function *by
construction of the device physics*, not by trusting the compiler.

:func:`probe_fault` additionally measures the verifier as a *detector*:
it replays the same vectors with a fault model attached and classifies
the fault as detected, missed (exercised but masked at every output),
or latent — the per-site primitive behind the fault-injection campaign
of :mod:`repro.fuzz.harness`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..mig import Mig
from .array import SenseTrace, run_program, run_program_traced
from .compiler import CompilationReport
from .faults import FaultModel, FaultVerdict

EXHAUSTIVE_LIMIT = 10
DEFAULT_SAMPLES = 64


def verification_vectors(
    num_inputs: int,
    *,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0x52AA,
) -> List[List[bool]]:
    """Input assignments to probe: exhaustive for small circuits,
    seeded random samples (plus all-0/all-1 corners) otherwise."""
    if num_inputs <= exhaustive_limit:
        return [
            [bool((assignment >> i) & 1) for i in range(num_inputs)]
            for assignment in range(1 << num_inputs)
        ]
    rng = random.Random(seed)
    vectors = [[False] * num_inputs, [True] * num_inputs]
    for _ in range(samples):
        vectors.append([rng.random() < 0.5 for _ in range(num_inputs)])
    return vectors


def verify_compiled(
    mig: Mig,
    report: CompilationReport,
    *,
    vectors: Optional[Sequence[Sequence[bool]]] = None,
) -> bool:
    """True iff the compiled program matches the MIG on every vector."""
    if vectors is None:
        vectors = verification_vectors(mig.num_pis)
    for vector in vectors:
        word = 0
        inputs = [1 if bit else 0 for bit in vector]
        expected_words = mig.simulate_words(inputs, 1)
        expected = [bool(w & 1) for w in expected_words]
        actual = run_program(report.program, list(vector))
        if actual != expected:
            return False
        del word
    return True


def clean_references(
    program, vectors: Sequence[Sequence[bool]]
) -> List[Tuple[List[bool], SenseTrace]]:
    """Fault-free (outputs, sense trace) per vector, computed once so a
    fault-site sweep can reuse them across hundreds of probes."""
    return [
        run_program_traced(program, list(vector)) for vector in vectors
    ]


def probe_fault(
    report: CompilationReport,
    fault_model: FaultModel,
    vectors: Sequence[Sequence[bool]],
    references: Optional[Sequence[Tuple[List[bool], SenseTrace]]] = None,
) -> FaultVerdict:
    """Replay the verification vectors with ``fault_model`` injected.

    Detected — outputs diverge from the fault-free run on some vector
    (the probe stops there, as a verifier would).  Exercised — some
    sensed value diverged even though outputs matched.  Neither —
    latent: the fault never altered an observable value.
    """
    if references is None:
        references = clean_references(report.program, vectors)
    verdict = FaultVerdict(model=fault_model)
    for vector, (clean_outputs, clean_trace) in zip(vectors, references):
        outputs, trace = run_program_traced(
            report.program, list(vector), fault_model=fault_model
        )
        verdict.vectors_run += 1
        if outputs != clean_outputs:
            verdict.detected = True
            verdict.exercised = True
            break
        if trace != clean_trace:
            verdict.exercised = True
    return verdict


def verify_compiled_or_raise(mig: Mig, report: CompilationReport) -> None:
    """Raise ``AssertionError`` with context when verification fails."""
    vectors = verification_vectors(mig.num_pis)
    for vector in vectors:
        inputs = [1 if bit else 0 for bit in vector]
        expected = [bool(w & 1) for w in mig.simulate_words(inputs, 1)]
        actual = run_program(report.program, list(vector))
        if actual != expected:
            raise AssertionError(
                f"compiled {report.program.realization} program for "
                f"{mig.name!r} disagrees with the MIG on input {vector}: "
                f"expected {expected}, got {actual}"
            )
