"""Functional verification of compiled RRAM programs.

Replays a compiled micro-program against the MIG's reference
simulation and checks every probed input assignment.  This closes the
loop between the synthesis layer and the hardware model: a program
that passes computes the right function *by construction of the device
physics*, not by trusting the compiler.

Verification is **bit-packed**: thousands of assignments advance per
bitwise operation through :func:`repro.sim.execute_program_slices`,
and the exhaustive sweep streams the ``2**n`` space in bounded-memory
chunks (:func:`repro.sim.iter_assignment_chunks`) instead of
materializing the assignment list.  Chunk windows are independent, so
:func:`find_first_mismatch` can shard them across worker processes
(``jobs > 1``) with a verdict that is bit-identical to the inline run.
Widths beyond :data:`EXHAUSTIVE_CAP` raise :class:`VerificationCapError`
up front — a clear refusal instead of an open-ended hang.

:func:`probe_fault` additionally measures the verifier as a *detector*:
it replays the same vectors with a fault model attached and classifies
the fault as detected, missed (exercised but masked at every output),
or latent — the per-site primitive behind the fault-injection campaign
of :mod:`repro.fuzz.harness`.  Faulty replays stay on the scalar
device-level executor: faults live in the device model.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..mig import Mig
from ..sim import (
    DEFAULT_CHUNK_BITS,
    execute_program_slices,
    first_difference,
    input_slices,
    chunk_mask,
    pack_vectors,
)
from .array import SenseTrace, run_program, run_program_traced
from .compiler import CompilationReport
from .faults import FaultModel, FaultVerdict

EXHAUSTIVE_LIMIT = 10
DEFAULT_SAMPLES = 64

#: Widest interface the exhaustive sweep will attempt (2**24 = 16M
#: assignments, ~4k chunks).  Beyond this the sweep would run for
#: hours; callers get a :class:`VerificationCapError` immediately.
EXHAUSTIVE_CAP = 24


class VerificationCapError(ValueError):
    """Exhaustive verification requested beyond :data:`EXHAUSTIVE_CAP`."""

    def __init__(self, num_inputs: int, cap: int = EXHAUSTIVE_CAP) -> None:
        super().__init__(
            f"exhaustive verification over {num_inputs} inputs would probe "
            f"2^{num_inputs} assignments; the supported cap is "
            f"2^{cap} — use sampled vectors instead"
        )
        self.num_inputs = num_inputs
        self.cap = cap


def _check_cap(num_inputs: int) -> None:
    if num_inputs > EXHAUSTIVE_CAP:
        raise VerificationCapError(num_inputs)


def verification_vectors(
    num_inputs: int,
    *,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0x52AA,
) -> List[List[bool]]:
    """Input assignments to probe: exhaustive for small circuits,
    seeded random samples (plus all-0/all-1 corners) otherwise."""
    if num_inputs <= exhaustive_limit:
        _check_cap(num_inputs)
        return [
            [bool((assignment >> i) & 1) for i in range(num_inputs)]
            for assignment in range(1 << num_inputs)
        ]
    rng = random.Random(seed)
    vectors = [[False] * num_inputs, [True] * num_inputs]
    for _ in range(samples):
        vectors.append([rng.random() < 0.5 for _ in range(num_inputs)])
    return vectors


def verify_window(program, mig: Mig, start: int, count: int) -> int:
    """Packed-compare one assignment window; first mismatch or ``-1``.

    The unit of work :func:`find_first_mismatch` shards across
    processes (:func:`repro.parallel.workers.verify_chunk_task`).
    """
    slices = input_slices(mig.num_pis, start, count)
    mask = chunk_mask(count)
    expected = mig.simulate_words(slices, mask)
    actual = execute_program_slices(program, slices, mask, validate=False)
    for expected_word, actual_word in zip(expected, actual):
        position = first_difference(expected_word, actual_word)
        if position >= 0:
            return start + position
    return -1


def _mismatch_exhaustive(
    program, mig: Mig, *, jobs: int = 1, chunk_bits: int = DEFAULT_CHUNK_BITS
) -> int:
    """Stream the full space in packed chunks; first mismatch or -1."""
    num_inputs = mig.num_pis
    _check_cap(num_inputs)
    program.validate()
    total = 1 << num_inputs
    windows = [
        (program, mig, start, min(chunk_bits, total - start))
        for start in range(0, total, chunk_bits)
    ]
    if jobs > 1 and len(windows) > 1:
        from ..parallel import run_ordered
        from ..parallel.workers import verify_chunk_task

        results = run_ordered(verify_chunk_task, windows, jobs=jobs)
    else:
        results = [verify_window(*window) for window in windows]
    for result in results:
        if result >= 0:
            return result
    return -1


def _mismatch_vectors(
    program, mig: Mig, vectors: Sequence[Sequence[bool]]
) -> Optional[List[bool]]:
    """Packed-compare an explicit vector batch; first bad vector or None."""
    program.validate()
    num_inputs = mig.num_pis
    for base in range(0, len(vectors), DEFAULT_CHUNK_BITS):
        batch = vectors[base : base + DEFAULT_CHUNK_BITS]
        slices, mask, _count = pack_vectors(batch, num_inputs)
        expected = mig.simulate_words(slices, mask)
        actual = execute_program_slices(program, slices, mask, validate=False)
        worst = -1
        for expected_word, actual_word in zip(expected, actual):
            position = first_difference(expected_word, actual_word)
            if position >= 0 and (worst < 0 or position < worst):
                worst = position
        if worst >= 0:
            return list(batch[worst])
    return None


def find_first_mismatch(
    mig: Mig,
    report: CompilationReport,
    *,
    vectors: Optional[Sequence[Sequence[bool]]] = None,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0x52AA,
    jobs: int = 1,
    chunk_bits: int = DEFAULT_CHUNK_BITS,
) -> Optional[List[bool]]:
    """First input assignment where program and MIG disagree, or None.

    Explicit ``vectors`` are probed as given; otherwise small
    interfaces are swept exhaustively (streamed, shardable across
    ``jobs`` workers) and larger ones probed with the seeded sample
    set of :func:`verification_vectors`.
    """
    if vectors is not None:
        return _mismatch_vectors(report.program, mig, vectors)
    num_inputs = mig.num_pis
    if num_inputs <= exhaustive_limit:
        assignment = _mismatch_exhaustive(
            report.program, mig, jobs=jobs, chunk_bits=chunk_bits
        )
        if assignment < 0:
            return None
        return [bool((assignment >> i) & 1) for i in range(num_inputs)]
    sampled = verification_vectors(
        num_inputs,
        exhaustive_limit=exhaustive_limit,
        samples=samples,
        seed=seed,
    )
    return _mismatch_vectors(report.program, mig, sampled)


def verify_compiled(
    mig: Mig,
    report: CompilationReport,
    *,
    vectors: Optional[Sequence[Sequence[bool]]] = None,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    jobs: int = 1,
) -> bool:
    """True iff the compiled program matches the MIG on every vector."""
    return (
        find_first_mismatch(
            mig,
            report,
            vectors=vectors,
            exhaustive_limit=exhaustive_limit,
            jobs=jobs,
        )
        is None
    )


def verify_compiled_or_raise(
    mig: Mig, report: CompilationReport, *, jobs: int = 1
) -> None:
    """Raise ``AssertionError`` with context when verification fails."""
    vector = find_first_mismatch(mig, report, jobs=jobs)
    if vector is None:
        return
    inputs = [1 if bit else 0 for bit in vector]
    expected = [bool(w & 1) for w in mig.simulate_words(inputs, 1)]
    actual = run_program(report.program, list(vector))
    raise AssertionError(
        f"compiled {report.program.realization} program for "
        f"{mig.name!r} disagrees with the MIG on input {vector}: "
        f"expected {expected}, got {actual}"
    )


def clean_references(
    program, vectors: Sequence[Sequence[bool]]
) -> List[Tuple[List[bool], SenseTrace]]:
    """Fault-free (outputs, sense trace) per vector, computed once so a
    fault-site sweep can reuse them across hundreds of probes."""
    return [
        run_program_traced(program, list(vector)) for vector in vectors
    ]


def probe_fault(
    report: CompilationReport,
    fault_model: FaultModel,
    vectors: Sequence[Sequence[bool]],
    references: Optional[Sequence[Tuple[List[bool], SenseTrace]]] = None,
) -> FaultVerdict:
    """Replay the verification vectors with ``fault_model`` injected.

    Detected — outputs diverge from the fault-free run on some vector
    (the probe stops there, as a verifier would).  Exercised — some
    sensed value diverged even though outputs matched.  Neither —
    latent: the fault never altered an observable value.
    """
    if references is None:
        references = clean_references(report.program, vectors)
    verdict = FaultVerdict(model=fault_model)
    for vector, (clean_outputs, clean_trace) in zip(vectors, references):
        outputs, trace = run_program_traced(
            report.program, list(vector), fault_model=fault_model
        )
        verdict.vectors_run += 1
        if outputs != clean_outputs:
            verdict.detected = True
            verdict.exercised = True
            break
        if trace != clean_trace:
            verdict.exercised = True
    return verdict
