"""Functional verification of compiled RRAM programs.

Replays a compiled micro-program on the device-level array simulator
and checks every probed input assignment against the MIG's reference
simulation.  This closes the loop between the synthesis layer and the
hardware model: a program that passes computes the right function *by
construction of the device physics*, not by trusting the compiler.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..mig import Mig
from .array import run_program
from .compiler import CompilationReport

EXHAUSTIVE_LIMIT = 10
DEFAULT_SAMPLES = 64


def verification_vectors(
    num_inputs: int,
    *,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0x52AA,
) -> List[List[bool]]:
    """Input assignments to probe: exhaustive for small circuits,
    seeded random samples (plus all-0/all-1 corners) otherwise."""
    if num_inputs <= exhaustive_limit:
        return [
            [bool((assignment >> i) & 1) for i in range(num_inputs)]
            for assignment in range(1 << num_inputs)
        ]
    rng = random.Random(seed)
    vectors = [[False] * num_inputs, [True] * num_inputs]
    for _ in range(samples):
        vectors.append([rng.random() < 0.5 for _ in range(num_inputs)])
    return vectors


def verify_compiled(
    mig: Mig,
    report: CompilationReport,
    *,
    vectors: Optional[Sequence[Sequence[bool]]] = None,
) -> bool:
    """True iff the compiled program matches the MIG on every vector."""
    if vectors is None:
        vectors = verification_vectors(mig.num_pis)
    for vector in vectors:
        word = 0
        inputs = [1 if bit else 0 for bit in vector]
        expected_words = mig.simulate_words(inputs, 1)
        expected = [bool(w & 1) for w in expected_words]
        actual = run_program(report.program, list(vector))
        if actual != expected:
            return False
        del word
    return True


def verify_compiled_or_raise(mig: Mig, report: CompilationReport) -> None:
    """Raise ``AssertionError`` with context when verification fails."""
    vectors = verification_vectors(mig.num_pis)
    for vector in vectors:
        inputs = [1 if bit else 0 for bit in vector]
        expected = [bool(w & 1) for w in mig.simulate_words(inputs, 1)]
        actual = run_program(report.program, list(vector))
        if actual != expected:
            raise AssertionError(
                f"compiled {report.program.realization} program for "
                f"{mig.name!r} disagrees with the MIG on input {vector}: "
                f"expected {expected}, got {actual}"
            )
