"""RRAM array executor.

Executes compiled :class:`~repro.rram.isa.Program` objects on a vector
of behavioural :class:`~repro.rram.device.RramDevice` models, enforcing
the simultaneity semantics of a step (all sensing happens before any
switching) and the write-once-per-step discipline.
"""

from __future__ import annotations

from typing import List, Sequence

from .device import RramDevice
from .isa import (
    Imp,
    IntrinsicMaj,
    LoadInput,
    MicroOp,
    Program,
    Step,
    WriteCopy,
    WriteLiteral,
)


class ExecutionError(RuntimeError):
    """Raised when a program violates array semantics at run time."""


class RramArray:
    """A bank of RRAM devices executing micro-programs step by step."""

    def __init__(self, num_devices: int) -> None:
        self.devices: List[RramDevice] = [
            RramDevice() for _ in range(num_devices)
        ]
        self.steps_executed = 0

    def state(self, index: int) -> bool:
        """Sense one device."""
        return self.devices[index].state

    def states(self) -> List[bool]:
        """Sense the whole array."""
        return [device.state for device in self.devices]

    def execute_step(self, step: Step, inputs: Sequence[bool] = ()) -> None:
        """Execute one simultaneous voltage-application cycle.

        ``inputs`` binds any :class:`LoadInput` ops in the step.
        """
        written = step.written_devices()
        if len(written) != len(set(written)):
            raise ExecutionError("a device is written twice within one step")
        # All reads observe the pre-step state.
        snapshot = [device.state for device in self.devices]
        for op in step.ops:
            self._apply(op, snapshot, inputs)
        self.steps_executed += 1

    def _apply(
        self, op: MicroOp, snapshot: Sequence[bool], inputs: Sequence[bool]
    ) -> None:
        if isinstance(op, WriteLiteral):
            self.devices[op.dst].write(op.value)
        elif isinstance(op, LoadInput):
            try:
                value = inputs[op.pi_index]
            except IndexError:
                raise ExecutionError(
                    f"program loads input {op.pi_index} but only "
                    f"{len(inputs)} were provided"
                ) from None
            self.devices[op.dst].write(bool(value))
        elif isinstance(op, WriteCopy):
            value = snapshot[op.src]
            self.devices[op.dst].write((not value) if op.negate else value)
        elif isinstance(op, Imp):
            # IMP drives dst to 1 when src reads 0 and holds it
            # otherwise — the VSET/VCOND interaction of Fig. 1:
            # q' = !p + q.
            if not snapshot[op.src]:
                self.devices[op.dst].set()
            else:
                self.devices[op.dst].apply(False, False)  # VCOND hold
        elif isinstance(op, IntrinsicMaj):
            self.devices[op.dst].apply(snapshot[op.p], snapshot[op.q])
        else:  # pragma: no cover - exhaustive over the ISA
            raise ExecutionError(f"unknown micro-op {op!r}")


def run_program(program: Program, input_values: Sequence[bool]) -> List[bool]:
    """Execute a program for one input assignment; returns PO values."""
    if len(input_values) != program.num_inputs:
        raise ExecutionError(
            f"program expects {program.num_inputs} inputs, "
            f"got {len(input_values)}"
        )
    program.validate()
    array = RramArray(program.num_devices)
    inputs = [bool(v) for v in input_values]
    for step in program.steps:
        array.execute_step(step, inputs)
    return [
        array.state(program.output_devices[po_index])
        for po_index in sorted(program.output_devices)
    ]
