"""RRAM array executor.

Executes compiled :class:`~repro.rram.isa.Program` objects on a vector
of behavioural :class:`~repro.rram.device.RramDevice` models, enforcing
the simultaneity semantics of a step (all sensing happens before any
switching) and the write-once-per-step discipline.

Fault injection and tracing
---------------------------
An optional :class:`~repro.rram.faults.FaultModel` degrades execution
(stuck devices, dropped writes, mis-sensed reads); an optional sense
trace records the values every op actually observed, step by step.
Comparing the traces of a clean and a faulty run tells whether a fault
was *exercised* even when the primary outputs happen to mask it — the
measurement :mod:`repro.fuzz` builds its detector-sensitivity numbers
on.  Both features are strictly opt-in: without them the executor runs
the original code paths.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .device import RramDevice
from .faults import FaultModel
from .isa import (
    Imp,
    IntrinsicMaj,
    LoadInput,
    MicroOp,
    PlacedProgram,
    Program,
    Step,
    WriteCopy,
    WriteLiteral,
)

#: A sense trace: per executed step, the values sensed by its ops in
#: op order (one entry per read slot; see :meth:`Step.read_devices`).
SenseTrace = List[Tuple[bool, ...]]


class ExecutionError(RuntimeError):
    """Raised when a program violates array semantics at run time."""


class RramArray:
    """A bank of RRAM devices executing micro-programs step by step."""

    def __init__(
        self,
        num_devices: int,
        *,
        fault_model: Optional[FaultModel] = None,
        record_trace: bool = False,
    ) -> None:
        stuck = fault_model.stuck_map if fault_model is not None else {}
        self.devices: List[RramDevice] = [
            RramDevice(stuck_at=stuck.get(index))
            for index in range(num_devices)
        ]
        self.steps_executed = 0
        self.fault_model = fault_model
        self.trace: SenseTrace = []
        self._record_trace = record_trace

    def state(self, index: int) -> bool:
        """Sense one device."""
        return self.devices[index].state

    def states(self) -> List[bool]:
        """Sense the whole array."""
        return [device.state for device in self.devices]

    def execute_step(self, step: Step, inputs: Sequence[bool] = ()) -> None:
        """Execute one simultaneous voltage-application cycle.

        ``inputs`` binds any :class:`LoadInput` ops in the step.
        """
        written = step.written_devices()
        if len(written) != len(set(written)):
            raise ExecutionError("a device is written twice within one step")
        # All reads observe the pre-step state.
        snapshot = [device.state for device in self.devices]
        fault = self.fault_model
        step_index = self.steps_executed
        if fault is not None and fault.sense_flips:
            for flip_step, device in fault.sense_flips:
                if flip_step == step_index and device < len(snapshot):
                    snapshot[device] = not snapshot[device]
        dropped = fault.dropped_writes if fault is not None else ()
        sensed: List[bool] = []
        for op_index, op in enumerate(step.ops):
            if self._record_trace:
                _trace_op_reads(op, snapshot, sensed)
            if dropped and (step_index, op_index) in dropped:
                continue
            self._apply(op, snapshot, inputs)
        if self._record_trace:
            self.trace.append(tuple(sensed))
        self.steps_executed += 1

    def _apply(
        self, op: MicroOp, snapshot: Sequence[bool], inputs: Sequence[bool]
    ) -> None:
        if isinstance(op, WriteLiteral):
            self.devices[op.dst].write(op.value)
        elif isinstance(op, LoadInput):
            try:
                value = inputs[op.pi_index]
            except IndexError:
                raise ExecutionError(
                    f"program loads input {op.pi_index} but only "
                    f"{len(inputs)} were provided"
                ) from None
            self.devices[op.dst].write(bool(value))
        elif isinstance(op, WriteCopy):
            value = snapshot[op.src]
            self.devices[op.dst].write((not value) if op.negate else value)
        elif isinstance(op, Imp):
            # IMP drives dst to 1 when src reads 0 and holds it
            # otherwise — the VSET/VCOND interaction of Fig. 1:
            # q' = !p + q.
            if not snapshot[op.src]:
                self.devices[op.dst].set()
            else:
                self.devices[op.dst].apply(False, False)  # VCOND hold
        elif isinstance(op, IntrinsicMaj):
            self.devices[op.dst].apply(snapshot[op.p], snapshot[op.q])
        else:  # pragma: no cover - exhaustive over the ISA
            raise ExecutionError(f"unknown micro-op {op!r}")


def _trace_op_reads(
    op: MicroOp, snapshot: Sequence[bool], sensed: List[bool]
) -> None:
    """Append the values ``op`` senses (in read-slot order)."""
    if isinstance(op, (WriteCopy, Imp)):
        sensed.append(snapshot[op.src])
    elif isinstance(op, IntrinsicMaj):
        sensed.append(snapshot[op.p])
        sensed.append(snapshot[op.q])


def run_program(
    program: Program,
    input_values: Sequence[bool],
    *,
    fault_model: Optional[FaultModel] = None,
) -> List[bool]:
    """Execute a program for one input assignment; returns PO values."""
    outputs, _ = run_program_traced(
        program, input_values, fault_model=fault_model, record_trace=False
    )
    return outputs


def run_program_traced(
    program: Program,
    input_values: Sequence[bool],
    *,
    fault_model: Optional[FaultModel] = None,
    record_trace: bool = True,
) -> Tuple[List[bool], SenseTrace]:
    """Execute a program and also return its sense trace.

    The trace lists, per step, every value the step's ops observed —
    the observable footprint fault exercise is judged against.
    """
    if len(input_values) != program.num_inputs:
        raise ExecutionError(
            f"program expects {program.num_inputs} inputs, "
            f"got {len(input_values)}"
        )
    program.validate()
    array = RramArray(
        program.num_devices,
        fault_model=fault_model,
        record_trace=record_trace,
    )
    inputs = [bool(v) for v in input_values]
    for step in program.steps:
        array.execute_step(step, inputs)
    outputs = [
        array.state(program.output_devices[po_index])
        for po_index in sorted(program.output_devices)
    ]
    return outputs, array.trace


def run_placed_program(
    placed: PlacedProgram,
    input_values: Sequence[bool],
    *,
    fault_model: Optional[FaultModel] = None,
) -> List[bool]:
    """Execute a placed (row-parallel) schedule; returns PO values.

    ``fault_model``, when given, must already be in *placed*
    coordinates — translate a sequential-coordinate model first with
    :meth:`PlacedProgram.remap_fault_model`.
    """
    outputs, _ = run_placed_program_traced(
        placed, input_values, fault_model=fault_model, record_trace=False
    )
    return outputs


def run_placed_program_traced(
    placed: PlacedProgram,
    input_values: Sequence[bool],
    *,
    fault_model: Optional[FaultModel] = None,
    record_trace: bool = True,
) -> Tuple[List[bool], SenseTrace]:
    """Execute a placed schedule and also return its sense trace.

    A :class:`~repro.rram.isa.ParallelStep` *is a* :class:`Step`, so
    each parallel step runs through the identical simultaneity
    machinery (:meth:`RramArray.execute_step`) as the sequential path:
    one pre-step snapshot, all senses before any switching, write-once
    enforcement.  Only the grouping of ops into steps differs.
    """
    program = placed.program
    if len(input_values) != program.num_inputs:
        raise ExecutionError(
            f"program expects {program.num_inputs} inputs, "
            f"got {len(input_values)}"
        )
    array = RramArray(
        program.num_devices,
        fault_model=fault_model,
        record_trace=record_trace,
    )
    inputs = [bool(v) for v in input_values]
    for step in placed.steps:
        array.execute_step(step, inputs)
    outputs = [
        array.state(program.output_devices[po_index])
        for po_index in sorted(program.output_devices)
    ]
    return outputs, array.trace
