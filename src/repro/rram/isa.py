"""Micro-operation ISA for the RRAM array.

A compiled program is a list of :class:`Step` objects; each step is a
set of micro-operations executed *simultaneously* (one voltage-
application cycle across the array).  The paper's step counts refer to
exactly these steps.

Reads are non-destructive (sensing); all reads within a step observe
the pre-step state, and no device may be written twice in one step —
both rules are enforced by the executor.

Operations
----------
``WriteLiteral``
    Unconditional set/clear pulse — data loading and the FALSE op.
``WriteCopy``
    Conditional write: sense a source device and drive the destination
    to (optionally the negation of) that value.  This is the
    VSET/VCOND conditioning described for step 2 of the paper's
    MAJ-based gadget, also used to move level results into the next
    level's gate inputs.
``Imp``
    Material implication (Fig. 1): ``dst <- !src + dst``.
``IntrinsicMaj``
    One conditional pulse exploiting the device's built-in majority
    (Fig. 2): ``dst <- M(val(p), !val(q), dst)``.
``LoadInput``
    Data-loading write of a primary input, bound at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union


@dataclass(frozen=True)
class WriteLiteral:
    """Unconditionally write ``value`` into device ``dst``."""

    dst: int
    value: bool


@dataclass(frozen=True)
class LoadInput:
    """Unconditionally write primary input ``pi_index`` into ``dst``.

    The value is bound by the executor when the program is run with a
    concrete input assignment; in hardware this is the external write
    of the data-loading step.
    """

    dst: int
    pi_index: int


@dataclass(frozen=True)
class WriteCopy:
    """Sense ``src`` and drive ``dst`` to its (possibly negated) value."""

    dst: int
    src: int
    negate: bool = False


@dataclass(frozen=True)
class Imp:
    """Material implication: ``dst <- !val(src) + val(dst)``."""

    src: int
    dst: int


@dataclass(frozen=True)
class IntrinsicMaj:
    """Built-in majority pulse: ``dst <- M(val(p), !val(q), val(dst))``.

    With ``q`` holding ``!y`` this computes ``M(val(p), y, dst)`` — the
    paper's 3-step MAJ gadget uses exactly this.
    """

    dst: int
    p: int
    q: int


MicroOp = Union[WriteLiteral, LoadInput, WriteCopy, Imp, IntrinsicMaj]


@dataclass
class Step:
    """One simultaneous voltage-application cycle."""

    ops: List[MicroOp] = field(default_factory=list)
    label: str = ""

    def written_devices(self) -> List[int]:
        """Destination device of every op (each must be unique)."""
        return [op.dst for op in self.ops]

    def read_devices(self) -> List[int]:
        """Devices sensed by this step."""
        reads: List[int] = []
        for op in self.ops:
            if isinstance(op, WriteCopy):
                reads.append(op.src)
            elif isinstance(op, Imp):
                reads.append(op.src)
            elif isinstance(op, IntrinsicMaj):
                reads.extend((op.p, op.q))
        return reads


@dataclass
class Program:
    """A compiled RRAM micro-program.

    ``num_inputs`` is the arity the executor binds ``LoadInput`` ops
    against; ``output_devices`` maps primary-output index → the device
    holding the result after the last step.
    """

    name: str
    realization: str
    num_devices: int
    steps: List[Step] = field(default_factory=list)
    num_inputs: int = 0
    output_devices: Dict[int, int] = field(default_factory=dict)

    @property
    def num_steps(self) -> int:
        """The program's step count — the paper's ``S`` as *measured*."""
        return len(self.steps)

    def validate(self) -> None:
        """Check per-step write-once discipline and device ranges."""
        for index, step in enumerate(self.steps):
            written = step.written_devices()
            if len(written) != len(set(written)):
                raise ValueError(f"step {index} writes a device twice")
            for device in written + step.read_devices():
                if not 0 <= device < self.num_devices:
                    raise ValueError(
                        f"step {index} references device {device} "
                        f"outside 0..{self.num_devices - 1}"
                    )
            for op in step.ops:
                if isinstance(op, LoadInput) and not 0 <= op.pi_index < self.num_inputs:
                    raise ValueError(
                        f"step {index} loads unknown input {op.pi_index}"
                    )
