"""Micro-operation ISA for the RRAM array.

A compiled program is a list of :class:`Step` objects; each step is a
set of micro-operations executed *simultaneously* (one voltage-
application cycle across the array).  The paper's step counts refer to
exactly these steps.

Reads are non-destructive (sensing); all reads within a step observe
the pre-step state, and no device may be written twice in one step —
both rules are enforced by the executor.

Operations
----------
``WriteLiteral``
    Unconditional set/clear pulse — data loading and the FALSE op.
``WriteCopy``
    Conditional write: sense a source device and drive the destination
    to (optionally the negation of) that value.  This is the
    VSET/VCOND conditioning described for step 2 of the paper's
    MAJ-based gadget, also used to move level results into the next
    level's gate inputs.
``Imp``
    Material implication (Fig. 1): ``dst <- !src + dst``.
``IntrinsicMaj``
    One conditional pulse exploiting the device's built-in majority
    (Fig. 2): ``dst <- M(val(p), !val(q), dst)``.
``LoadInput``
    Data-loading write of a primary input, bound at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union


@dataclass(frozen=True)
class WriteLiteral:
    """Unconditionally write ``value`` into device ``dst``."""

    dst: int
    value: bool


@dataclass(frozen=True)
class LoadInput:
    """Unconditionally write primary input ``pi_index`` into ``dst``.

    The value is bound by the executor when the program is run with a
    concrete input assignment; in hardware this is the external write
    of the data-loading step.
    """

    dst: int
    pi_index: int


@dataclass(frozen=True)
class WriteCopy:
    """Sense ``src`` and drive ``dst`` to its (possibly negated) value."""

    dst: int
    src: int
    negate: bool = False


@dataclass(frozen=True)
class Imp:
    """Material implication: ``dst <- !val(src) + val(dst)``."""

    src: int
    dst: int


@dataclass(frozen=True)
class IntrinsicMaj:
    """Built-in majority pulse: ``dst <- M(val(p), !val(q), val(dst))``.

    With ``q`` holding ``!y`` this computes ``M(val(p), y, dst)`` — the
    paper's 3-step MAJ gadget uses exactly this.
    """

    dst: int
    p: int
    q: int


MicroOp = Union[WriteLiteral, LoadInput, WriteCopy, Imp, IntrinsicMaj]


def op_sensed(op: MicroOp) -> Tuple[int, ...]:
    """Devices whose value ``op`` observes through the sense path.

    This is the *sense-amplifier* footprint: the devices whose stored
    value must travel through a wordline's shared sense path during the
    step.  The read-modify-write destinations of ``Imp`` and
    ``IntrinsicMaj`` are deliberately excluded — the destination's own
    state participates through the device physics of the applied pulse,
    not through the periphery (see :func:`op_depends` for the full data
    dependency set).
    """
    if isinstance(op, (WriteCopy, Imp)):
        return (op.src,)
    if isinstance(op, IntrinsicMaj):
        return (op.p, op.q)
    return ()


def op_depends(op: MicroOp) -> Tuple[int, ...]:
    """Devices whose *pre-step* value the op's outcome depends on.

    A superset of :func:`op_sensed`: the conditional pulses ``Imp`` and
    ``IntrinsicMaj`` are read-modify-write on their destination, so the
    destination's prior state is a data dependency even though it never
    crosses the sense path.  Schedulers must order against this set,
    not the sensed set.
    """
    if isinstance(op, (Imp, IntrinsicMaj)):
        return op_sensed(op) + (op.dst,)
    return op_sensed(op)


@dataclass
class Step:
    """One simultaneous voltage-application cycle."""

    ops: List[MicroOp] = field(default_factory=list)
    label: str = ""

    def written_devices(self) -> List[int]:
        """Destination device of every op (each must be unique)."""
        return [op.dst for op in self.ops]

    def read_devices(self) -> List[int]:
        """Devices sensed by this step."""
        reads: List[int] = []
        for op in self.ops:
            if isinstance(op, WriteCopy):
                reads.append(op.src)
            elif isinstance(op, Imp):
                reads.append(op.src)
            elif isinstance(op, IntrinsicMaj):
                reads.extend((op.p, op.q))
        return reads


@dataclass(frozen=True)
class LayoutBlock:
    """A cohort of devices a placer should keep together.

    The compiler emits one block per gadget (the gate's slot devices in
    role order) plus singleton blocks for primary-input, constant, and
    output-inversion registers.  Device recycling means a reused device
    index can appear in more than one block; placers treat blocks as
    locality *preferences* over first placement, never as a partition.
    """

    label: str
    devices: Tuple[int, ...]


@dataclass
class Program:
    """A compiled RRAM micro-program.

    ``num_inputs`` is the arity the executor binds ``LoadInput`` ops
    against; ``output_devices`` maps primary-output index → the device
    holding the result after the last step.  ``blocks`` is optional
    placement metadata (see :class:`LayoutBlock`) consumed by
    :mod:`repro.crossbar`.
    """

    name: str
    realization: str
    num_devices: int
    steps: List[Step] = field(default_factory=list)
    num_inputs: int = 0
    output_devices: Dict[int, int] = field(default_factory=dict)
    blocks: List[LayoutBlock] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        """The program's step count — the paper's ``S`` as *measured*."""
        return len(self.steps)

    def validate(self) -> None:
        """Check per-step write-once discipline and device ranges."""
        for index, step in enumerate(self.steps):
            written = step.written_devices()
            if len(written) != len(set(written)):
                raise ValueError(f"step {index} writes a device twice")
            for device in written + step.read_devices():
                if not 0 <= device < self.num_devices:
                    raise ValueError(
                        f"step {index} references device {device} "
                        f"outside 0..{self.num_devices - 1}"
                    )
            for op in step.ops:
                if isinstance(op, LoadInput) and not 0 <= op.pi_index < self.num_inputs:
                    raise ValueError(
                        f"step {index} loads unknown input {op.pi_index}"
                    )
        for block in self.blocks:
            for device in block.devices:
                if not 0 <= device < self.num_devices:
                    raise ValueError(
                        f"layout block {block.label!r} references device "
                        f"{device} outside 0..{self.num_devices - 1}"
                    )


@dataclass
class ParallelStep(Step):
    """One crossbar voltage-application cycle of a placed schedule.

    Identical simultaneity semantics to :class:`Step` (the executor
    treats it as one), plus per-op provenance: ``sources[i]`` is the
    ``(sequential step index, op index)`` the op at position ``i`` came
    from in the source :class:`Program`.
    """

    sources: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class PlacedProgram:
    """A compiled program mapped onto a W×H crossbar.

    ``cells`` maps each device index to its ``(row, col)`` cell
    (wordline, bitline); ``steps`` is the row-parallel schedule, a
    regrouping of the source program's micro-ops that the scheduler
    guarantees is execution-equivalent and never longer.  The two
    provenance maps make single-fault models transferable between the
    sequential and placed schedules (see :meth:`remap_fault_model`):

    ``op_map``
        sequential ``(step, op index)`` → placed ``(step, op index)``.
    ``sense_map``
        sequential ``(step, sensed device)`` → placed step index; the
        scheduler keeps each sequential step's senses of one device in
        a single parallel step that no other sequential step's senses
        of that device share, so the mapping is exact.
    """

    program: Program
    width: int
    height: int
    cells: Dict[int, Tuple[int, int]]
    steps: List[ParallelStep] = field(default_factory=list)
    op_map: Dict[Tuple[int, int], Tuple[int, int]] = field(default_factory=dict)
    sense_map: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def num_parallel_steps(self) -> int:
        return len(self.steps)

    @property
    def num_sequential_steps(self) -> int:
        return self.program.num_steps

    @property
    def step_ratio(self) -> float:
        """Parallel / sequential step count (≤ 1.0 by construction)."""
        if not self.program.steps:
            return 1.0
        return len(self.steps) / len(self.program.steps)

    @property
    def utilization(self) -> float:
        """Occupied fraction of the array's cells."""
        return self.program.num_devices / max(1, self.width * self.height)

    def cell(self, device: int) -> Tuple[int, int]:
        """The ``(row, col)`` a device is placed at."""
        return self.cells[device]

    def as_program(self) -> Program:
        """The parallel schedule as a plain :class:`Program`.

        Step objects are shared (ParallelStep *is a* Step), so the
        result executes on every existing backend — notably the packed
        kernels of :mod:`repro.sim` — without conversion cost.
        """
        return Program(
            name=f"{self.program.name}@{self.width}x{self.height}",
            realization=self.program.realization,
            num_devices=self.program.num_devices,
            steps=list(self.steps),
            num_inputs=self.program.num_inputs,
            output_devices=dict(self.program.output_devices),
            blocks=list(self.program.blocks),
        )

    def remap_fault_model(self, model):
        """Translate a sequential-coordinate fault model to this schedule.

        Stuck faults are device-indexed and pass through; dropped
        writes follow ``op_map``; sense flips follow ``sense_map``.
        Executing the placed schedule under the remapped model is
        bit-identical to executing the sequential program under the
        original model.
        """
        from .faults import FaultModel  # isa is imported by faults

        dropped = frozenset(
            self.op_map[site] for site in model.dropped_writes
        )
        flips = frozenset(
            (self.sense_map[(step, device)], device)
            for step, device in model.sense_flips
        )
        return FaultModel(
            stuck=model.stuck,
            dropped_writes=dropped,
            sense_flips=flips,
            label=f"{model.label}@placed" if model.label else "placed",
        )

    def validate(self) -> None:
        """Structural checks: placement shape and schedule provenance.

        The crossbar-specific legality rules (sense-path conflicts) are
        checked by :func:`repro.crossbar.check_placed`; this method
        covers everything expressible without the conflict model:
        in-bounds injective placement of every device, per-step
        write-once discipline, and provenance that is a bijection onto
        the source program's ops with identical op payloads.
        """
        if len(self.cells) != self.program.num_devices:
            raise ValueError(
                f"placement covers {len(self.cells)} devices, program "
                f"has {self.program.num_devices}"
            )
        seen_cells: Dict[Tuple[int, int], int] = {}
        for device, (row, col) in self.cells.items():
            if not (0 <= row < self.height and 0 <= col < self.width):
                raise ValueError(
                    f"device {device} placed at ({row}, {col}) outside "
                    f"the {self.width}x{self.height} array"
                )
            if (row, col) in seen_cells:
                raise ValueError(
                    f"devices {seen_cells[(row, col)]} and {device} "
                    f"share cell ({row}, {col})"
                )
            seen_cells[(row, col)] = device
        expected_sites = {
            (step_index, op_index)
            for step_index, step in enumerate(self.program.steps)
            for op_index in range(len(step.ops))
        }
        covered: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for par_index, step in enumerate(self.steps):
            written = step.written_devices()
            if len(written) != len(set(written)):
                raise ValueError(
                    f"parallel step {par_index} writes a device twice"
                )
            if len(step.sources) != len(step.ops):
                raise ValueError(
                    f"parallel step {par_index} has {len(step.ops)} ops "
                    f"but {len(step.sources)} provenance entries"
                )
            for op_index, (op, source) in enumerate(
                zip(step.ops, step.sources)
            ):
                if source in covered:
                    raise ValueError(
                        f"sequential op {source} scheduled twice"
                    )
                covered[source] = (par_index, op_index)
                seq_step, seq_op = source
                if (
                    source not in expected_sites
                    or self.program.steps[seq_step].ops[seq_op] != op
                ):
                    raise ValueError(
                        f"parallel step {par_index} op {op_index} does "
                        f"not match sequential op {source}"
                    )
        if set(covered) != expected_sites:
            missing = sorted(expected_sites - set(covered))[:3]
            raise ValueError(
                f"schedule drops sequential ops (first missing: {missing})"
            )
        for source, site in self.op_map.items():
            if covered.get(source) != site:
                raise ValueError(
                    f"op_map entry {source} -> {site} disagrees with "
                    f"the schedule's provenance"
                )
