"""RRAM in-memory computing substrate: device model, micro-op ISA,
array executor, majority gadgets, MIG compiler, and verification."""

from .device import RramDevice, next_state
from .isa import (
    Imp,
    IntrinsicMaj,
    LoadInput,
    MicroOp,
    Program,
    Step,
    WriteCopy,
    WriteLiteral,
)
from .array import ExecutionError, RramArray, run_program
from .gadgets import (
    IMP_GADGET_DEVICES,
    IMP_GADGET_STEPS,
    MAJ_GADGET_DEVICES,
    MAJ_GADGET_STEPS,
    standalone_majority_program,
)
from .compiler import CompilationError, CompilationReport, compile_mig
from .plim import PlimReport, compile_plim
from .energy import EnergyReport, measure_energy
from .verify import (
    verification_vectors,
    verify_compiled,
    verify_compiled_or_raise,
)

__all__ = [
    "RramDevice",
    "next_state",
    "Imp",
    "IntrinsicMaj",
    "LoadInput",
    "MicroOp",
    "Program",
    "Step",
    "WriteCopy",
    "WriteLiteral",
    "ExecutionError",
    "RramArray",
    "run_program",
    "IMP_GADGET_DEVICES",
    "IMP_GADGET_STEPS",
    "MAJ_GADGET_DEVICES",
    "MAJ_GADGET_STEPS",
    "standalone_majority_program",
    "CompilationError",
    "CompilationReport",
    "compile_mig",
    "PlimReport",
    "compile_plim",
    "EnergyReport",
    "measure_energy",
    "verification_vectors",
    "verify_compiled",
    "verify_compiled_or_raise",
]
