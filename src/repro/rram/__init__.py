"""RRAM in-memory computing substrate: device model, micro-op ISA,
array executor, majority gadgets, MIG compiler, and verification."""

from .device import RramDevice, next_state
from .isa import (
    Imp,
    IntrinsicMaj,
    LoadInput,
    MicroOp,
    Program,
    Step,
    WriteCopy,
    WriteLiteral,
)
from .array import ExecutionError, RramArray, SenseTrace, run_program, run_program_traced
from .faults import (
    FAULT_CLASSES,
    FaultCampaignStats,
    FaultModel,
    FaultVerdict,
    enumerate_fault_models,
)
from .gadgets import (
    IMP_GADGET_DEVICES,
    IMP_GADGET_STEPS,
    MAJ_GADGET_DEVICES,
    MAJ_GADGET_STEPS,
    standalone_majority_program,
)
from .compiler import CompilationError, CompilationReport, compile_mig
from .plim import PlimReport, compile_plim
from .energy import EnergyReport, measure_energy
from .verify import (
    EXHAUSTIVE_CAP,
    VerificationCapError,
    clean_references,
    find_first_mismatch,
    probe_fault,
    verification_vectors,
    verify_compiled,
    verify_compiled_or_raise,
    verify_window,
)

__all__ = [
    "RramDevice",
    "next_state",
    "Imp",
    "IntrinsicMaj",
    "LoadInput",
    "MicroOp",
    "Program",
    "Step",
    "WriteCopy",
    "WriteLiteral",
    "ExecutionError",
    "RramArray",
    "SenseTrace",
    "run_program",
    "run_program_traced",
    "FAULT_CLASSES",
    "FaultCampaignStats",
    "FaultModel",
    "FaultVerdict",
    "enumerate_fault_models",
    "IMP_GADGET_DEVICES",
    "IMP_GADGET_STEPS",
    "MAJ_GADGET_DEVICES",
    "MAJ_GADGET_STEPS",
    "standalone_majority_program",
    "CompilationError",
    "CompilationReport",
    "compile_mig",
    "PlimReport",
    "compile_plim",
    "EnergyReport",
    "measure_energy",
    "EXHAUSTIVE_CAP",
    "VerificationCapError",
    "clean_references",
    "find_first_mismatch",
    "probe_fault",
    "verification_vectors",
    "verify_compiled",
    "verify_compiled_or_raise",
    "verify_window",
]
