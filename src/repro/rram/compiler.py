"""MIG → RRAM micro-program compiler (paper Sec. III-B).

Implements the paper's level-by-level design methodology:

* the graph is evaluated one MIG level at a time, inputs first;
* every gate of a level occupies its own gadget block (6 devices for
  the IMP realization, 4 for MAJ) and all gadgets of a level execute
  their homologous micro-steps simultaneously, so a level costs
  ``K_S`` steps (10 / 3) regardless of its width;
* a level whose gates have complemented ingoing edges spends **one**
  extra step executing all the required NOT operations in parallel
  (each into its own pre-cleared device) — the ``+L`` term of Table I;
* complemented primary outputs are inverted in one final extra step
  (the "virtual level" of the cost-model convention in DESIGN.md §5);
* devices are recycled through a free list as soon as the values they
  hold are dead, reproducing the paper's RRAM-reuse scheme.

The emitted step count is exactly the analytic ``S = K_S·D + L`` of
Table I.  The emitted *device* count is reported separately from the
analytic ``R = max(K_R·N_i + C_i)``: the analytic formula charges only
the widest level, whereas a real schedule must additionally keep
inter-level values and primary inputs alive — a deliberate idealization
of the paper that EXPERIMENTS.md quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..mig import Mig, Realization, level_stats, rram_costs, signal_is_complemented, signal_node
from ..mig.views import RramCosts
from ..telemetry import metrics, traced
from .gadgets import (
    IMP_GADGET_DEVICES,
    IMP_RESULT_SLOT,
    MAJ_GADGET_DEVICES,
    MAJ_RESULT_SLOT,
    SLOT_A,
    SLOT_B,
    SLOT_C,
    SLOT_X,
    SLOT_Y,
    SLOT_Z,
    imp_gadget_compute_ops,
    maj_gadget_compute_ops,
)
from .isa import (
    Imp,
    LayoutBlock,
    LoadInput,
    MicroOp,
    Program,
    Step,
    WriteCopy,
    WriteLiteral,
)


class CompilationError(RuntimeError):
    """Raised when an MIG cannot be scheduled onto the array."""


@dataclass
class CompilationReport:
    """A compiled program together with analytic and measured costs."""

    program: Program
    analytic: RramCosts
    measured_steps: int
    measured_devices: int

    @property
    def steps_match_model(self) -> bool:
        """True iff the emitted step count equals Table I's ``S``.

        Degenerate gate-free circuits (outputs wired to inputs or
        constants) still need one data-loading step, which the model's
        ``S = K_S·D + L`` cannot account for at ``D = 0``.
        """
        expected = self.analytic.steps
        if self.analytic.depth == 0 and self.program.steps:
            expected += 1
        return self.measured_steps == expected


class _Allocator:
    """Free-list device allocator with a high-water mark."""

    def __init__(self) -> None:
        self._free: List[int] = []
        self._next = 0

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        index = self._next
        self._next += 1
        return index

    def release(self, index: int) -> None:
        self._free.append(index)

    @property
    def high_water(self) -> int:
        return self._next


@traced("rram.compile")
def compile_mig(mig: Mig, realization: Realization) -> CompilationReport:
    """Compile an MIG into an executable RRAM micro-program."""
    stats = level_stats(mig)
    levels = stats.node_levels
    depth = stats.depth
    order = mig.reachable_nodes()

    by_level: Dict[int, List[int]] = {}
    for node in order:
        by_level.setdefault(levels[node], []).append(node)

    # Lifetime analysis: the highest level at which each value is read.
    last_use: Dict[int, int] = {}
    for node in order:
        for child in mig.children(node):
            child_node = signal_node(child)
            if child_node == 0:
                continue
            last_use[child_node] = max(
                last_use.get(child_node, 0), levels[node]
            )
    po_driver_levels: Dict[int, int] = {}
    for po in mig.pos:
        driver = signal_node(po)
        if driver != 0:
            last_use[driver] = depth + 1  # keep until the end
            po_driver_levels[driver] = depth + 1

    is_imp = realization is Realization.IMP
    gadget_devices = IMP_GADGET_DEVICES if is_imp else MAJ_GADGET_DEVICES
    result_slot = IMP_RESULT_SLOT if is_imp else MAJ_RESULT_SLOT
    compute_ops = imp_gadget_compute_ops if is_imp else maj_gadget_compute_ops

    allocator = _Allocator()
    steps: List[Step] = []
    registers: Dict[int, int] = {}  # live value node -> device
    # Placement metadata: cohorts of devices a crossbar placer should
    # keep together (gadgets) or may scatter (singletons).  Recycling
    # means a device index can recur across blocks; placers honour the
    # first block that mentions a device.
    layout_blocks: List[LayoutBlock] = []

    # Primary-input registers live for the whole program: any level may
    # read a PI (directly or through a complemented edge).
    pi_indices: Dict[int, int] = {node: i for i, node in enumerate(mig.pis)}
    used_pis = [
        node for node in mig.pis if node in last_use or node in po_driver_levels
    ]
    initial_load_ops: List[MicroOp] = []
    if used_pis:
        pi_devices = []
        for node in used_pis:
            device = allocator.allocate()
            registers[node] = device
            initial_load_ops.append(LoadInput(device, pi_indices[node]))
            pi_devices.append(device)
        layout_blocks.append(LayoutBlock("pi", tuple(pi_devices)))

    # Constant registers only if some PO reads the constant node.
    const_zero_device: Optional[int] = None
    const_one_device: Optional[int] = None
    for po in mig.pos:
        if signal_node(po) != 0:
            continue
        if signal_is_complemented(po) and const_one_device is None:
            const_one_device = allocator.allocate()
            initial_load_ops.append(WriteLiteral(const_one_device, True))
            layout_blocks.append(LayoutBlock("const", (const_one_device,)))
        elif not signal_is_complemented(po) and const_zero_device is None:
            const_zero_device = allocator.allocate()
            initial_load_ops.append(WriteLiteral(const_zero_device, False))
            layout_blocks.append(LayoutBlock("const", (const_zero_device,)))

    # Devices for complemented POs, cleared up front, written at the end.
    po_invert_devices: Dict[int, int] = {}
    for po_index, po in enumerate(mig.pos):
        if signal_is_complemented(po) and signal_node(po) != 0:
            device = allocator.allocate()
            po_invert_devices[po_index] = device
            initial_load_ops.append(WriteLiteral(device, False))
            layout_blocks.append(
                LayoutBlock(f"po-invert-{po_index}", (device,))
            )

    def source_register(child: int) -> int:
        try:
            return registers[child]
        except KeyError:
            raise CompilationError(
                f"value of node {child} needed but not live"
            ) from None

    for level in range(1, depth + 1):
        gates = by_level.get(level, [])
        if not gates:
            continue
        load_ops: List[MicroOp] = []
        invert_ops: List[MicroOp] = []
        blocks: Dict[int, Dict[int, int]] = {}
        for gate in gates:
            slots = [allocator.allocate() for _ in range(gadget_devices)]
            # Gadget slots need not be contiguous; compute ops are
            # written against local roles, so keep a role → device map.
            base_map = {offset: device for offset, device in enumerate(slots)}
            children = mig.children(gate)
            for slot_role, child in zip((SLOT_X, SLOT_Y, SLOT_Z), children):
                device = base_map[slot_role]
                child_node = signal_node(child)
                complemented = signal_is_complemented(child)
                if child_node == 0:
                    load_ops.append(WriteLiteral(device, complemented))
                elif complemented:
                    # Pre-clear; the invert step IMPs the source in.
                    load_ops.append(WriteLiteral(device, False))
                    invert_ops.append(Imp(source_register(child_node), device))
                elif mig.is_pi(child_node):
                    load_ops.append(LoadInput(device, pi_indices[child_node]))
                else:
                    load_ops.append(
                        WriteCopy(device, source_register(child_node))
                    )
            working_slots = (
                (SLOT_A, SLOT_B, SLOT_C) if is_imp else (SLOT_A,)
            )
            for slot_role in working_slots:
                load_ops.append(WriteLiteral(base_map[slot_role], False))
            blocks[gate] = base_map
            layout_blocks.append(
                LayoutBlock(f"L{level}-g{gate}", tuple(slots))
            )

        steps.append(Step(ops=load_ops, label=f"L{level}-load"))
        if invert_ops:
            steps.append(Step(ops=invert_ops, label=f"L{level}-invert"))

        # Merge homologous gadget steps across all gates of the level.
        num_compute_steps = (10 if is_imp else 3) - 1
        merged: List[List[MicroOp]] = [[] for _ in range(num_compute_steps)]
        for gate in gates:
            base_map = blocks[gate]
            groups = compute_ops(0)
            for step_index, group in enumerate(groups):
                for op in group:
                    merged[step_index].append(_remap_op(op, base_map))
        for step_index, ops in enumerate(merged):
            steps.append(
                Step(ops=ops, label=f"L{level}-compute-{step_index + 2}")
            )

        # Release: everything in each gadget except the result device,
        # then any value whose last consumer was this level.
        for gate in gates:
            base_map = blocks[gate]
            for slot_role, device in base_map.items():
                if slot_role == result_slot:
                    registers[gate] = device
                else:
                    allocator.release(device)
        for value_node in list(registers):
            if value_node == 0 or mig.is_pi(value_node):
                continue
            if last_use.get(value_node, 0) <= level and value_node not in po_driver_levels:
                allocator.release(registers.pop(value_node))

    # Final inversion step for complemented POs (the virtual level).
    if po_invert_devices:
        final_ops: List[MicroOp] = []
        for po_index, device in po_invert_devices.items():
            driver = signal_node(mig.pos[po_index])
            final_ops.append(Imp(source_register(driver), device))
        steps.append(Step(ops=final_ops, label="po-invert"))

    output_devices: Dict[int, int] = {}
    for po_index, po in enumerate(mig.pos):
        if po_index in po_invert_devices:
            output_devices[po_index] = po_invert_devices[po_index]
            continue
        driver = signal_node(po)
        if driver == 0:
            device = (
                const_one_device
                if signal_is_complemented(po)
                else const_zero_device
            )
            assert device is not None
            output_devices[po_index] = device
        else:
            output_devices[po_index] = source_register(driver)

    # The paper folds data loading into the first level's load step
    # (its step "01"); merging keeps the measured step count equal to
    # the Table I model.
    if initial_load_ops:
        if steps and steps[0].label.endswith("-load"):
            steps[0] = Step(
                ops=initial_load_ops + steps[0].ops, label=steps[0].label
            )
        else:
            steps.insert(0, Step(ops=initial_load_ops, label="load-inputs"))

    program = Program(
        name=mig.name,
        realization=realization.value,
        num_devices=allocator.high_water,
        steps=steps,
        num_inputs=mig.num_pis,
        output_devices=output_devices,
        blocks=layout_blocks,
    )
    program.validate()
    registry = metrics()
    registry.counter("rram.compile.programs").inc()
    registry.histogram("rram.compile.measured_steps").observe(
        program.num_steps
    )
    registry.histogram("rram.compile.measured_devices").observe(
        program.num_devices
    )
    return CompilationReport(
        program=program,
        analytic=rram_costs(mig, realization),
        measured_steps=program.num_steps,
        measured_devices=program.num_devices,
    )


def _remap_op(op: MicroOp, base_map: Dict[int, int]) -> MicroOp:
    """Rewrite a gadget-local op onto the gate's actual devices."""
    from .isa import IntrinsicMaj  # local import to avoid cycle noise

    if isinstance(op, WriteLiteral):
        return WriteLiteral(base_map[op.dst], op.value)
    if isinstance(op, Imp):
        return Imp(base_map[op.src], base_map[op.dst])
    if isinstance(op, WriteCopy):
        return WriteCopy(base_map[op.dst], base_map[op.src], op.negate)
    if isinstance(op, IntrinsicMaj):
        return IntrinsicMaj(base_map[op.dst], base_map[op.p], base_map[op.q])
    raise CompilationError(f"cannot remap op {op!r}")
