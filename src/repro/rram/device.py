"""Behavioural model of a single bipolar resistive switch (RRAM).

The device is a two-terminal element whose internal resistance encodes
one bit: logic 0 = high resistance (HRS), logic 1 = low resistance
(LRS).  Paper Fig. 2 gives the switching behaviour as a function of the
logic levels applied to the top (``P``) and bottom (``Q``) electrodes:

===========  ===========  ==========================
``P``        ``Q``        next state ``R'``
===========  ===========  ==========================
1 (VSET)     0            1   (set)
0 (VCLEAR)   1            0   (reset)
P == Q       (VCOND)      R   (hold)
===========  ===========  ==========================

which is exactly the *intrinsic majority* ``R' = M(P, !Q, R)`` — the
observation the paper's MAJ realization exploits.

Fault support
-------------
A device may optionally be declared *stuck* (``stuck_at=True`` models a
cell welded into LRS by a forming failure, ``stuck_at=False`` one that
can no longer be SET).  A stuck device senses its stuck value and
ignores every switching pulse; the fault-injection harness
(:mod:`repro.rram.faults`) uses this to measure how reliably the
functional verifier catches silicon defects.  The default
(``stuck_at=None``) is byte-for-byte the original fault-free behaviour.
"""

from __future__ import annotations

from typing import Optional


def next_state(p: bool, q: bool, r: bool) -> bool:
    """The intrinsic majority switching rule ``R' = M(P, !Q, R)``."""
    not_q = not q
    return (p and not_q) or (p and r) or (not_q and r)


class RramDevice:
    """One resistive switch with an event-counted state."""

    __slots__ = ("state", "writes", "stuck_at")

    def __init__(
        self, state: bool = False, stuck_at: Optional[bool] = None
    ) -> None:
        self.stuck_at = stuck_at
        self.state = bool(state) if stuck_at is None else stuck_at
        self.writes = 0

    def apply(self, p: bool, q: bool) -> bool:
        """Apply electrode levels for one step; returns the new state."""
        if self.stuck_at is None:
            self.state = next_state(p, q, self.state)
        else:
            self.state = self.stuck_at
        self.writes += 1
        return self.state

    def set(self) -> None:
        """VSET pulse: unconditionally switch to logic 1."""
        self.apply(True, False)

    def clear(self) -> None:
        """VCLEAR pulse: unconditionally switch to logic 0 (FALSE op)."""
        self.apply(False, True)

    def write(self, value: bool) -> None:
        """Unconditional write via a set or clear pulse."""
        if value:
            self.set()
        else:
            self.clear()

    def __repr__(self) -> str:
        return f"RramDevice(state={int(self.state)}, writes={self.writes})"
