"""Behavioural model of a single bipolar resistive switch (RRAM).

The device is a two-terminal element whose internal resistance encodes
one bit: logic 0 = high resistance (HRS), logic 1 = low resistance
(LRS).  Paper Fig. 2 gives the switching behaviour as a function of the
logic levels applied to the top (``P``) and bottom (``Q``) electrodes:

===========  ===========  ==========================
``P``        ``Q``        next state ``R'``
===========  ===========  ==========================
1 (VSET)     0            1   (set)
0 (VCLEAR)   1            0   (reset)
P == Q       (VCOND)      R   (hold)
===========  ===========  ==========================

which is exactly the *intrinsic majority* ``R' = M(P, !Q, R)`` — the
observation the paper's MAJ realization exploits.
"""

from __future__ import annotations


def next_state(p: bool, q: bool, r: bool) -> bool:
    """The intrinsic majority switching rule ``R' = M(P, !Q, R)``."""
    not_q = not q
    return (p and not_q) or (p and r) or (not_q and r)


class RramDevice:
    """One resistive switch with an event-counted state."""

    __slots__ = ("state", "writes")

    def __init__(self, state: bool = False) -> None:
        self.state = bool(state)
        self.writes = 0

    def apply(self, p: bool, q: bool) -> bool:
        """Apply electrode levels for one step; returns the new state."""
        self.state = next_state(p, q, self.state)
        self.writes += 1
        return self.state

    def set(self) -> None:
        """VSET pulse: unconditionally switch to logic 1."""
        self.apply(True, False)

    def clear(self) -> None:
        """VCLEAR pulse: unconditionally switch to logic 0 (FALSE op)."""
        self.apply(False, True)

    def write(self, value: bool) -> None:
        """Unconditional write via a set or clear pulse."""
        if value:
            self.set()
        else:
            self.clear()

    def __repr__(self) -> str:
        return f"RramDevice(state={int(self.state)}, writes={self.writes})"
