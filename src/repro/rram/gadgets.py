"""RRAM majority-gate gadgets (paper Sec. III-A).

Two realizations of the majority gate ``M(x, y, z)``:

* **IMP-based** (Fig. 3): six devices ``X Y Z A B C``, ten steps.  The
  step sequence below is the paper's (Sec. III-A1) with the
  intermediate values re-derived explicitly; the result lands in ``A``:

  ====  =====================  ==========================
  step  operation              state after
  ====  =====================  ==========================
  1     load                   X=x Y=y Z=z A=B=C=0
  2     A <- X IMP A           A = !x
  3     B <- Y IMP B           B = !y
  4     Y <- A IMP Y           Y = x + y
  5     B <- X IMP B           B = !x + !y = !(xy)
  6     C <- Y IMP C           C = !(x + y)
  7     C <- Z IMP C           C = !z + !x!y = !(xz + yz)
  8     A <- FALSE             A = 0
  9     A <- B IMP A           A = xy
  10    A <- C IMP A           A = xy + xz + yz  = M(x,y,z)
  ====  =====================  ==========================

  (The gadget destroys ``Y``; the compiler therefore always gives each
  gadget its own copies of the operands, made during the load step.)

* **MAJ-based** (Sec. III-A2): four devices ``X Y Z A``, three steps,
  exploiting the intrinsic majority ``R' = M(P, !Q, R)``:

  ====  ==============================  =====================
  step  operation                       state after
  ====  ==============================  =====================
  1     load                            X=x Y=y Z=z A=0
  2     A <- !Y (conditional write)     A = !y
  3     Z <- IntrinsicMaj(P=X, Q=A)     Z = M(x, !!y, z) = M(x,y,z)
  ====  ==============================  =====================

  The result lands in ``Z``.
"""

from __future__ import annotations

from typing import List

from .isa import (
    Imp,
    IntrinsicMaj,
    LoadInput,
    MicroOp,
    Program,
    Step,
    WriteCopy,
    WriteLiteral,
)

IMP_GADGET_DEVICES = 6
IMP_GADGET_STEPS = 10
MAJ_GADGET_DEVICES = 4
MAJ_GADGET_STEPS = 3

# Slot roles within a gadget's device block.
SLOT_X, SLOT_Y, SLOT_Z, SLOT_A, SLOT_B, SLOT_C = range(6)

# Which slot holds the majority result when the gadget finishes.
IMP_RESULT_SLOT = SLOT_A
MAJ_RESULT_SLOT = SLOT_Z


def imp_gadget_compute_ops(base: int) -> List[List[MicroOp]]:
    """Post-load compute micro-ops of one IMP gadget (steps 2–10).

    ``base`` is the index of the gadget's first device; slots are
    ``base+SLOT_X .. base+SLOT_C``.  Returns nine single-op groups; the
    compiler merges group *k* of every gadget in a level into one
    array-wide step.
    """
    x, y, z = base + SLOT_X, base + SLOT_Y, base + SLOT_Z
    a, b, c = base + SLOT_A, base + SLOT_B, base + SLOT_C
    return [
        [Imp(x, a)],  # step 2:  A = !x
        [Imp(y, b)],  # step 3:  B = !y
        [Imp(a, y)],  # step 4:  Y = x + y
        [Imp(x, b)],  # step 5:  B = !(xy)
        [Imp(y, c)],  # step 6:  C = !(x + y)
        [Imp(z, c)],  # step 7:  C = !(xz + yz)
        [WriteLiteral(a, False)],  # step 8: A = 0
        [Imp(b, a)],  # step 9:  A = xy
        [Imp(c, a)],  # step 10: A = M(x, y, z)
    ]


def maj_gadget_compute_ops(base: int) -> List[List[MicroOp]]:
    """Post-load compute micro-ops of one MAJ gadget (steps 2–3)."""
    x, y, z, a = base + SLOT_X, base + SLOT_Y, base + SLOT_Z, base + SLOT_A
    return [
        [WriteCopy(a, y, negate=True)],  # step 2: A = !y
        [IntrinsicMaj(z, p=x, q=a)],  # step 3: Z = M(x, y, z)
    ]


def standalone_majority_program(realization: str) -> Program:
    """A self-contained 3-input majority program for one gadget.

    Used by the test-suite to replay the paper's gadget step tables
    verbatim (all eight input combinations must produce ``M(x,y,z)``).
    """
    if realization == "imp":
        num_devices = IMP_GADGET_DEVICES
        load = Step(
            ops=[
                LoadInput(SLOT_X, 0),
                LoadInput(SLOT_Y, 1),
                LoadInput(SLOT_Z, 2),
                WriteLiteral(SLOT_A, False),
                WriteLiteral(SLOT_B, False),
                WriteLiteral(SLOT_C, False),
            ],
            label="load",
        )
        compute = [
            Step(ops=g, label=f"imp-step-{i + 2}")
            for i, g in enumerate(imp_gadget_compute_ops(0))
        ]
        result_slot = IMP_RESULT_SLOT
    elif realization == "maj":
        num_devices = MAJ_GADGET_DEVICES
        load = Step(
            ops=[
                LoadInput(SLOT_X, 0),
                LoadInput(SLOT_Y, 1),
                LoadInput(SLOT_Z, 2),
                WriteLiteral(SLOT_A, False),
            ],
            label="load",
        )
        compute = [
            Step(ops=g, label=f"maj-step-{i + 2}")
            for i, g in enumerate(maj_gadget_compute_ops(0))
        ]
        result_slot = MAJ_RESULT_SLOT
    else:
        raise ValueError(f"unknown realization {realization!r}")
    program = Program(
        name=f"majority-{realization}",
        realization=realization,
        num_devices=num_devices,
        steps=[load] + compute,
        num_inputs=3,
        output_devices={0: result_slot},
    )
    program.validate()
    return program
