"""Energy and endurance accounting for compiled RRAM programs.

RRAM writes are the dominant energy cost of in-memory computing, and
devices wear out after a bounded number of *actual* resistance switches
(endurance, typically 10⁶–10¹² cycles).  This module replays a compiled
program over a set of input vectors on the behavioural array and
reports:

* pulses applied (every voltage application, switching or not);
* actual switch events (state changes — the energy/wear that matters);
* per-device maxima (the hottest device bounds array lifetime);
* a simple energy estimate ``E = switches · E_switch + pulses · E_pulse``
  with configurable per-event costs (defaults are order-of-magnitude
  literature values for HfO₂-class devices: 1 pJ per switch, 0.1 pJ per
  non-switching pulse).

The motivation mirrors the paper's step-count argument: the MAJ
realization does not just run fewer *steps* than IMP, it also applies
far fewer pulses per computed gate — quantified in
``benchmarks/bench_energy.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .array import RramArray
from .isa import Program

DEFAULT_SWITCH_ENERGY_PJ = 1.0
DEFAULT_PULSE_ENERGY_PJ = 0.1


@dataclass(frozen=True)
class EnergyReport:
    """Aggregated pulse/switch statistics over a set of executions."""

    vectors: int
    pulses: int
    switches: int
    max_device_pulses: int
    max_device_switches: int
    energy_pj: float

    @property
    def pulses_per_vector(self) -> float:
        """Average voltage applications per computed input vector."""
        return self.pulses / max(1, self.vectors)

    @property
    def switches_per_vector(self) -> float:
        """Average resistance switches per computed input vector."""
        return self.switches / max(1, self.vectors)

    @property
    def switch_efficiency(self) -> float:
        """Fraction of pulses that actually switched a device.

        Low values mean the schedule wastes energy re-asserting states
        devices already hold.
        """
        return self.switches / max(1, self.pulses)


class _CountingArray(RramArray):
    """Array that additionally counts actual state changes."""

    def __init__(self, num_devices: int) -> None:
        super().__init__(num_devices)
        self.switch_counts = [0] * num_devices

    def execute_step(self, step, inputs: Sequence[bool] = ()) -> None:
        before = [device.state for device in self.devices]
        super().execute_step(step, inputs)
        for index, device in enumerate(self.devices):
            if device.state != before[index]:
                self.switch_counts[index] += 1


def measure_energy(
    program: Program,
    vectors: Sequence[Sequence[bool]],
    *,
    switch_energy_pj: float = DEFAULT_SWITCH_ENERGY_PJ,
    pulse_energy_pj: float = DEFAULT_PULSE_ENERGY_PJ,
) -> EnergyReport:
    """Replay ``program`` over ``vectors`` and aggregate write costs."""
    total_pulses = 0
    total_switches = 0
    max_pulses = 0
    max_switches = 0
    for vector in vectors:
        array = _CountingArray(program.num_devices)
        inputs = [bool(v) for v in vector]
        for step in program.steps:
            array.execute_step(step, inputs)
        pulses = [device.writes for device in array.devices]
        total_pulses += sum(pulses)
        total_switches += sum(array.switch_counts)
        max_pulses = max(max_pulses, max(pulses, default=0))
        max_switches = max(max_switches, max(array.switch_counts, default=0))
    energy = (
        total_switches * switch_energy_pj + total_pulses * pulse_energy_pj
    )
    return EnergyReport(
        vectors=len(vectors),
        pulses=total_pulses,
        switches=total_switches,
        max_device_pulses=max_pulses,
        max_device_switches=max_switches,
        energy_pj=energy,
    )
