"""PLiM-style backend: fully serialized RM3 instruction streams.

The paper's reference [15] (Gaillardon et al., "The Programmable
Logic-in-Memory computer", DATE 2016) executes logic-in-memory as a
*sequential* program of single ``RM3`` instructions,

    ``Z <- M(X, !Y, Z)``,

one per cycle, where ``X``/``Y`` are sensed operands or constants and
``Z`` is a destination device — exactly our
:class:`~repro.rram.isa.IntrinsicMaj` micro-op.  This module compiles
an MIG into such a stream.  It is the natural serial counterpart of the
paper's level-parallel MAJ realization: PLiM instruction counts scale
with *node count*, the level-parallel schedule with *depth* — the
contrast quantified in ``benchmarks/bench_plim.py``.

Instruction selection per gate ``M(a, b, c)``:

* one child is preloaded into the destination (2 instructions —
  clear/set, then an RM3 copy; a complemented preload is free by
  preloading 1 and copying through the ``Y`` operand);
* one remaining complemented child rides the ``Y`` slot for free;
* a second complemented child costs an explicit inversion
  (2 instructions into a scratch device);
* the final RM3 computes the majority in place (1 instruction).

Total: 3–5 instructions per gate, plus one data-load cycle per input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..mig import Mig, signal_is_complemented, signal_node
from ..telemetry import metrics, traced
from .isa import IntrinsicMaj, LoadInput, MicroOp, Program, Step, WriteLiteral


@dataclass
class PlimReport:
    """A compiled PLiM stream with its headline metric."""

    program: Program
    instructions: int  # = program.num_steps (one instruction per cycle)
    gates: int


class _Allocator:
    def __init__(self) -> None:
        self._free: List[int] = []
        self._next = 0

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        index = self._next
        self._next += 1
        return index

    def release(self, index: int) -> None:
        self._free.append(index)

    @property
    def high_water(self) -> int:
        return self._next


@traced("rram.plim_compile")
def compile_plim(mig: Mig, *, name: Optional[str] = None) -> PlimReport:
    """Compile an MIG into a serial RM3 instruction stream."""
    order = mig.reachable_nodes()
    position = {node: i for i, node in enumerate(order)}
    last_use: Dict[int, int] = {}
    for node in order:
        for child in mig.children(node):
            child_node = signal_node(child)
            if child_node != 0:
                last_use[child_node] = position[node]
    for po in mig.pos:
        driver = signal_node(po)
        if driver != 0:
            last_use[driver] = len(order)

    allocator = _Allocator()
    steps: List[Step] = []

    def emit(op: MicroOp, label: str) -> None:
        steps.append(Step([op], label))

    registers: Dict[int, int] = {}
    pi_index = {node: i for i, node in enumerate(mig.pis)}
    const_false = allocator.allocate()
    const_true = allocator.allocate()
    emit(WriteLiteral(const_false, False), "plim-const0")
    emit(WriteLiteral(const_true, True), "plim-const1")
    for node in mig.pis:
        device = allocator.allocate()
        registers[node] = device
        emit(LoadInput(device, pi_index[node]), "plim-load")

    def value_device(signal_node_id: int) -> int:
        if signal_node_id == 0:
            return const_false
        return registers[signal_node_id]

    def materialize_complement(source: int, label: str) -> int:
        """2 instructions: scratch <- 0; scratch <- M(1, !src, 0) = !src."""
        scratch = allocator.allocate()
        emit(WriteLiteral(scratch, False), f"{label}-clr")
        emit(IntrinsicMaj(scratch, p=const_true, q=source), f"{label}-inv")
        return scratch

    for node in order:
        children = list(mig.children(node))
        # Choose the preload child: prefer a constant (free literal
        # preload), else any child — complemented preloads are also
        # cheap, so just take the last slot.
        children.sort(
            key=lambda s: 0 if signal_node(s) == 0 else 1
        )
        preload, op_a, op_b = children[0], children[1], children[2]

        dest = allocator.allocate()
        preload_node = signal_node(preload)
        preload_comp = signal_is_complemented(preload)
        if preload_node == 0:
            emit(WriteLiteral(dest, preload_comp), f"plim-n{node}-pre")
        elif not preload_comp:
            # dest <- 0; dest <- M(src, !0, 0) = src.
            emit(WriteLiteral(dest, False), f"plim-n{node}-clr")
            emit(
                IntrinsicMaj(dest, p=value_device(preload_node), q=const_false),
                f"plim-n{node}-copy",
            )
        else:
            # dest <- 1; dest <- M(0, !src, 1) = !src.
            emit(WriteLiteral(dest, True), f"plim-n{node}-set")
            emit(
                IntrinsicMaj(dest, p=const_false, q=value_device(preload_node)),
                f"plim-n{node}-ncopy",
            )

        # One complemented operand can ride the Y slot for free; put a
        # complemented one in Y if available.
        if signal_is_complemented(op_a) and not signal_is_complemented(op_b):
            op_a, op_b = op_b, op_a
        # Now: op_a -> X slot (needs plain), op_b -> Y slot (needs its
        # complement available as a plain device value... the RM3
        # negates Y itself, so Y wants the *plain* value of a
        # complemented operand and an *inverted* copy of a plain one).
        scratches: List[int] = []

        def x_operand(signal: int) -> int:
            node_id = signal_node(signal)
            if node_id == 0:
                return const_true if signal & 1 else const_false
            if not signal_is_complemented(signal):
                return value_device(node_id)
            scratch = materialize_complement(
                value_device(node_id), f"plim-n{node}-x"
            )
            scratches.append(scratch)
            return scratch

        def y_operand(signal: int) -> int:
            node_id = signal_node(signal)
            if node_id == 0:
                # Y is negated by the instruction: to contribute the
                # constant v, the device must hold !v.
                return const_false if signal & 1 else const_true
            if signal_is_complemented(signal):
                return value_device(node_id)  # !value via the Y slot
            scratch = materialize_complement(
                value_device(node_id), f"plim-n{node}-y"
            )
            scratches.append(scratch)
            return scratch

        x_device = x_operand(op_a)
        y_device = y_operand(op_b)
        emit(IntrinsicMaj(dest, p=x_device, q=y_device), f"plim-n{node}-rm3")
        for scratch in scratches:
            allocator.release(scratch)
        registers[node] = dest

        index = position[node]
        for value in [v for v in list(registers) if not mig.is_pi(v)]:
            if value != node and last_use.get(value, -1) <= index:
                allocator.release(registers.pop(value))

    output_devices: Dict[int, int] = {}
    for po_position, po in enumerate(mig.pos):
        driver = signal_node(po)
        if driver == 0:
            output_devices[po_position] = (
                const_true if po & 1 else const_false
            )
        elif signal_is_complemented(po):
            device = materialize_complement(
                value_device(driver), f"plim-po{po_position}"
            )
            output_devices[po_position] = device
        else:
            output_devices[po_position] = value_device(driver)

    program = Program(
        name=name or f"{mig.name}-plim",
        realization="plim-rm3",
        num_devices=allocator.high_water,
        steps=steps,
        num_inputs=mig.num_pis,
        output_devices=output_devices,
    )
    program.validate()
    registry = metrics()
    registry.counter("rram.plim.programs").inc()
    registry.histogram("rram.plim.instructions").observe(program.num_steps)
    registry.histogram("rram.plim.devices").observe(program.num_devices)
    return PlimReport(
        program=program,
        instructions=program.num_steps,
        gates=len(order),
    )
