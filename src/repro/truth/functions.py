"""Reference generators for well-known benchmark functions.

Each generator returns a list of :class:`~repro.truth.TruthTable`
objects, one per primary output, all over the same variable count.
These are the *exact* mathematical definitions used for the benchmark
circuits that have a public specification (see DESIGN.md §3); the
benchmark suite builds structural netlists separately and checks them
against these tables.
"""

from __future__ import annotations

from typing import List, Sequence

from .truth_table import TruthTable


def parity_function(num_vars: int) -> List[TruthTable]:
    """Odd-parity (XOR) of all inputs — the LGsynth91 ``parity`` family."""
    table = TruthTable.constant(num_vars, False)
    for i in range(num_vars):
        table = table ^ TruthTable.variable(num_vars, i)
    return [table]


def count_ones_function(num_vars: int, num_outputs: int) -> List[TruthTable]:
    """Binary count of ones — the ``rd53``/``rd73``/``rd84`` family.

    Output *j* is bit *j* of the population count of the inputs.
    ``rd53`` is ``count_ones_function(5, 3)``, ``rd73`` is ``(7, 3)``
    and ``rd84`` is ``(8, 4)``.
    """
    outputs = []
    for bit in range(num_outputs):
        outputs.append(
            TruthTable.from_function(
                num_vars,
                lambda inputs, b=bit: bool((sum(inputs) >> b) & 1),
            )
        )
    return outputs


def symmetric_band_function(
    num_vars: int, low: int, high: int
) -> List[TruthTable]:
    """Totally symmetric function: 1 iff ``low <= popcount <= high``.

    ``9sym`` is the classic instance ``symmetric_band_function(9, 3, 6)``;
    ``sym10`` is ``symmetric_band_function(10, 3, 6)``.
    """
    if not 0 <= low <= high <= num_vars:
        raise ValueError(f"invalid band [{low}, {high}] for {num_vars} vars")
    return [
        TruthTable.from_function(
            num_vars, lambda inputs: low <= sum(inputs) <= high
        )
    ]


def nine_sym_function() -> List[TruthTable]:
    """The MCNC ``9sym`` benchmark: 1 iff 3..6 of the 9 inputs are 1."""
    return symmetric_band_function(9, 3, 6)


def sym10_function() -> List[TruthTable]:
    """The ``sym10`` benchmark: 1 iff 3..6 of the 10 inputs are 1."""
    return symmetric_band_function(10, 3, 6)


def multiplexer_function(select_bits: int) -> List[TruthTable]:
    """``2**k``-to-1 multiplexer — ``cm150a`` is ``select_bits = 4``.

    Variable layout: data inputs ``d0 .. d(2**k - 1)`` first, then the
    ``k`` select inputs; ``21 = 16 + 4 + 1`` pins for cm150a counts the
    single output in the netlist view, not here.
    """
    data = 1 << select_bits
    num_vars = data + select_bits

    def mux(inputs: Sequence[bool]) -> bool:
        index = 0
        for i in range(select_bits):
            if inputs[data + i]:
                index |= 1 << i
        return inputs[index]

    return [TruthTable.from_function(num_vars, mux)]


def majority_function(num_vars: int) -> List[TruthTable]:
    """N-input majority (1 iff more than half the inputs are 1)."""
    if num_vars % 2 == 0:
        raise ValueError("majority is defined for an odd number of inputs")
    threshold = num_vars // 2 + 1
    return [
        TruthTable.from_function(num_vars, lambda inputs: sum(inputs) >= threshold)
    ]


def adder_function(width: int) -> List[TruthTable]:
    """Ripple-carry adder: ``a + b + cin`` over ``2*width + 1`` inputs.

    Variable layout: ``a0..a(w-1)``, ``b0..b(w-1)``, ``cin``.
    Outputs: ``sum0..sum(w-1)``, ``cout``.
    """
    num_vars = 2 * width + 1

    def bit_of_sum(inputs: Sequence[bool], bit: int) -> bool:
        a = sum(1 << i for i in range(width) if inputs[i])
        b = sum(1 << i for i in range(width) if inputs[width + i])
        total = a + b + (1 if inputs[2 * width] else 0)
        return bool((total >> bit) & 1)

    return [
        TruthTable.from_function(num_vars, lambda inp, b=bit: bit_of_sum(inp, b))
        for bit in range(width + 1)
    ]


def comparator_function(width: int) -> List[TruthTable]:
    """Unsigned comparator: outputs (a < b, a == b) over ``2*width`` inputs."""
    num_vars = 2 * width

    def values(inputs: Sequence[bool]):
        a = sum(1 << i for i in range(width) if inputs[i])
        b = sum(1 << i for i in range(width) if inputs[width + i])
        return a, b

    less = TruthTable.from_function(
        num_vars, lambda inp: values(inp)[0] < values(inp)[1]
    )
    equal = TruthTable.from_function(
        num_vars, lambda inp: values(inp)[0] == values(inp)[1]
    )
    return [less, equal]


def con1_style_function() -> List[TruthTable]:
    """A 7-input, 2-output control function standing in for MCNC ``con1``.

    The original espresso PLA is not redistributable; this is a compact
    two-output sum-of-products control function with the same interface
    (7 inputs, 2 outputs) and comparable literal counts, documented as a
    substitution in DESIGN.md §3.
    """
    num_vars = 7

    def out0(inp: Sequence[bool]) -> bool:
        x = inp
        return (
            (x[0] and x[2] and not x[4])
            or (x[1] and x[3] and x[5])
            or (not x[0] and x[6])
        )

    def out1(inp: Sequence[bool]) -> bool:
        x = inp
        return (
            (x[4] and x[5])
            or (x[0] and not x[1] and x[6])
            or (x[2] and not x[3] and not x[6])
        )

    return [
        TruthTable.from_function(num_vars, out0),
        TruthTable.from_function(num_vars, out1),
    ]


def squarer_function(width: int) -> List[TruthTable]:
    """Squarer ``x -> x*x`` (the ``5xp1``-class arithmetic flavour)."""
    num_vars = width
    out_bits = 2 * width

    def bit(inputs: Sequence[bool], b: int) -> bool:
        x = sum(1 << i for i in range(width) if inputs[i])
        return bool(((x * x) >> b) & 1)

    return [
        TruthTable.from_function(num_vars, lambda inp, b=b: bit(inp, b))
        for b in range(out_bits)
    ]


def clip_style_function() -> List[TruthTable]:
    """Saturating 9-in/5-out arithmetic stand-in for MCNC ``clip``.

    Treats the inputs as a signed 9-bit value and clips it into 5 bits.
    """
    num_vars = 9

    def bit(inputs: Sequence[bool], b: int) -> bool:
        raw = sum(1 << i for i in range(num_vars) if inputs[i])
        if raw >= 1 << (num_vars - 1):
            raw -= 1 << num_vars
        clipped = max(-16, min(15, raw)) & 0x1F
        return bool((clipped >> b) & 1)

    return [
        TruthTable.from_function(num_vars, lambda inp, b=b: bit(inp, b))
        for b in range(5)
    ]
