"""Truth-table substrate: reference Boolean semantics for the library."""

from .truth_table import (
    TruthTable,
    all_tables,
    if_then_else,
    table_mask,
    ternary_majority,
    variable_pattern,
)
from .functions import (
    adder_function,
    clip_style_function,
    comparator_function,
    con1_style_function,
    count_ones_function,
    majority_function,
    multiplexer_function,
    nine_sym_function,
    parity_function,
    squarer_function,
    sym10_function,
    symmetric_band_function,
)

__all__ = [
    "TruthTable",
    "all_tables",
    "if_then_else",
    "table_mask",
    "ternary_majority",
    "variable_pattern",
    "adder_function",
    "clip_style_function",
    "comparator_function",
    "con1_style_function",
    "count_ones_function",
    "majority_function",
    "multiplexer_function",
    "nine_sym_function",
    "parity_function",
    "squarer_function",
    "sym10_function",
    "symmetric_band_function",
]
