"""Bit-parallel truth tables.

A :class:`TruthTable` stores the complete function table of a Boolean
function over ``num_vars`` variables as a single arbitrary-precision
integer: bit ``i`` of :attr:`TruthTable.bits` is the function value for
the input assignment whose binary encoding is ``i`` (variable 0 is the
least-significant bit of the assignment index).

This representation makes Boolean operations single integer operations,
which keeps exhaustive equivalence checking of graphs with up to ~16
inputs cheap.  It is the reference semantics for every other
representation in this library (netlists, MIGs, BDDs, AIGs and compiled
RRAM micro-programs are all checked against it in the test-suite).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

try:  # Python >= 3.10
    def _popcount(bits: int) -> int:
        return bits.bit_count()

    _popcount(0)
except AttributeError:  # pragma: no cover - py3.9 fallback
    def _popcount(bits: int) -> int:
        return bin(bits).count("1")


def table_mask(num_vars: int) -> int:
    """Return the all-ones mask of a ``num_vars``-variable truth table."""
    if num_vars < 0:
        raise ValueError(f"num_vars must be non-negative, got {num_vars}")
    return (1 << (1 << num_vars)) - 1


def variable_pattern(num_vars: int, index: int) -> int:
    """Return the bit pattern of projection variable ``index``.

    The pattern of variable *k* in an *n*-variable table is the classic
    alternating block pattern: blocks of ``2**k`` zeros followed by
    ``2**k`` ones, repeated.
    """
    if not 0 <= index < num_vars:
        raise ValueError(f"variable index {index} out of range for {num_vars} vars")
    block = 1 << index
    period = block << 1
    total = 1 << num_vars
    # One period is `block` zeros then `block` ones (ones in the high
    # half), doubled up to the table width: O(num_vars) big-int ops
    # instead of one shift-or per period.
    pattern = ((1 << block) - 1) << block
    span = period
    while span < total:
        pattern |= pattern << span
        span <<= 1
    return pattern


class TruthTable:
    """An immutable complete truth table over a fixed number of variables.

    Instances behave like Boolean values under the operators ``&``,
    ``|``, ``^`` and ``~`` and compare equal iff they have the same
    variable count and the same function.
    """

    __slots__ = ("_num_vars", "_bits")

    def __init__(self, num_vars: int, bits: int = 0) -> None:
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        if bits < 0:
            raise ValueError("bits must be a non-negative integer")
        mask = table_mask(num_vars)
        if bits > mask:
            raise ValueError(
                f"bits 0x{bits:x} does not fit a {num_vars}-variable table"
            )
        self._num_vars = num_vars
        self._bits = bits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, num_vars: int, value: bool) -> "TruthTable":
        """Return the constant-``value`` function over ``num_vars`` vars."""
        return cls(num_vars, table_mask(num_vars) if value else 0)

    @classmethod
    def variable(cls, num_vars: int, index: int) -> "TruthTable":
        """Return the projection function of variable ``index``."""
        return cls(num_vars, variable_pattern(num_vars, index))

    @classmethod
    def from_function(
        cls, num_vars: int, func: Callable[[Sequence[bool]], bool]
    ) -> "TruthTable":
        """Build a table by evaluating ``func`` on every assignment.

        ``func`` receives a tuple of ``num_vars`` bools (index 0 first).
        Exponential in ``num_vars``; intended for reference definitions.
        """
        bits = 0
        for assignment in range(1 << num_vars):
            inputs = tuple(bool((assignment >> i) & 1) for i in range(num_vars))
            if func(inputs):
                bits |= 1 << assignment
        return cls(num_vars, bits)

    @classmethod
    def from_binary_string(cls, pattern: str) -> "TruthTable":
        """Parse a binary string, most-significant assignment first.

        ``TruthTable.from_binary_string("1000")`` is the 2-input AND:
        character 0 is the value at assignment ``2**n - 1``.
        """
        length = len(pattern)
        if length == 0 or length & (length - 1):
            raise ValueError(f"pattern length {length} is not a power of two")
        num_vars = length.bit_length() - 1
        bits = 0
        for offset, char in enumerate(reversed(pattern)):
            if char == "1":
                bits |= 1 << offset
            elif char != "0":
                raise ValueError(f"invalid character {char!r} in binary pattern")
        return cls(num_vars, bits)

    @classmethod
    def from_hex_string(cls, num_vars: int, pattern: str) -> "TruthTable":
        """Parse the conventional hex spelling (e.g. ``"e8"`` = MAJ3)."""
        bits = int(pattern, 16)
        return cls(num_vars, bits)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables this table is defined over."""
        return self._num_vars

    @property
    def bits(self) -> int:
        """The raw function table as an integer (bit i = value at i)."""
        return self._bits

    @property
    def num_entries(self) -> int:
        """Number of rows in the table (``2**num_vars``)."""
        return 1 << self._num_vars

    def value_at(self, assignment: int) -> bool:
        """Return the function value for an assignment index."""
        if not 0 <= assignment < self.num_entries:
            raise IndexError(f"assignment {assignment} out of range")
        return bool((self._bits >> assignment) & 1)

    def evaluate(self, inputs: Sequence[bool]) -> bool:
        """Return the function value for a tuple of input bits."""
        if len(inputs) != self._num_vars:
            raise ValueError(
                f"expected {self._num_vars} inputs, got {len(inputs)}"
            )
        assignment = 0
        for i, bit in enumerate(inputs):
            if bit:
                assignment |= 1 << i
        return self.value_at(assignment)

    def count_ones(self) -> int:
        """Return the number of minterms (ON-set size)."""
        return _popcount(self._bits)

    def is_constant(self) -> bool:
        """True iff the function is constant 0 or constant 1."""
        return self._bits == 0 or self._bits == table_mask(self._num_vars)

    def depends_on(self, index: int) -> bool:
        """True iff the function actually depends on variable ``index``."""
        return self.cofactor(index, False) != self.cofactor(index, True)

    def support(self) -> tuple:
        """Return the tuple of variable indices the function depends on."""
        return tuple(i for i in range(self._num_vars) if self.depends_on(i))

    # ------------------------------------------------------------------
    # Boolean operators
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "TruthTable") -> None:
        if not isinstance(other, TruthTable):
            raise TypeError(f"expected TruthTable, got {type(other).__name__}")
        if other._num_vars != self._num_vars:
            raise ValueError(
                f"variable count mismatch: {self._num_vars} vs {other._num_vars}"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._num_vars, self._bits & other._bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._num_vars, self._bits | other._bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._num_vars, self._bits ^ other._bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(
            self._num_vars, self._bits ^ table_mask(self._num_vars)
        )

    def implies(self, other: "TruthTable") -> "TruthTable":
        """Material implication ``(~self) | other`` — the IMP primitive."""
        self._check_compatible(other)
        return (~self) | other

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------

    def cofactor(self, index: int, value: bool) -> "TruthTable":
        """Shannon cofactor with variable ``index`` fixed to ``value``.

        The result is still expressed over all ``num_vars`` variables
        (the fixed variable becomes a don't-care), which keeps cofactors
        composable with the other operators.
        """
        var = variable_pattern(self._num_vars, index)
        block = 1 << index
        if value:
            kept = self._bits & var
            spread = kept | (kept >> block)
        else:
            kept = self._bits & ~var & table_mask(self._num_vars)
            spread = kept | (kept << block)
        return TruthTable(self._num_vars, spread & table_mask(self._num_vars))

    def extend(self, num_vars: int) -> "TruthTable":
        """Re-express the table over a larger variable set.

        New variables are don't-cares appended above the existing ones.
        """
        if num_vars < self._num_vars:
            raise ValueError("cannot extend to fewer variables")
        bits = self._bits
        width = 1 << self._num_vars
        for _ in range(num_vars - self._num_vars):
            bits |= bits << width
            width <<= 1
        return TruthTable(num_vars, bits)

    def assignments_where(self, value: bool) -> Iterator[int]:
        """Yield assignment indices where the function equals ``value``.

        Walks set bits via the isolate-lowest-bit trick, so the cost is
        proportional to the answer, not to ``2**num_vars``.
        """
        bits = self._bits if value else self._bits ^ table_mask(self._num_vars)
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self._num_vars == other._num_vars and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._num_vars, self._bits))

    def __repr__(self) -> str:
        digits = max(1, (1 << self._num_vars) // 4)
        return f"TruthTable({self._num_vars}, 0x{self._bits:0{digits}x})"

    def to_binary_string(self) -> str:
        """Render as a binary string, most-significant assignment first."""
        return format(self._bits, f"0{1 << self._num_vars}b")

    def to_hex_string(self) -> str:
        """Render as the conventional hex spelling."""
        digits = max(1, (1 << self._num_vars) // 4)
        return format(self._bits, f"0{digits}x")


def ternary_majority(a: TruthTable, b: TruthTable, c: TruthTable) -> TruthTable:
    """Return ``M(a, b, c) = ab + ac + bc`` — the MIG primitive."""
    return (a & b) | (a & c) | (b & c)


def if_then_else(sel: TruthTable, then: TruthTable, other: TruthTable) -> TruthTable:
    """Return ``sel ? then : other`` — the BDD primitive."""
    return (sel & then) | (~sel & other)


def all_tables(num_vars: int) -> Iterable[TruthTable]:
    """Yield every ``num_vars``-variable truth table (use for tiny n)."""
    for bits in range(1 << (1 << num_vars)):
        yield TruthTable(num_vars, bits)
