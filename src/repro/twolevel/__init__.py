"""Two-level (sum-of-products) minimization: cube algebra and an
espresso-style EXPAND/IRREDUNDANT/REDUCE minimizer."""

from . import cubes
from .espresso import (
    cubes_to_table,
    expand,
    irredundant,
    minimize_cubes,
    minimize_table,
    reduce_cover,
)
from .pla_bridge import minimize_pla

__all__ = [
    "cubes",
    "cubes_to_table",
    "expand",
    "irredundant",
    "minimize_cubes",
    "minimize_table",
    "reduce_cover",
    "minimize_pla",
]
