"""PLA-level interface to the two-level minimizer.

Minimizes each output of a :class:`~repro.io.PlaCover` independently
(shared-product extraction is a multi-output espresso feature this
reproduction does not need) and reassembles a PLA cover.
"""

from __future__ import annotations

from typing import List

from ..io.pla import PlaCover
from . import cubes as C
from .espresso import minimize_cubes


def _row_to_cube(row: str) -> int:
    cube, _num_vars = C.from_string(row)
    return cube


def minimize_pla(cover: PlaCover) -> PlaCover:
    """Return a per-output minimized copy of a PLA cover."""
    num_vars = cover.num_inputs
    minimized = PlaCover(
        cover.num_inputs,
        cover.num_outputs,
        list(cover.input_labels),
        list(cover.output_labels),
        f"{cover.name}_min",
    )
    per_output: List[List[int]] = []
    for out_index in range(cover.num_outputs):
        on_set = [
            _row_to_cube(input_part)
            for input_part, output_part in cover.cubes
            if output_part[out_index] in ("1", "4")
        ]
        per_output.append(minimize_cubes(on_set, num_vars))

    # Merge identical input cubes across outputs back into shared rows.
    merged = {}
    for out_index, cube_list in enumerate(per_output):
        for cube in cube_list:
            key = C.to_string(cube, num_vars)
            tags = merged.setdefault(key, ["0"] * cover.num_outputs)
            tags[out_index] = "1"
    for input_part, tags in merged.items():
        minimized.add_cube(input_part, "".join(tags))
    return minimized
