"""Espresso-style heuristic two-level minimization.

The classic EXPAND → IRREDUNDANT → REDUCE loop over the cube algebra of
:mod:`repro.twolevel.cubes`:

* **EXPAND** raises each cube's literals to make it prime — a literal
  can be dropped whenever the grown cube still avoids the OFF-set;
* **IRREDUNDANT** removes cubes covered by the rest of the cover
  (tested with the unate-recursive cofactor-tautology check);
* **REDUCE** shrinks each cube to the supercube of the minterms only it
  covers, creating room for the next EXPAND to grow in a different
  direction.

Iterated until the cover stops improving (cube count, then literal
count).  The result is a prime and irredundant cover — not guaranteed
minimum (that is espresso-exact territory) but close in practice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..truth import TruthTable
from . import cubes as C


def expand(
    cover: List[int], off_set: Sequence[int], num_vars: int
) -> List[int]:
    """Make every cube prime against the OFF-set; drop covered cubes."""
    expanded: List[int] = []
    for cube in sorted(cover, key=lambda c: -C.literal_count(c, num_vars)):
        grown = cube
        for var in range(num_vars):
            if C.field(grown, var) == C.DC:
                continue
            candidate = C.set_field(grown, var, C.DC)
            if not any(
                C.intersect(candidate, off, num_vars) is not None
                for off in off_set
            ):
                grown = candidate
        if not any(C.contains(other, grown) for other in expanded):
            expanded = [
                other for other in expanded if not C.contains(grown, other)
            ]
            expanded.append(grown)
    return expanded


def irredundant(cover: List[int], num_vars: int) -> List[int]:
    """Drop cubes covered by the remainder of the cover."""
    kept = list(cover)
    # Try to remove small cubes first: large cubes are likelier to be
    # essential primes.
    for cube in sorted(cover, key=lambda c: -C.literal_count(c, num_vars)):
        if cube not in kept:
            continue
        others = [other for other in kept if other != cube]
        if others and C.covers_cube(others, cube, num_vars):
            kept = others
    return kept


def reduce_cover(
    cover: List[int], num_vars: int, *, sharp_limit: int = 128
) -> List[int]:
    """Shrink each cube to the supercube of its uniquely-covered part.

    Uses the sharp operation ``cube # (cover − cube)``; cubes whose
    sharp expansion exceeds ``sharp_limit`` pieces are left unreduced
    (the next EXPAND is then a no-op for them — sound, just weaker).
    """
    reduced: List[int] = []
    for index, cube in enumerate(cover):
        others = reduced + cover[index + 1 :]
        unique = _sharp_cover(cube, others, num_vars, sharp_limit)
        if unique is None:
            reduced.append(cube)
        elif not unique:
            # Fully covered by the others; drop (irredundant would too).
            continue
        else:
            shrunk = C.supercube(unique) & cube
            reduced.append(shrunk if C.is_valid(shrunk, num_vars) else cube)
    return reduced


def _sharp_cover(
    cube: int, others: Sequence[int], num_vars: int, limit: int
) -> Optional[List[int]]:
    """``cube # others`` as a cube list, or None past ``limit``."""
    pieces = [cube]
    for other in others:
        next_pieces: List[int] = []
        for piece in pieces:
            if C.intersect(piece, other, num_vars) is None:
                next_pieces.append(piece)
                continue
            # piece # other: split off one literal of `other` at a time.
            remainder = piece
            for var in range(num_vars):
                other_field = C.field(other, var)
                if other_field == C.DC:
                    continue
                piece_field = C.field(remainder, var)
                opposite = piece_field & ~other_field & 0b11
                if opposite:
                    next_pieces.append(
                        C.set_field(remainder, var, opposite)
                    )
                    remainder = C.set_field(remainder, var, other_field & piece_field)
            if len(next_pieces) > limit:
                return None
        pieces = next_pieces
        if len(pieces) > limit:
            return None
    return pieces


def _cover_cost(cover: Sequence[int], num_vars: int) -> Tuple[int, int]:
    return (
        len(cover),
        sum(C.literal_count(cube, num_vars) for cube in cover),
    )


def minimize_cubes(
    on_set: Sequence[int],
    num_vars: int,
    *,
    off_set: Optional[Sequence[int]] = None,
    max_iterations: int = 8,
) -> List[int]:
    """Espresso loop over an ON-set cover (OFF-set computed if absent)."""
    cover = C._single_cube_containment(list(on_set), num_vars)
    if not cover:
        return []
    if off_set is None:
        off_set = C.complement(cover, num_vars)
    best = list(cover)
    best_cost = _cover_cost(best, num_vars)
    for _ in range(max_iterations):
        cover = expand(cover, off_set, num_vars)
        cover = irredundant(cover, num_vars)
        cost = _cover_cost(cover, num_vars)
        if cost < best_cost:
            best, best_cost = list(cover), cost
        else:
            break
        cover = reduce_cover(cover, num_vars)
    return best


def minimize_table(table: TruthTable) -> List[int]:
    """Minimize a complete truth table into a prime irredundant cover."""
    num_vars = table.num_vars
    on_set = []
    off_set = []
    for assignment in range(table.num_entries):
        cube = 0
        for var in range(num_vars):
            value = C.POS if (assignment >> var) & 1 else C.NEG
            cube |= value << (2 * var)
        if table.value_at(assignment):
            on_set.append(cube)
        else:
            off_set.append(cube)
    return minimize_cubes(on_set, num_vars, off_set=off_set)


def cubes_to_table(cover: Sequence[int], num_vars: int) -> TruthTable:
    """Evaluate a cover into a complete truth table (small n)."""
    bits = 0
    for assignment in range(1 << num_vars):
        for cube in cover:
            match = True
            for var in range(num_vars):
                f = C.field(cube, var)
                if f == C.DC:
                    continue
                bit = (assignment >> var) & 1
                if (f == C.POS) != bool(bit):
                    match = False
                    break
            if match:
                bits |= 1 << assignment
                break
    return TruthTable(num_vars, bits)
