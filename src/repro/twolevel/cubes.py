"""Cube algebra for two-level minimization.

Espresso's positional-cube notation: each variable occupies two bits in
an integer —

* ``01`` — positive literal (variable must be 1),
* ``10`` — negative literal (variable must be 0),
* ``11`` — don't care (variable free),
* ``00`` — empty (the cube is contradictory).

The full-don't-care cube is the universe; cube intersection is bitwise
AND; containment is bitwise implication.  All operations here are pure
functions over ``(cube, num_vars)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

POS = 0b01
NEG = 0b10
DC = 0b11


def universe(num_vars: int) -> int:
    """The all-don't-care cube."""
    return (1 << (2 * num_vars)) - 1


def field(cube: int, var: int) -> int:
    """The two-bit field of ``var``."""
    return (cube >> (2 * var)) & 0b11


def set_field(cube: int, var: int, value: int) -> int:
    """Replace the two-bit field of ``var``."""
    return (cube & ~(0b11 << (2 * var))) | (value << (2 * var))


def from_string(text: str) -> Tuple[int, int]:
    """Parse a ``01-`` cube string (variable 0 first); returns
    ``(cube, num_vars)``."""
    cube = 0
    for var, char in enumerate(text):
        if char == "1":
            value = POS
        elif char == "0":
            value = NEG
        elif char == "-":
            value = DC
        else:
            raise ValueError(f"invalid cube character {char!r}")
        cube |= value << (2 * var)
    return cube, len(text)


def to_string(cube: int, num_vars: int) -> str:
    """Render in ``01-`` notation (variable 0 first)."""
    chars = []
    for var in range(num_vars):
        value = field(cube, var)
        chars.append({POS: "1", NEG: "0", DC: "-", 0: "?"}[value])
    return "".join(chars)


def is_valid(cube: int, num_vars: int) -> bool:
    """True iff no variable field is empty."""
    for var in range(num_vars):
        if field(cube, var) == 0:
            return False
    return True


def intersect(a: int, b: int, num_vars: int) -> Optional[int]:
    """Cube intersection, or None when the cubes are disjoint."""
    c = a & b
    return c if is_valid(c, num_vars) else None


def contains(outer: int, inner: int) -> bool:
    """True iff ``outer`` ⊇ ``inner`` (every minterm of inner in outer)."""
    return (outer | inner) == outer


def literal_count(cube: int, num_vars: int) -> int:
    """Number of bound (non-don't-care) variables."""
    return sum(1 for var in range(num_vars) if field(cube, var) != DC)


def cofactor_cube(cube: int, var: int, value: bool, num_vars: int) -> Optional[int]:
    """Shannon cofactor of a cube w.r.t. one literal.

    Returns the cube with ``var`` freed, or None when the cube does not
    intersect the chosen half-space.
    """
    f = field(cube, var)
    needed = POS if value else NEG
    if not (f & needed):
        return None
    return set_field(cube, var, DC)


def cofactor_cover(
    cubes: Sequence[int], var: int, value: bool, num_vars: int
) -> List[int]:
    """Cofactor of a cover (Shannon, cube by cube)."""
    result = []
    for cube in cubes:
        cofactored = cofactor_cube(cube, var, value, num_vars)
        if cofactored is not None:
            result.append(cofactored)
    return result


def cube_minterm_count(cube: int, num_vars: int) -> int:
    """Number of minterms the cube covers."""
    return 1 << (num_vars - literal_count(cube, num_vars))


def supercube(cubes: Sequence[int]) -> int:
    """Smallest cube containing all given cubes (bitwise OR)."""
    result = 0
    for cube in cubes:
        result |= cube
    return result


def binate_variable(cubes: Sequence[int], num_vars: int) -> Optional[int]:
    """The most binate variable (appears in both polarities, most
    often), or None when the cover is unate."""
    best_var = None
    best_score = -1
    for var in range(num_vars):
        pos = neg = 0
        for cube in cubes:
            f = field(cube, var)
            if f == POS:
                pos += 1
            elif f == NEG:
                neg += 1
        if pos and neg and pos + neg > best_score:
            best_var, best_score = var, pos + neg
    return best_var


def tautology(cubes: Sequence[int], num_vars: int) -> bool:
    """Unate-recursive tautology check: does the cover equal 1?"""
    full = universe(num_vars)
    if any(cube == full for cube in cubes):
        return True
    if not cubes:
        return False
    var = binate_variable(cubes, num_vars)
    if var is None:
        # Unate-cover theorem: a unate cover is a tautology iff it
        # contains the universal cube — already checked above.
        return False
    return tautology(
        cofactor_cover(cubes, var, True, num_vars), num_vars
    ) and tautology(cofactor_cover(cubes, var, False, num_vars), num_vars)


def _column_unate_polarity(
    cubes: Sequence[int], var: int, num_vars: int
) -> Optional[int]:
    polarity = None
    for cube in cubes:
        f = field(cube, var)
        if f == DC:
            continue
        if polarity is None:
            polarity = f
        elif polarity != f:
            return None
    return polarity


def complement(cubes: Sequence[int], num_vars: int) -> List[int]:
    """Complement of a cover, as a cover (recursive Shannon)."""
    full = universe(num_vars)
    if not cubes:
        return [full]
    if any(cube == full for cube in cubes):
        return []
    # Split on the most tested variable (binate preferred).
    var = binate_variable(cubes, num_vars)
    if var is None:
        var = _most_tested_variable(cubes, num_vars)
    pos = complement(cofactor_cover(cubes, var, True, num_vars), num_vars)
    neg = complement(cofactor_cover(cubes, var, False, num_vars), num_vars)
    result = []
    for cube in pos:
        result.append(set_field(cube, var, POS))
    for cube in neg:
        result.append(set_field(cube, var, NEG))
    return _single_cube_containment(result, num_vars)


def _most_tested_variable(cubes: Sequence[int], num_vars: int) -> int:
    best_var, best_count = 0, -1
    for var in range(num_vars):
        count = sum(1 for cube in cubes if field(cube, var) != DC)
        if count > best_count:
            best_var, best_count = var, count
    return best_var


def _single_cube_containment(cubes: Sequence[int], num_vars: int) -> List[int]:
    """Drop cubes contained in another single cube."""
    ordered = sorted(set(cubes), key=lambda c: -bin(c).count("1"))
    kept: List[int] = []
    for cube in ordered:
        if not any(contains(other, cube) for other in kept):
            kept.append(cube)
    return kept


def covers_cube(cubes: Sequence[int], target: int, num_vars: int) -> bool:
    """True iff the cover contains every minterm of ``target``.

    Classic reduction: F ⊇ c iff the cofactor of F w.r.t. c is a
    tautology.
    """
    cofactored = []
    for cube in cubes:
        piece = cube
        ok = True
        for var in range(num_vars):
            f = field(target, var)
            if f == DC:
                continue
            value = f == POS
            piece2 = cofactor_cube(piece, var, value, num_vars)
            if piece2 is None:
                ok = False
                break
            piece = piece2
        if ok:
            cofactored.append(piece)
    return tautology(cofactored, num_vars)
