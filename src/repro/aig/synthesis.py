"""AIG-based RRAM synthesis baseline (reimplementation of [12]).

Bürger, Teuscher and Perkowski synthesize memristor logic from
AND-inverter networks with a largely *sequential* implication schedule:
each AND node is evaluated on its own before its parents, so the step
count grows with the node count rather than the logic depth.  This is
the behaviour the paper's Table III (right half) exposes — AIG-based
step counts explode on functions like ``sym10`` while the MIG flow's
stay depth-bounded.

The mapping implemented here (documented substitution, DESIGN.md §3):

* every node computes its *plain* value into a result device;
* ``v = e_l AND e_r`` is evaluated as ``v = !( !e_l + !e_r )`` with IMP:
  one clearing step, one IMP per operand into a shared scratch device,
  and one final inverting IMP — 4 steps per node;
* a complemented fanin edge first materializes the negated operand
  (clear + IMP), +2 steps each — inverters are not free on RRAM;
* complemented primary outputs spend a final clear+IMP pair each.

``aig_rram_costs`` computes the totals analytically and
``compile_aig`` emits the executable micro-program (same step count by
construction) on the shared :mod:`repro.rram` ISA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rram.isa import Imp, LoadInput, MicroOp, Program, Step, WriteLiteral
from .graph import Aig, Signal, signal_is_complemented, signal_node

STEPS_PER_NODE = 4
STEPS_PER_COMPLEMENTED_EDGE = 2


@dataclass(frozen=True)
class AigRealizationCosts:
    """Cost summary of the AIG-based RRAM realization."""

    rrams: int
    steps: int
    nodes: int
    complemented_edges: int

    def as_row(self) -> Tuple[int, int]:
        """``(R, S)``; the original paper [12] reports only ``S``."""
        return (self.rrams, self.steps)


def aig_rram_costs(aig: Aig) -> AigRealizationCosts:
    """Analytic step/device counts of the sequential mapping."""
    nodes = aig.reachable_nodes()
    complemented = aig.complemented_edge_count()
    po_complemented = sum(
        1
        for po in aig.pos
        if signal_is_complemented(po) and signal_node(po) != 0
    )
    steps = (
        1  # data loading
        + STEPS_PER_NODE * len(nodes)
        + STEPS_PER_COMPLEMENTED_EDGE * complemented
        + STEPS_PER_COMPLEMENTED_EDGE * po_complemented
    )
    # Devices: input registers + per-node result registers (lifetime-
    # reduced) + 2 scratch.  For the analytic figure we report the peak
    # from a lifetime walk identical to the compiler's.
    rrams = _peak_devices(aig)
    return AigRealizationCosts(
        rrams=rrams,
        steps=steps,
        nodes=len(nodes),
        complemented_edges=complemented,
    )


def _last_uses(aig: Aig) -> Dict[int, int]:
    """Node → index (in topological order) of its last consumer."""
    order = aig.reachable_nodes()
    position = {node: i for i, node in enumerate(order)}
    last: Dict[int, int] = {}
    for node in order:
        for child in aig.children(node):
            child_node = signal_node(child)
            if child_node != 0:
                last[child_node] = position[node]
    for po in aig.pos:
        driver = signal_node(po)
        if driver != 0:
            last[driver] = len(order)  # keep to the end
    return last


def _peak_devices(aig: Aig) -> int:
    order = aig.reachable_nodes()
    last = _last_uses(aig)
    live = aig.num_pis + 2  # input registers + scratch pair
    peak = live
    alive: Dict[int, int] = {}
    for index, node in enumerate(order):
        live += 1
        alive[node] = last.get(node, index)
        peak = max(peak, live)
        for value, last_index in list(alive.items()):
            if last_index <= index:
                del alive[value]
                live -= 1
    return peak


class _Allocator:
    def __init__(self) -> None:
        self._free: List[int] = []
        self._next = 0

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        index = self._next
        self._next += 1
        return index

    def release(self, index: int) -> None:
        self._free.append(index)

    @property
    def high_water(self) -> int:
        return self._next


def compile_aig(aig: Aig, *, name: Optional[str] = None) -> Program:
    """Emit the executable sequential micro-program for an AIG."""
    order = aig.reachable_nodes()
    last = _last_uses(aig)
    position = {node: i for i, node in enumerate(order)}

    allocator = _Allocator()
    steps: List[Step] = []

    pi_index = {node: i for i, node in enumerate(aig.pis)}
    registers: Dict[int, int] = {}
    load_ops: List[MicroOp] = []
    for node in aig.pis:
        device = allocator.allocate()
        registers[node] = device
        load_ops.append(LoadInput(device, pi_index[node]))
    const_false = allocator.allocate()
    const_true = allocator.allocate()
    load_ops.append(WriteLiteral(const_false, False))
    load_ops.append(WriteLiteral(const_true, True))
    scratch_a = allocator.allocate()
    scratch_b = allocator.allocate()
    steps.append(Step(load_ops, "load-inputs"))

    def operand_device(signal: Signal, scratch: int) -> int:
        """Device holding the *effective* operand value; may spend two
        steps materializing a complement into ``scratch``."""
        node = signal_node(signal)
        if node == 0:
            return const_true if signal & 1 else const_false
        source = registers[node]
        if not signal_is_complemented(signal):
            return source
        steps.append(Step([WriteLiteral(scratch, False)], "aig-inv-clear"))
        steps.append(Step([Imp(source, scratch)], "aig-inv"))
        return scratch

    for node in order:
        left, right = aig.children(node)
        result = allocator.allocate()
        t = allocator.allocate()
        left_device = operand_device(left, scratch_a)
        right_device = operand_device(right, scratch_b)
        steps.append(
            Step(
                [WriteLiteral(t, False), WriteLiteral(result, False)],
                f"aig-n{node}-clear",
            )
        )
        steps.append(Step([Imp(right_device, t)], f"aig-n{node}-imp1"))
        steps.append(Step([Imp(left_device, t)], f"aig-n{node}-imp2"))
        steps.append(Step([Imp(t, result)], f"aig-n{node}-imp3"))
        allocator.release(t)
        registers[node] = result
        index = position[node]
        for value, last_index in [
            (v, last.get(v, -1)) for v in list(registers) if aig.is_and(v)
        ]:
            if last_index <= index and value != node:
                allocator.release(registers.pop(value))

    output_devices: Dict[int, int] = {}
    for po_pos, po in enumerate(aig.pos):
        driver = signal_node(po)
        if driver == 0:
            output_devices[po_pos] = const_true if po & 1 else const_false
        elif signal_is_complemented(po):
            device = allocator.allocate()
            steps.append(Step([WriteLiteral(device, False)], "aig-po-clear"))
            steps.append(Step([Imp(registers[driver], device)], "aig-po-inv"))
            output_devices[po_pos] = device
        else:
            output_devices[po_pos] = registers[driver]

    program = Program(
        name=name or aig.name,
        realization="aig-imp",
        num_devices=allocator.high_water,
        steps=steps,
        num_inputs=aig.num_pis,
        output_devices=output_devices,
    )
    program.validate()
    return program
