"""AIG package and the AIG-based RRAM synthesis baseline [12]."""

from .graph import (
    CONST0,
    CONST1,
    Aig,
    Signal,
    aig_from_netlist,
    signal_is_complemented,
    signal_node,
    signal_not,
)
from .balance import balance
from .synthesis import (
    STEPS_PER_COMPLEMENTED_EDGE,
    STEPS_PER_NODE,
    AigRealizationCosts,
    aig_rram_costs,
    compile_aig,
)

__all__ = [
    "CONST0",
    "CONST1",
    "Aig",
    "Signal",
    "aig_from_netlist",
    "signal_is_complemented",
    "signal_node",
    "signal_not",
    "STEPS_PER_COMPLEMENTED_EDGE",
    "STEPS_PER_NODE",
    "AigRealizationCosts",
    "aig_rram_costs",
    "compile_aig",
    "balance",
]
