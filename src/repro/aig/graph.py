"""And-Inverter Graphs.

The substrate for the AIG-based RRAM-synthesis baseline [12].  Same
signal convention as :mod:`repro.mig` (``(node << 1) | complement``),
two-input AND nodes with structural hashing and constant/idempotence
simplification at creation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..network import GateType, Netlist, NetlistError
from ..truth import TruthTable, table_mask

Signal = int

CONST0: Signal = 0
CONST1: Signal = 1


def signal_node(signal: Signal) -> int:
    """Node index behind a signal."""
    return signal >> 1


def signal_is_complemented(signal: Signal) -> bool:
    """True iff the signal is complemented."""
    return bool(signal & 1)


def signal_not(signal: Signal) -> Signal:
    """Negate a signal."""
    return signal ^ 1


class Aig:
    """A structurally hashed And-Inverter Graph."""

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        self._children: List[Optional[Tuple[Signal, Signal]]] = [None]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[Signal] = []
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[Signal, Signal], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> Signal:
        """Create a primary input; returns its signal."""
        node = len(self._children)
        self._children.append(None)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"x{len(self._pis) - 1}")
        return node << 1

    def add_po(self, signal: Signal, name: Optional[str] = None) -> int:
        """Register a primary output; returns its index."""
        self._check(signal)
        self._pos.append(signal)
        self._po_names.append(name if name is not None else f"f{len(self._pos) - 1}")
        return len(self._pos) - 1

    def make_and(self, a: Signal, b: Signal) -> Signal:
        """``a AND b`` with constant folding and structural hashing."""
        self._check(a)
        self._check(b)
        if a == CONST0 or b == CONST0 or a == signal_not(b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        if a == b:
            return a
        key = (a, b) if a < b else (b, a)
        found = self._strash.get(key)
        if found is not None:
            return found << 1
        node = len(self._children)
        self._children.append(key)
        self._strash[key] = node
        return node << 1

    def make_or(self, a: Signal, b: Signal) -> Signal:
        """``a OR b`` via De Morgan."""
        return signal_not(self.make_and(signal_not(a), signal_not(b)))

    def make_xor(self, a: Signal, b: Signal) -> Signal:
        """``a XOR b`` as ``!( !(a!b) · !(!ab) )`` (three AND nodes)."""
        return self.make_or(
            self.make_and(a, signal_not(b)), self.make_and(signal_not(a), b)
        )

    def make_mux(self, sel: Signal, then: Signal, other: Signal) -> Signal:
        """``sel ? then : other``."""
        return self.make_or(
            self.make_and(sel, then), self.make_and(signal_not(sel), other)
        )

    def make_maj(self, a: Signal, b: Signal, c: Signal) -> Signal:
        """Ternary majority as ``mux(a, b+c, bc)`` (five AND nodes)."""
        return self.make_mux(a, self.make_or(b, c), self.make_and(b, c))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_pis(self) -> int:
        """Primary input count."""
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        """Primary output count."""
        return len(self._pos)

    @property
    def pis(self) -> List[int]:
        """Primary-input node indices."""
        return list(self._pis)

    @property
    def pos(self) -> List[Signal]:
        """Primary-output signals."""
        return list(self._pos)

    @property
    def pi_names(self) -> List[str]:
        """Primary-input names."""
        return list(self._pi_names)

    @property
    def po_names(self) -> List[str]:
        """Primary-output names."""
        return list(self._po_names)

    def is_and(self, node: int) -> bool:
        """True iff ``node`` is an AND gate."""
        return self._children[node] is not None

    def is_pi(self, node: int) -> bool:
        """True iff ``node`` is a primary input."""
        return node != 0 and self._children[node] is None

    def children(self, node: int) -> Tuple[Signal, Signal]:
        """Child signals of an AND node."""
        pair = self._children[node]
        if pair is None:
            raise ValueError(f"node {node} is not an AND gate")
        return pair

    def reachable_nodes(self) -> List[int]:
        """AND nodes reachable from the POs, topologically ordered.

        Node indices grow monotonically with creation and children
        always precede parents, so index order is a topological order.
        """
        seen: Set[int] = set()
        stack = [signal_node(po) for po in self._pos]
        while stack:
            node = stack.pop()
            if node in seen or not self.is_and(node):
                continue
            seen.add(node)
            for child in self._children[node]:  # type: ignore[union-attr]
                stack.append(signal_node(child))
        return sorted(seen)

    def num_ands(self) -> int:
        """Number of live AND nodes — the AIG *size*."""
        return len(self.reachable_nodes())

    def depth(self) -> int:
        """Longest PI→PO path measured in AND gates."""
        levels: Dict[int, int] = {0: 0}
        for pi in self._pis:
            levels[pi] = 0
        for node in self.reachable_nodes():
            a, b = self.children(node)
            levels[node] = 1 + max(
                levels.get(signal_node(a), 0), levels.get(signal_node(b), 0)
            )
        return max(
            (levels.get(signal_node(po), 0) for po in self._pos), default=0
        )

    def complemented_edge_count(self) -> int:
        """Complemented fanin edges of live nodes (constants excluded)."""
        count = 0
        for node in self.reachable_nodes():
            for child in self.children(node):
                if signal_is_complemented(child) and signal_node(child) != 0:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate_words(self, input_words: Sequence[int], mask: int) -> List[int]:
        """Bit-parallel simulation (same contract as :meth:`Mig.simulate_words`)."""
        if len(input_words) != len(self._pis):
            raise ValueError(
                f"expected {len(self._pis)} input words, got {len(input_words)}"
            )
        values: Dict[int, int] = {0: 0}
        for node, word in zip(self._pis, input_words):
            values[node] = word & mask

        def word_of(signal: Signal) -> int:
            value = values[signal_node(signal)]
            return value ^ mask if signal & 1 else value

        for node in self.reachable_nodes():
            a, b = self.children(node)
            values[node] = word_of(a) & word_of(b)
        return [word_of(po) for po in self._pos]

    def truth_tables(self) -> List[TruthTable]:
        """Exhaustive per-output truth tables (guarded to 20 inputs)."""
        num_vars = len(self._pis)
        if num_vars > 20:
            raise ValueError(f"refusing exhaustive simulation of {num_vars} inputs")
        mask = table_mask(num_vars)
        words = [TruthTable.variable(num_vars, i).bits for i in range(num_vars)]
        return [
            TruthTable(num_vars, word)
            for word in self.simulate_words(words, mask)
        ]

    def _check(self, signal: Signal) -> None:
        if not 0 <= signal_node(signal) < len(self._children):
            raise ValueError(f"signal {signal} references an unknown node")

    def __repr__(self) -> str:
        return (
            f"Aig({self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"ands={self.num_ands()})"
        )


def aig_from_netlist(netlist: Netlist) -> Aig:
    """Lower a gate-level netlist into a fresh AIG (balanced n-ary trees)."""
    netlist.validate()
    aig = Aig(netlist.name)
    values: Dict[str, Signal] = {}
    for name in netlist.inputs:
        values[name] = aig.add_pi(name)

    def reduce_balanced(operands: List[Signal], combine) -> Signal:
        work = list(operands)
        while len(work) > 1:
            nxt = [combine(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)]
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    for gate in netlist.topological_order():
        operands = [values[op] for op in gate.operands]
        kind = gate.gate_type
        if kind is GateType.CONST0:
            signal = CONST0
        elif kind is GateType.CONST1:
            signal = CONST1
        elif kind is GateType.BUF:
            signal = operands[0]
        elif kind is GateType.NOT:
            signal = signal_not(operands[0])
        elif kind in (GateType.AND, GateType.NAND):
            signal = reduce_balanced(operands, aig.make_and)
            if kind is GateType.NAND:
                signal = signal_not(signal)
        elif kind in (GateType.OR, GateType.NOR):
            signal = reduce_balanced(operands, aig.make_or)
            if kind is GateType.NOR:
                signal = signal_not(signal)
        elif kind in (GateType.XOR, GateType.XNOR):
            signal = reduce_balanced(operands, aig.make_xor)
            if kind is GateType.XNOR:
                signal = signal_not(signal)
        elif kind is GateType.MAJ:
            signal = aig.make_maj(*operands)
        elif kind is GateType.MUX:
            signal = aig.make_mux(*operands)
        else:
            raise NetlistError(f"cannot lower gate type {kind} to AIG")
        values[gate.name] = signal

    for name in netlist.outputs:
        aig.add_po(values[name], name)
    return aig
