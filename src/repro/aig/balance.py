"""AIG depth balancing.

Rebuilds the AND trees of an AIG as balanced reductions: maximal
same-polarity conjunction chains are collected into operand lists and
re-combined shallowest-first (Huffman-style on arrival levels).  This
is the classic ``balance`` pass of the AIG tradition; the AIG-based
RRAM baseline [12] is node-count-bound rather than depth-bound, so the
pass mostly serves API completeness and the depth statistics the test
suite checks.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from .graph import Aig, Signal, signal_is_complemented, signal_node


def balance(aig: Aig) -> Aig:
    """Return a depth-balanced copy of ``aig``."""
    result = Aig(f"{aig.name}_bal")
    mapping: Dict[int, Signal] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        mapping[node] = result.add_pi(name)

    levels: Dict[Signal, int] = {}

    def level_of(signal: Signal) -> int:
        return levels.get(signal & ~1, 0)

    def conjunction_leaves(node: int) -> List[Signal]:
        """Collect the leaves of the maximal AND tree rooted at node.

        A child participates in the same conjunction when it is a
        non-complemented AND with fanout usable here (conservatively:
        always expand non-complemented AND children — re-expansion is
        sound because the rebuild is memoized per node).
        """
        leaves: List[Signal] = []
        stack = [node]
        while stack:
            current = stack.pop()
            for child in aig.children(current):
                child_node = signal_node(child)
                if not signal_is_complemented(child) and aig.is_and(child_node):
                    stack.append(child_node)
                else:
                    leaves.append(child)
        return leaves

    def convert(signal: Signal) -> Signal:
        node = signal_node(signal)
        mapped = mapping.get(node)
        if mapped is None:
            leaves = conjunction_leaves(node)
            converted = [convert(leaf) for leaf in leaves]
            # Shallowest-first pairing minimizes the tree's depth.
            heap: List[Tuple[int, int, Signal]] = [
                (level_of(s), i, s) for i, s in enumerate(converted)
            ]
            heapq.heapify(heap)
            counter = len(converted)
            while len(heap) > 1:
                level_a, _ia, a = heapq.heappop(heap)
                level_b, _ib, b = heapq.heappop(heap)
                combined = result.make_and(a, b)
                levels[combined & ~1] = max(level_a, level_b) + 1
                heapq.heappush(heap, (levels[combined & ~1], counter, combined))
                counter += 1
            mapped = heap[0][2]
            mapping[node] = mapped
        return mapped ^ (signal & 1)

    for po, name in zip(aig.pos, aig.po_names):
        result.add_po(convert(po), name)
    return result
