"""Gate-level netlist IR and simulation."""

from .netlist import (
    Gate,
    GateType,
    Netlist,
    NetlistError,
    evaluate_gate_words,
    netlists_equivalent,
)

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "NetlistError",
    "evaluate_gate_words",
    "netlists_equivalent",
]
