"""Gate-level netlist IR and simulation."""

from .netlist import Gate, GateType, Netlist, NetlistError, evaluate_gate_words

__all__ = ["Gate", "GateType", "Netlist", "NetlistError", "evaluate_gate_words"]
