"""Gate-level netlist intermediate representation.

The :class:`Netlist` is the neutral substrate between the benchmark
file parsers (``repro.io``) and the three graph representations
(``repro.mig``, ``repro.bdd``, ``repro.aig``).  It is a named DAG of
primitive gates with n-ary AND/OR/XOR support (as produced by ISCAS89
``.bench`` and BLIF files) plus the ternary MAJ and MUX primitives used
by structural benchmark generators.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..truth import TruthTable, table_mask


class GateType(enum.Enum):
    """Primitive gate functions supported by the netlist IR."""

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MAJ = "maj"
    MUX = "mux"  # operands (sel, a, b): sel ? a : b


_FIXED_ARITY = {
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.MAJ: 3,
    GateType.MUX: 3,
}

_MIN_VARIADIC_ARITY = 1  # .bench files occasionally use 1-input AND/OR


class NetlistError(ValueError):
    """Raised for structurally invalid netlists."""


class Gate:
    """A single named gate: a function type applied to named operands."""

    __slots__ = ("name", "gate_type", "operands")

    def __init__(self, name: str, gate_type: GateType, operands: Tuple[str, ...]):
        self.name = name
        self.gate_type = gate_type
        self.operands = operands

    def __repr__(self) -> str:
        args = ", ".join(self.operands)
        return f"{self.name} = {self.gate_type.value}({args})"


def evaluate_gate_words(gate_type: GateType, words: Sequence[int], mask: int) -> int:
    """Evaluate one gate over bit-parallel words (bit *i* = vector *i*)."""
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return mask
    if gate_type is GateType.BUF:
        return words[0]
    if gate_type is GateType.NOT:
        return words[0] ^ mask
    if gate_type in (GateType.AND, GateType.NAND):
        acc = mask
        for word in words:
            acc &= word
        return acc if gate_type is GateType.AND else acc ^ mask
    if gate_type in (GateType.OR, GateType.NOR):
        acc = 0
        for word in words:
            acc |= word
        return acc if gate_type is GateType.OR else acc ^ mask
    if gate_type in (GateType.XOR, GateType.XNOR):
        acc = 0
        for word in words:
            acc ^= word
        return acc if gate_type is GateType.XOR else acc ^ mask
    if gate_type is GateType.MAJ:
        a, b, c = words
        return (a & b) | (a & c) | (b & c)
    if gate_type is GateType.MUX:
        sel, then, other = words
        return (sel & then) | ((sel ^ mask) & other)
    raise NetlistError(f"unknown gate type {gate_type}")


class Netlist:
    """A combinational gate-level network with named nets.

    Nets are identified by strings.  Primary inputs are declared with
    :meth:`add_input`; every other net is defined exactly once by
    :meth:`add_gate`.  Primary outputs reference existing nets.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._topo_cache: Optional[List[Gate]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        if name in self._gates or name in self._inputs:
            raise NetlistError(f"net {name!r} already defined")
        self._inputs.append(name)
        self._topo_cache = None
        return name

    def add_gate(
        self, name: str, gate_type: GateType, operands: Sequence[str]
    ) -> str:
        """Define net ``name`` as ``gate_type`` over ``operands``."""
        if name in self._gates or name in self._inputs:
            raise NetlistError(f"net {name!r} already defined")
        arity = _FIXED_ARITY.get(gate_type)
        if arity is not None:
            if len(operands) != arity:
                raise NetlistError(
                    f"{gate_type.value} takes {arity} operands, got {len(operands)}"
                )
        elif len(operands) < _MIN_VARIADIC_ARITY:
            raise NetlistError(f"{gate_type.value} needs at least one operand")
        self._gates[name] = Gate(name, gate_type, tuple(operands))
        self._topo_cache = None
        return name

    def set_output(self, name: str) -> None:
        """Mark an existing net as a primary output (duplicates allowed)."""
        self._outputs.append(name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> List[str]:
        """Primary input names, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        """Primary output names, in declaration order."""
        return list(self._outputs)

    @property
    def num_gates(self) -> int:
        """Number of gate definitions (excludes primary inputs)."""
        return len(self._gates)

    def gate(self, name: str) -> Gate:
        """Return the :class:`Gate` driving net ``name``."""
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no gate drives net {name!r}") from None

    def has_net(self, name: str) -> bool:
        """True iff ``name`` is a declared input or a defined gate."""
        return name in self._inputs or name in self._gates

    def gates(self) -> Iterable[Gate]:
        """Iterate all gates in definition order."""
        return self._gates.values()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling nets, cycles, or
        undriven outputs."""
        for gate in self._gates.values():
            for operand in gate.operands:
                if not self.has_net(operand):
                    raise NetlistError(
                        f"gate {gate.name!r} references undefined net {operand!r}"
                    )
        for output in self._outputs:
            if not self.has_net(output):
                raise NetlistError(f"primary output {output!r} is undriven")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[Gate]:
        """Return gates sorted so operands precede users (raises on cycles)."""
        if self._topo_cache is not None:
            return self._topo_cache
        order: List[Gate] = []
        state: Dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
        for input_name in self._inputs:
            state[input_name] = 2
        for root in self._gates:
            if state.get(root, 0) == 2:
                continue
            stack = [(root, 0)]
            while stack:
                name, operand_index = stack.pop()
                if state.get(name, 0) == 2:
                    continue
                gate = self._gates.get(name)
                if gate is None:
                    raise NetlistError(f"undefined net {name!r}")
                if operand_index == 0:
                    state[name] = 1
                pushed = False
                for i in range(operand_index, len(gate.operands)):
                    operand = gate.operands[i]
                    operand_state = state.get(operand, 0)
                    if operand_state == 1:
                        raise NetlistError(
                            f"combinational cycle through net {operand!r}"
                        )
                    if operand_state == 0:
                        stack.append((name, i + 1))
                        stack.append((operand, 0))
                        pushed = True
                        break
                if not pushed:
                    state[name] = 2
                    order.append(gate)
        self._topo_cache = order
        return order

    def level_of(self) -> Dict[str, int]:
        """Return the logic level (longest path from inputs) of every net."""
        levels: Dict[str, int] = {name: 0 for name in self._inputs}
        for gate in self.topological_order():
            if gate.operands:
                levels[gate.name] = 1 + max(levels[op] for op in gate.operands)
            else:
                levels[gate.name] = 0
        return levels

    def depth(self) -> int:
        """Return the maximum output level."""
        if not self._outputs:
            return 0
        levels = self.level_of()
        return max(levels[name] for name in self._outputs)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate_words(
        self, input_words: Mapping[str, int], mask: int
    ) -> Dict[str, int]:
        """Bit-parallel simulation: every net gets a word of vectors.

        ``input_words`` maps each primary input to a word whose bit *i*
        is that input's value in test vector *i*; ``mask`` has one bit
        set per vector.  Returns output name → word.
        """
        values: Dict[str, int] = {}
        for name in self._inputs:
            try:
                values[name] = input_words[name] & mask
            except KeyError:
                raise NetlistError(f"missing value for input {name!r}") from None
        for gate in self.topological_order():
            words = [values[op] for op in gate.operands]
            values[gate.name] = evaluate_gate_words(gate.gate_type, words, mask)
        return {name: values[name] for name in set(self._outputs)}

    def simulate(self, assignment: Mapping[str, bool]) -> Dict[str, bool]:
        """Single-vector convenience wrapper over :meth:`simulate_words`."""
        words = {}
        for name in self._inputs:
            if name not in assignment:
                raise NetlistError(f"missing value for input {name!r}")
            words[name] = 1 if assignment[name] else 0
        result = self.simulate_words(words, 1)
        return {name: bool(word) for name, word in result.items()}

    def truth_tables(self) -> List[TruthTable]:
        """Exhaustive output truth tables (inputs in declaration order).

        Exponential in input count; guarded to 20 inputs.
        """
        num_vars = len(self._inputs)
        if num_vars > 20:
            raise NetlistError(
                f"refusing exhaustive simulation of {num_vars} inputs"
            )
        mask = table_mask(num_vars)
        input_words = {
            name: TruthTable.variable(num_vars, i).bits
            for i, name in enumerate(self._inputs)
        }
        out_words = self.simulate_words(input_words, mask)
        return [TruthTable(num_vars, out_words[name]) for name in self._outputs]

    def extract_output_cone(self, output_index: int, name: str = "") -> "Netlist":
        """A new netlist containing only the logic feeding one output.

        Primary inputs are preserved in declaration order, including
        inputs the cone does not reference (the interface stays that of
        the original circuit, as benchmark suites expect).
        """
        target = self._outputs[output_index]
        cone = Netlist(name or f"{self.name}_o{output_index}")
        for input_name in self._inputs:
            cone.add_input(input_name)
        needed: List[str] = []
        stack = [target]
        seen = set(self._inputs)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            needed.append(net)
            stack.extend(self.gate(net).operands)
        for gate in self.topological_order():
            if gate.name in needed:
                cone.add_gate(gate.name, gate.gate_type, gate.operands)
        cone.set_output(target)
        cone.validate()
        return cone

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Return a summary dict (inputs/outputs/gates/depth)."""
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "gates": len(self._gates),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Netlist({self.name!r}, inputs={s['inputs']}, "
            f"outputs={s['outputs']}, gates={s['gates']})"
        )


NETLIST_EXHAUSTIVE_LIMIT = 12
NETLIST_RANDOM_VECTORS = 256


def netlists_equivalent(
    first: Netlist,
    second: Netlist,
    *,
    exhaustive_limit: int = NETLIST_EXHAUSTIVE_LIMIT,
    num_vectors: int = NETLIST_RANDOM_VECTORS,
    seed: int = 0x10BF,
) -> bool:
    """Check two netlists compute the same function.

    Inputs and outputs are matched *positionally* (declaration order),
    which is the contract every format writer/reader pair preserves.
    Small interfaces are compared exhaustively; larger ones with a
    seeded batch of random vectors plus the all-0/all-1 corners.
    """
    if len(first.inputs) != len(second.inputs):
        return False
    if len(first.outputs) != len(second.outputs):
        return False
    num_inputs = len(first.inputs)
    if num_inputs <= exhaustive_limit:
        return first.truth_tables() == second.truth_tables()
    rng = random.Random(seed)
    mask = (1 << (num_vectors + 2)) - 1
    corner_bits = 1  # vector 0 all-zeros, vector 1 all-ones
    words = [
        (rng.getrandbits(num_vectors) << 2) | (corner_bits << 1)
        for _ in range(num_inputs)
    ]
    first_words = {
        name: word for name, word in zip(first.inputs, words)
    }
    second_words = {
        name: word for name, word in zip(second.inputs, words)
    }
    first_out = first.simulate_words(first_words, mask)
    second_out = second.simulate_words(second_words, mask)
    first_values = [first_out[name] for name in first.outputs]
    second_values = [second_out[name] for name in second.outputs]
    return first_values == second_values
