"""Device-level walk-through of the paper's RRAM primitives.

Reproduces, on the behavioural device model:

* Fig. 1(b) — the IMP truth table (``q' = !p + q``);
* Fig. 2    — the intrinsic majority switching tables
  (``R' = P·!Q`` when R=0, ``R' = P + !Q`` when R=1);
* Sec. III-A1 / Fig. 3 — the 10-step IMP-based majority gadget;
* Sec. III-A2 — the 3-step MAJ-based majority gadget,

printing each step's device states for one input combination.

Run:  python examples/rram_microops.py
"""

from repro.rram import RramArray, RramDevice, standalone_majority_program


def show_imp_truth_table() -> None:
    print("Fig. 1(b) — IMP truth table (q' = !p + q):")
    print("  p q | q'")
    for p in (0, 1):
        for q in (0, 1):
            array = RramArray(2)
            array.devices[0].write(bool(p))
            array.devices[1].write(bool(q))
            from repro.rram import Imp, Step

            array.execute_step(Step([Imp(0, 1)]))
            print(f"  {p} {q} |  {int(array.state(1))}")
    print()


def show_intrinsic_majority() -> None:
    print("Fig. 2 — intrinsic majority R' = M(P, !Q, R):")
    for r in (0, 1):
        print(f"  R={r}:  P Q | R'")
        for p in (0, 1):
            for q in (0, 1):
                device = RramDevice(bool(r))
                device.apply(bool(p), bool(q))
                print(f"        {p} {q} |  {int(device.state)}")
    print()


def trace_gadget(realization: str, inputs) -> None:
    program = standalone_majority_program(realization)
    array = RramArray(program.num_devices)
    names = "XYZABC"[: program.num_devices]
    print(
        f"{realization.upper()}-based majority gadget, "
        f"x={int(inputs[0])} y={int(inputs[1])} z={int(inputs[2])}:"
    )
    print(f"  step {'label':<12s} {' '.join(names)}")
    for index, step in enumerate(program.steps, start=1):
        array.execute_step(step, inputs)
        states = " ".join(str(int(s)) for s in array.states())
        print(f"  {index:>4d} {step.label:<12s} {states}")
    out_device = program.output_devices[0]
    expected = int(sum(inputs) >= 2)
    print(
        f"  result in device {names[out_device]}: {int(array.state(out_device))} "
        f"(expected M(x,y,z) = {expected})"
    )
    print()


def main() -> None:
    show_imp_truth_table()
    show_intrinsic_majority()
    trace_gadget("imp", [True, False, True])
    trace_gadget("maj", [True, False, True])


if __name__ == "__main__":
    main()
