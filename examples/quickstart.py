"""Quickstart: synthesize a function for RRAM in-memory computing.

Builds a small arithmetic circuit, optimizes it with the paper's
multi-objective algorithm, prints the Table-I cost model for both
realizations, compiles the MAJ-based micro-program, and executes it on
the device-level RRAM array simulator.

Run:  python examples/quickstart.py
"""

from repro.mig import (
    EquivalenceGuard,
    Realization,
    mig_from_netlist,
    optimize_rram,
    rram_costs,
)
from repro.network import GateType, Netlist
from repro.rram import compile_mig, run_program, verify_compiled


def build_circuit() -> Netlist:
    """A 1-bit full adder plus a comparison flag: 4 inputs, 3 outputs."""
    netlist = Netlist("quickstart")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    cin = netlist.add_input("cin")
    flag = netlist.add_input("flag")
    netlist.add_gate("axb", GateType.XOR, [a, b])
    netlist.add_gate("sum", GateType.XOR, ["axb", cin])
    netlist.add_gate("cout", GateType.MAJ, [a, b, cin])
    netlist.add_gate("gated", GateType.AND, ["sum", flag])
    for out in ("sum", "cout", "gated"):
        netlist.set_output(out)
    return netlist


def main() -> None:
    netlist = build_circuit()
    print(f"circuit: {netlist.stats()}")

    # 1. Lower to a Majority-Inverter Graph.
    mig = mig_from_netlist(netlist)
    guard = EquivalenceGuard(mig)  # remembers the function

    # 2. Optimize for RRAM costs (paper Alg. 3) targeting the MAJ
    #    realization.
    result = optimize_rram(mig, Realization.MAJ)
    guard.verify_or_raise()  # optimization must preserve the function
    print(
        f"optimized: size {result.initial_size} -> {result.final_size}, "
        f"depth {result.initial_depth} -> {result.final_depth}"
    )

    # 3. The Table-I cost model for both realizations.
    for realization in (Realization.IMP, Realization.MAJ):
        costs = rram_costs(mig, realization)
        print(
            f"  {realization.value.upper():3s}: R={costs.rrams} RRAMs, "
            f"S={costs.steps} steps (depth {costs.depth}, "
            f"{costs.levels_with_complements} complemented levels)"
        )

    # 4. Compile to an executable micro-program and run it.
    report = compile_mig(mig, Realization.MAJ)
    print(
        f"compiled MAJ program: {report.measured_steps} steps on "
        f"{report.measured_devices} devices "
        f"(matches model: {report.steps_match_model})"
    )
    assert verify_compiled(mig, report), "program must match the MIG"

    outputs = run_program(report.program, [True, True, False, True])
    print(f"a=1 b=1 cin=0 flag=1  ->  sum={int(outputs[0])} "
          f"cout={int(outputs[1])} gated={int(outputs[2])}")


if __name__ == "__main__":
    main()
