"""MIG vs BDD vs AIG for RRAM-based computing (the paper's core claim).

Synthesizes the same functions through all three flows and prints the
step counts side by side: the MIG step count scales with logic *depth*
while both baselines scale with *node count*, which is why the paper's
MAJ-realized MIG flow wins by growing factors on larger functions.

Run:  python examples/compare_representations.py
"""

from repro.aig import aig_from_netlist, aig_rram_costs
from repro.bdd import bdd_rram_costs, build_best_order
from repro.benchmarks import load_netlist
from repro.mig import Realization, mig_from_netlist, optimize_rram, rram_costs
from repro.rram import compile_plim

FUNCTIONS = ["xor5_d", "rd53f1", "rd84f4", "9sym_d", "sym10_d", "parity", "t481", "cm150a"]


def main() -> None:
    header = (
        f"{'function':<10s} {'inputs':>6s} | {'BDD S':>7s} {'AIG S':>7s} "
        f"{'PLiM S':>7s} {'MIG-IMP S':>9s} {'MIG-MAJ S':>9s} | best"
    )
    print(header)
    print("-" * len(header))
    for name in FUNCTIONS:
        netlist = load_netlist(name)

        manager, roots, _ = build_best_order(netlist, candidates=2)
        bdd_steps = bdd_rram_costs(manager, roots).steps

        aig_steps = aig_rram_costs(aig_from_netlist(netlist)).steps

        mig = mig_from_netlist(netlist)
        optimize_rram(mig, Realization.MAJ)
        maj_steps = rram_costs(mig, Realization.MAJ).steps
        imp_steps = rram_costs(mig, Realization.IMP).steps
        plim_steps = compile_plim(mig).instructions

        best = min(
            ("BDD", bdd_steps),
            ("AIG", aig_steps),
            ("PLiM", plim_steps),
            ("MIG-IMP", imp_steps),
            ("MIG-MAJ", maj_steps),
            key=lambda item: item[1],
        )[0]
        print(
            f"{name:<10s} {len(netlist.inputs):>6d} | {bdd_steps:>7d} "
            f"{aig_steps:>7d} {plim_steps:>7d} {imp_steps:>9d} "
            f"{maj_steps:>9d} | {best}"
        )
    print()
    print("Shape check (paper Sec. IV-C): MIG-MAJ steps stay depth-bounded")
    print("while BDD/AIG step counts track node counts and blow up on the")
    print("wider symmetric and parity-class functions.")


if __name__ == "__main__":
    main()
