"""Reproduce a slice of paper Table II with paper-vs-measured rows.

Runs all six algorithm/realization configurations on a representative
subset of the large benchmark set (pass benchmark names as arguments to
choose your own, or ``--all`` for the full 25 — a few minutes).

Run:  python examples/reproduce_table2.py [--all | name ...]
"""

import sys

from repro.benchmarks import large_names
from repro.flows import (
    render_summary,
    render_table2,
    run_table2,
    summarize_table2,
)

DEFAULT_SUBSET = ["5xp1", "parity", "cm150a", "x2", "t481", "clip", "b9", "apex7"]


def main() -> None:
    args = sys.argv[1:]
    if "--all" in args:
        names = large_names()
    elif args:
        names = args
    else:
        names = DEFAULT_SUBSET
    print(f"running Table II configurations on: {', '.join(names)}")
    result = run_table2(names, verify=True)
    print()
    print(render_table2(result))
    print()
    print(render_summary(summarize_table2(result)))
    print()
    print("(absolute numbers differ — benchmark stand-ins and a Python")
    print(" reimplementation — but the orderings should match the paper:")
    print(" Step-MAJ < RRAM-MAJ < Step-IMP/RRAM-IMP < Depth < Area in S,")
    print(" and RRAM-MAJ the smallest R.)")


if __name__ == "__main__":
    main()
