"""End-to-end flow on a user-supplied PLA description.

Shows the downstream-user path: parse an espresso-format PLA, lower it
to a netlist, synthesize with each of the paper's algorithms, and pick
the realization/algorithm pair with the fewest computational steps —
then compile that winner and execute it on the array simulator.

Run:  python examples/custom_pla_flow.py
"""

from repro.io import parse_pla, pla_to_netlist
from repro.mig import (
    ALGORITHMS,
    EquivalenceGuard,
    Realization,
    mig_from_netlist,
    rram_costs,
)
from repro.rram import compile_mig, verify_compiled

# A small two-output controller in espresso format.
PLA_SOURCE = """\
.i 6
.o 2
.ilb req0 req1 busy mode par sel
.ob grant irq
.p 7
1-0--- 10
-10--1 10
110--- 01
--11-- 01
---110 01
1-1-1- 10
0-0-0- 01
.e
"""


def main() -> None:
    cover = parse_pla(PLA_SOURCE, name="controller")
    netlist = pla_to_netlist(cover)
    print(f"parsed PLA: {netlist.stats()}")

    best = None
    for algorithm_name, optimizer in ALGORITHMS.items():
        for realization in (Realization.IMP, Realization.MAJ):
            mig = mig_from_netlist(netlist)
            guard = EquivalenceGuard(mig)
            if algorithm_name in ("rram", "steps"):
                optimizer(mig, realization)
            else:
                optimizer(mig)
            guard.verify_or_raise()
            costs = rram_costs(mig, realization)
            print(
                f"  {algorithm_name:>5s}/{realization.value:<3s}: "
                f"R={costs.rrams:>3d} S={costs.steps:>3d} "
                f"(depth {costs.depth}, size {costs.size})"
            )
            if best is None or costs.steps < best[0].steps:
                best = (costs, algorithm_name, mig)

    assert best is not None
    costs, algorithm_name, mig = best
    print(
        f"\nwinner: {algorithm_name}/{costs.realization.value} with "
        f"S={costs.steps}, R={costs.rrams}"
    )
    report = compile_mig(mig, costs.realization)
    assert verify_compiled(mig, report)
    print(
        f"compiled and functionally verified on the array simulator: "
        f"{report.measured_steps} steps, {report.measured_devices} devices"
    )


if __name__ == "__main__":
    main()
