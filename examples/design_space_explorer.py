"""Design-space exploration for one circuit.

Sweeps every optimization algorithm × realization × backend for a
chosen benchmark (or a circuit file) and prints the full cost picture:
steps, devices, write energy, and endurance hot-spot — everything a
designer would weigh when targeting an RRAM array.

Run:  python examples/design_space_explorer.py [benchmark-name]
"""

import sys

from repro.benchmarks import ALL_BENCHMARKS, load_netlist
from repro.io import pla_to_netlist, read_bench, read_blif, read_pla
from repro.mig import (
    ALGORITHMS,
    EquivalenceGuard,
    Realization,
    mig_from_netlist,
    rram_costs,
)
from repro.rram import (
    compile_mig,
    compile_plim,
    measure_energy,
    verification_vectors,
)


def load(source: str):
    if source in ALL_BENCHMARKS:
        return load_netlist(source)
    if source.endswith(".bench"):
        return read_bench(source)
    if source.endswith(".blif"):
        return read_blif(source)
    if source.endswith(".pla"):
        return pla_to_netlist(read_pla(source))
    raise SystemExit(f"unknown circuit {source!r}")


def main() -> None:
    source = sys.argv[1] if len(sys.argv) > 1 else "rd53f2"
    netlist = load(source)
    print(f"exploring {netlist.name}: {netlist.stats()}")
    vectors = verification_vectors(len(netlist.inputs), samples=24)

    header = (
        f"{'algorithm':<7s} {'real':<5s} | {'size':>5s} {'depth':>5s} "
        f"{'R':>6s} {'S':>5s} | {'devices':>7s} {'energy/vec pJ':>13s} "
        f"{'hot-spot':>8s} | {'PLiM':>5s}"
    )
    print(header)
    print("-" * len(header))

    best = None
    for algorithm_name, optimizer in ALGORITHMS.items():
        for realization in (Realization.IMP, Realization.MAJ):
            mig = mig_from_netlist(netlist)
            guard = EquivalenceGuard(mig)
            if algorithm_name in ("rram", "steps"):
                optimizer(mig, realization, 12)
            else:
                optimizer(mig, 12)
            guard.verify_or_raise()
            costs = rram_costs(mig, realization)
            report = compile_mig(mig, realization)
            energy = measure_energy(report.program, vectors)
            plim = compile_plim(mig)
            print(
                f"{algorithm_name:<7s} {realization.value:<5s} | "
                f"{costs.size:>5d} {costs.depth:>5d} {costs.rrams:>6d} "
                f"{costs.steps:>5d} | {report.measured_devices:>7d} "
                f"{energy.energy_pj / energy.vectors:>13.1f} "
                f"{energy.max_device_switches:>8d} | {plim.instructions:>5d}"
            )
            if best is None or costs.steps < best[0]:
                best = (costs.steps, algorithm_name, realization)

    assert best is not None
    print(
        f"\nfastest schedule: {best[1]}/{best[2].value} at {best[0]} steps "
        "(every row above was equivalence-checked and the compiled "
        "programs execute on the device-level simulator)"
    )


if __name__ == "__main__":
    main()
