"""A guided tour of the paper, start to finish, on live objects.

Walks the reader through every artifact of Shirinzadeh et al. (DATE'16)
in order — device physics (Figs. 1–2), the majority gadgets
(Fig. 3 / Sec. III-A), the cost model (Table I), the optimization
algorithms (Sec. III-C/D), and finally a miniature Table II/III on one
circuit — printing what the paper claims next to what this library
measures.

Run:  python examples/paper_walkthrough.py
"""

from repro.aig import aig_from_netlist, aig_rram_costs
from repro.bdd import bdd_rram_costs, build_best_order
from repro.benchmarks import load_netlist
from repro.mig import (
    EquivalenceGuard,
    Realization,
    level_stats,
    mig_from_netlist,
    optimize_area,
    optimize_depth,
    optimize_rram,
    optimize_steps,
    rram_costs,
)
from repro.rram import (
    RramDevice,
    compile_mig,
    run_program,
    standalone_majority_program,
    verify_compiled,
)

BENCH = "cm150a"


def section(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    section("1. Device physics — Fig. 2: R' = M(P, !Q, R)")
    print("   P Q | R'(R=0)  R'(R=1)")
    for p in (0, 1):
        for q in (0, 1):
            nexts = []
            for r in (0, 1):
                device = RramDevice(bool(r))
                device.apply(bool(p), bool(q))
                nexts.append(int(device.state))
            print(f"   {p} {q} |    {nexts[0]}        {nexts[1]}")
    print("  (P=1,Q=0) sets, (P=0,Q=1) clears, P=Q holds — an intrinsic")
    print("  majority vote between the electrodes and the stored state.")

    section("2. The two majority gadgets — Sec. III-A (Fig. 3)")
    for realization in ("imp", "maj"):
        program = standalone_majority_program(realization)
        ok = all(
            run_program(program, [bool(a >> i & 1) for i in range(3)])[0]
            == (bin(a).count("1") >= 2)
            for a in range(8)
        )
        print(
            f"  {realization.upper():3s}: {program.num_steps} steps on "
            f"{program.num_devices} devices — computes M(x,y,z) on all "
            f"8 inputs: {ok}"
        )
    print("  (paper: 10 steps / 6 RRAMs for IMP, 3 steps / 4 RRAMs for MAJ)")

    section(f"3. Cost model on a real circuit — Table I ({BENCH})")
    netlist = load_netlist(BENCH)
    mig = mig_from_netlist(netlist)
    stats = level_stats(mig)
    print(f"  initial MIG: {stats.size} nodes, depth {stats.depth}, "
          f"{stats.levels_with_complements} complemented levels")
    for realization in Realization:
        costs = rram_costs(mig, realization)
        print(
            f"  {realization.value.upper():3s}: "
            f"R = max(K*Ni + Ci) = {costs.rrams},  "
            f"S = K*D + L = {costs.steps}"
        )

    section("4. The four algorithms — Sec. III-C/D on " + BENCH)
    rows = []
    for label, optimizer, wants_realization in [
        ("Alg.1 area ", optimize_area, False),
        ("Alg.2 depth", optimize_depth, False),
        ("Alg.3 RRAM ", optimize_rram, True),
        ("Alg.4 steps", optimize_steps, True),
    ]:
        work = mig_from_netlist(netlist)
        guard = EquivalenceGuard(work)
        if wants_realization:
            optimizer(work, Realization.MAJ, 12)
        else:
            optimizer(work, 12)
        guard.verify_or_raise()
        costs = rram_costs(work, Realization.MAJ)
        rows.append((label, work, costs))
        print(
            f"  {label}: size {work.num_gates():4d}  depth "
            f"{costs.depth:3d}  R {costs.rrams:4d}  S {costs.steps:4d}  "
            "(equivalence verified)"
        )
    print("  -> the proposed algorithms (Alg.3/4) match or beat the")
    print("     conventional ones on their objectives — the Table II ordering.")

    section("5. Compile and execute — Sec. III-B methodology")
    best = min(rows, key=lambda row: row[2].steps)
    report = compile_mig(best[1], Realization.MAJ)
    print(
        f"  compiled {best[0].strip()}: {report.measured_steps} steps "
        f"(model says {report.analytic.steps}; match = "
        f"{report.steps_match_model}) on {report.measured_devices} devices"
    )
    print(f"  functional verification on the array simulator: "
          f"{verify_compiled(best[1], report)}")

    section("6. Against the baselines — Table III flavour")
    manager, roots, _order = build_best_order(netlist, candidates=2)
    bdd_steps = bdd_rram_costs(manager, roots).steps
    aig_steps = aig_rram_costs(aig_from_netlist(netlist)).steps
    mig_steps = best[2].steps
    print(f"  BDD [11] steps : {bdd_steps}")
    print(f"  AIG [12] steps : {aig_steps}")
    print(f"  MIG-MAJ steps  : {mig_steps}")
    print(
        f"  ratios: BDD/MIG = {bdd_steps / mig_steps:.1f}x, "
        f"AIG/MIG = {aig_steps / mig_steps:.1f}x "
        "(paper: ~8x and ~7x aggregate)"
    )


if __name__ == "__main__":
    main()
