"""Tests for the cube algebra and the espresso-style minimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import parse_pla, pla_truth_tables
from repro.truth import TruthTable, table_mask
from repro.twolevel import (
    cubes as C,
    cubes_to_table,
    expand,
    irredundant,
    minimize_cubes,
    minimize_pla,
    minimize_table,
)


class TestCubeAlgebra:
    def test_string_roundtrip(self):
        for text in ("01-", "---", "111", "000", "-0-1"):
            cube, num_vars = C.from_string(text)
            assert C.to_string(cube, num_vars) == text

    def test_bad_character(self):
        with pytest.raises(ValueError):
            C.from_string("01x")

    def test_universe_and_validity(self):
        assert C.to_string(C.universe(3), 3) == "---"
        cube, _num = C.from_string("01-")
        assert C.is_valid(cube, 3)
        assert not C.is_valid(0, 1)

    def test_intersection(self):
        a, _n = C.from_string("1--")
        b, _n = C.from_string("-0-")
        both = C.intersect(a, b, 3)
        assert both is not None
        assert C.to_string(both, 3) == "10-"

    def test_disjoint_intersection(self):
        a, _n = C.from_string("1-")
        b, _n = C.from_string("0-")
        assert C.intersect(a, b, 2) is None

    def test_containment(self):
        outer, _n = C.from_string("1--")
        inner, _n = C.from_string("10-")
        assert C.contains(outer, inner)
        assert not C.contains(inner, outer)

    def test_literal_and_minterm_count(self):
        cube, _n = C.from_string("1-0")
        assert C.literal_count(cube, 3) == 2
        assert C.cube_minterm_count(cube, 3) == 2

    def test_cofactor(self):
        cube, _n = C.from_string("10-")
        assert C.cofactor_cube(cube, 0, True, 3) is not None
        assert C.cofactor_cube(cube, 0, False, 3) is None
        freed = C.cofactor_cube(cube, 1, False, 3)
        assert C.to_string(freed, 3) == "1--"

    def test_supercube(self):
        a, _n = C.from_string("10-")
        b, _n = C.from_string("11-")
        assert C.to_string(C.supercube([a, b]), 3) == "1--"


class TestTautologyAndComplement:
    def test_tautology_simple(self):
        a, _n = C.from_string("1-")
        b, _n = C.from_string("0-")
        assert C.tautology([a, b], 2)
        assert not C.tautology([a], 2)
        assert C.tautology([C.universe(2)], 2)
        assert not C.tautology([], 2)

    @given(st.integers(1, table_mask(4)))
    @settings(max_examples=60, deadline=None)
    def test_complement_semantics(self, bits):
        table = TruthTable(4, bits)
        on_set = _minterm_cubes(table)
        off = C.complement(on_set, 4)
        assert cubes_to_table(off, 4) == ~table

    @given(st.integers(0, table_mask(4)))
    @settings(max_examples=40, deadline=None)
    def test_covers_cube_universe(self, bits):
        """F ⊇ universe iff F is the constant-1 function."""
        table = TruthTable(4, bits)
        on_set = _minterm_cubes(table)
        expected = table == TruthTable.constant(4, True)
        assert C.covers_cube(on_set, C.universe(4), 4) == expected

    @given(st.integers(0, table_mask(3)), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_covers_cube_minterm(self, bits, assignment):
        """F covers a minterm cube iff the table is 1 there."""
        table = TruthTable(3, bits)
        on_set = _minterm_cubes(table)
        minterm = 0
        for var in range(3):
            value = C.POS if (assignment >> var) & 1 else C.NEG
            minterm |= value << (2 * var)
        assert C.covers_cube(on_set, minterm, 3) == table.value_at(assignment)


def _minterm_cubes(table: TruthTable):
    cubes = []
    for assignment in table.assignments_where(True):
        cube = 0
        for var in range(table.num_vars):
            value = C.POS if (assignment >> var) & 1 else C.NEG
            cube |= value << (2 * var)
        cubes.append(cube)
    return cubes


class TestMinimizer:
    @given(st.integers(0, table_mask(4)))
    @settings(max_examples=80, deadline=None)
    def test_equivalence_preserved(self, bits):
        table = TruthTable(4, bits)
        cover = minimize_table(table)
        assert cubes_to_table(cover, 4) == table

    @given(st.integers(1, table_mask(4)))
    @settings(max_examples=40, deadline=None)
    def test_result_is_prime(self, bits):
        """No literal of any result cube can be raised without hitting
        the OFF-set."""
        table = TruthTable(4, bits)
        cover = minimize_table(table)
        off = _minterm_cubes(~table)
        for cube in cover:
            for var in range(4):
                if C.field(cube, var) == C.DC:
                    continue
                raised = C.set_field(cube, var, C.DC)
                assert any(
                    C.intersect(raised, o, 4) is not None for o in off
                ), "non-prime cube in result"

    @given(st.integers(1, table_mask(4)))
    @settings(max_examples=40, deadline=None)
    def test_result_is_irredundant(self, bits):
        table = TruthTable(4, bits)
        cover = minimize_table(table)
        for index in range(len(cover)):
            rest = cover[:index] + cover[index + 1 :]
            if rest:
                assert not C.covers_cube(rest, cover[index], 4), (
                    "redundant cube in result"
                )

    def test_classic_example(self):
        # f = a·b + a·!b + !a·b  ==  a + b : two cubes.
        table = TruthTable.from_function(2, lambda i: i[0] or i[1])
        cover = minimize_table(table)
        assert len(cover) == 2
        assert sum(C.literal_count(c, 2) for c in cover) == 2

    def test_minimizes_minterm_canonical_parity_neighbours(self):
        # xor has no merging: 2^(n-1) cubes stay.
        table = TruthTable.from_function(3, lambda i: sum(i) % 2 == 1)
        cover = minimize_table(table)
        assert len(cover) == 4

    def test_constants(self):
        assert minimize_table(TruthTable.constant(3, False)) == []
        cover = minimize_table(TruthTable.constant(3, True))
        assert cover == [C.universe(3)]

    def test_minimize_cubes_with_given_offset(self):
        on = [C.from_string("11")[0]]
        off = [C.from_string("00")[0]]
        cover = minimize_cubes(on, 2, off_set=off)
        # Don't-care space (01, 10) is free: a single-literal prime fits.
        assert len(cover) == 1
        assert C.literal_count(cover[0], 2) == 1


class TestPlaBridge:
    def test_minimize_pla_equivalent(self):
        source = """
.i 4
.o 2
.p 6
1100 10
1101 10
1110 10
1111 11
0-11 01
-111 01
.e
"""
        cover = parse_pla(source, name="demo")
        minimized = minimize_pla(cover)
        assert pla_truth_tables(minimized) == pla_truth_tables(cover)
        assert len(minimized.cubes) <= len(cover.cubes)

    def test_minimize_pla_merges_adjacent(self):
        source = ".i 3\n.o 1\n000 1\n001 1\n010 1\n011 1\n.e\n"
        minimized = minimize_pla(parse_pla(source))
        assert len(minimized.cubes) == 1
        assert minimized.cubes[0][0] == "0--"
