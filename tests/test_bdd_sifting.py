"""Tests for dynamic variable reordering (sifting)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, Bdd, build_bdd_from_netlist
from repro.bdd.sifting import _LevelTable, sift_bdd
from repro.truth import TruthTable, table_mask


def build_from_table(table: TruthTable):
    """Minterm-canonical build (terrible order-independence baseline)."""
    manager = Bdd(table.num_vars)
    acc = FALSE
    for assignment in table.assignments_where(True):
        cube = TRUE
        for i in range(table.num_vars):
            var = manager.var(i)
            lit = var if (assignment >> i) & 1 else manager.apply_not(var)
            cube = manager.apply_and(cube, lit)
        acc = manager.apply_or(acc, cube)
    return manager, acc


def assert_same_function(
    original: Bdd, root, sifted: Bdd, sifted_root, variable_at
):
    num_vars = original.num_vars
    for assignment in range(1 << num_vars):
        vec = [bool((assignment >> i) & 1) for i in range(num_vars)]
        permuted = [vec[variable_at[p]] for p in range(num_vars)]
        assert original.evaluate(root, vec) == sifted.evaluate(
            sifted_root, permuted
        ), assignment


class TestSwapPrimitive:
    @given(st.integers(0, table_mask(4)), st.integers(0, 2))
    @settings(max_examples=60, deadline=None)
    def test_single_swap_preserves_function(self, bits, position):
        table = TruthTable(4, bits)
        manager, root = build_from_table(table)
        level_table = _LevelTable(manager, [root])
        level_table.swap(position)
        sifted, roots, variable_at = level_table.export()
        assert_same_function(manager, root, sifted, roots[0], variable_at)

    @given(st.integers(0, table_mask(4)), st.lists(st.integers(0, 2), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_swap_sequences_preserve_function(self, bits, positions):
        table = TruthTable(4, bits)
        manager, root = build_from_table(table)
        level_table = _LevelTable(manager, [root])
        for position in positions:
            level_table.swap(position)
        sifted, roots, variable_at = level_table.export()
        assert_same_function(manager, root, sifted, roots[0], variable_at)

    def test_swap_is_involution_on_size(self):
        table = TruthTable.from_function(
            4, lambda i: (i[0] and i[2]) or (i[1] and i[3])
        )
        manager, root = build_from_table(table)
        level_table = _LevelTable(manager, [root])
        size0 = level_table.size()
        level_table.swap(1)
        level_table.swap(1)
        assert level_table.size() == size0
        assert level_table.variable_at == [0, 1, 2, 3]


class TestSifting:
    def test_interleaved_and_chain(self):
        """The classic order-sensitive function:
        x0·x2 + x1·x3 (+ more pairs) — the interleaved order is
        exponentially worse than the paired order."""
        num_pairs = 3
        num_vars = 2 * num_pairs
        manager = Bdd(num_vars)
        acc = FALSE
        # Bad order: pair (i, i + num_pairs).
        for i in range(num_pairs):
            acc = manager.apply_or(
                acc,
                manager.apply_and(
                    manager.var(i), manager.var(i + num_pairs)
                ),
            )
        bad_size = manager.count_nodes([acc])
        sifted, roots, variable_at = sift_bdd(manager, [acc])
        good_size = sifted.count_nodes(roots)
        assert good_size < bad_size
        assert good_size <= 2 * num_vars + 2  # paired order is linear
        assert_same_function(manager, acc, sifted, roots[0], variable_at)

    def test_multi_output(self, full_adder_netlist):
        manager, roots = build_bdd_from_netlist(full_adder_netlist)
        sifted, new_roots, variable_at = sift_bdd(manager, roots)
        assert sifted.count_nodes(new_roots) <= manager.count_nodes(roots)
        for root, new_root in zip(roots, new_roots):
            assert_same_function(manager, root, sifted, new_root, variable_at)

    @given(st.integers(0, table_mask(5)))
    @settings(max_examples=25, deadline=None)
    def test_sifting_random_functions(self, bits):
        table = TruthTable(5, bits)
        manager, root = build_from_table(table)
        before = manager.count_nodes([root])
        sifted, roots, variable_at = sift_bdd(manager, [root])
        assert sifted.count_nodes(roots) <= before
        assert_same_function(manager, root, sifted, roots[0], variable_at)

    def test_constant_roots(self):
        manager = Bdd(3)
        sifted, roots, variable_at = sift_bdd(manager, [TRUE, FALSE])
        assert roots == [TRUE, FALSE]
        assert sorted(variable_at) == [0, 1, 2]

    def test_multiple_rounds(self):
        table = TruthTable.from_function(
            6,
            lambda i: (i[0] and i[3]) or (i[1] and i[4]) or (i[2] and i[5]),
        )
        manager, root = build_from_table(table)
        sifted, roots, variable_at = sift_bdd(manager, [root], rounds=3)
        assert_same_function(manager, root, sifted, roots[0], variable_at)
