"""Property-based round-trip tests for the benchmark file formats.

Random netlists are rendered to each format, re-parsed, and checked for
exact functional equivalence — the formats must be lossless carriers.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import parse_bench, parse_blif, write_bench, write_blif
from repro.network import GateType, Netlist

_GATES = [
    (GateType.AND, 2),
    (GateType.NAND, 2),
    (GateType.OR, 3),
    (GateType.NOR, 2),
    (GateType.XOR, 2),
    (GateType.XNOR, 2),
    (GateType.NOT, 1),
    (GateType.BUF, 1),
    (GateType.MAJ, 3),
    (GateType.MUX, 3),
]


def random_netlist(seed: int, num_inputs: int = 5, num_gates: int = 12) -> Netlist:
    rng = random.Random(seed)
    netlist = Netlist(f"rand{seed}")
    nets = [netlist.add_input(f"in{i}") for i in range(num_inputs)]
    for index in range(num_gates):
        gate_type, arity = _GATES[rng.randrange(len(_GATES))]
        operands = [nets[rng.randrange(len(nets))] for _ in range(arity)]
        name = f"n{index}"
        netlist.add_gate(name, gate_type, operands)
        nets.append(name)
    for _ in range(3):
        netlist.set_output(nets[rng.randrange(num_inputs, len(nets))])
    return netlist


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_bench_roundtrip(seed):
    netlist = random_netlist(seed)
    parsed = parse_bench(write_bench(netlist))
    assert parsed.inputs == netlist.inputs
    assert parsed.truth_tables() == netlist.truth_tables()


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_blif_roundtrip(seed):
    netlist = random_netlist(seed)
    parsed = parse_blif(write_blif(netlist))
    assert parsed.inputs == netlist.inputs
    assert parsed.truth_tables() == netlist.truth_tables()


@given(st.integers(0, 100_000))
@settings(max_examples=25, deadline=None)
def test_cross_format_agreement(seed):
    netlist = random_netlist(seed)
    via_bench = parse_bench(write_bench(netlist))
    via_blif = parse_blif(write_blif(netlist))
    assert via_bench.truth_tables() == via_blif.truth_tables()


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_verilog_renders_all_random_netlists(seed):
    """The Verilog writer must accept anything the generators produce
    (write-only format: structural sanity check)."""
    from repro.io import write_verilog

    netlist = random_netlist(seed)
    text = write_verilog(netlist)
    assert text.startswith("module ")
    assert text.rstrip().endswith("endmodule")
    assert text.count("input ") == len(netlist.inputs)


@given(st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_verilog_roundtrip(seed):
    """write_verilog → parse_verilog must be a lossless functional trip."""
    from repro.io import parse_verilog, write_verilog

    netlist = random_netlist(seed)
    parsed = parse_verilog(write_verilog(netlist))
    assert parsed.inputs == netlist.inputs
    assert parsed.truth_tables() == netlist.truth_tables()


def test_verilog_reader_expression_precedence():
    from repro.io import parse_verilog
    from repro.truth import TruthTable

    source = """
    module expr (a, b, c, f);
      input a; input b; input c;
      output f;
      assign f = a & b | ~c ^ a;
    endmodule
    """
    netlist = parse_verilog(source)
    (table,) = netlist.truth_tables()
    expected = TruthTable.from_function(
        3, lambda i: (i[0] and i[1]) or ((not i[2]) != i[0])
    )
    assert table == expected


def test_verilog_reader_ternary_and_constants():
    from repro.io import parse_verilog
    from repro.truth import TruthTable

    source = """
    module t (s, a, f);
      input s, a;
      output f;
      assign f = s ? a : 1'b1;
    endmodule
    """
    netlist = parse_verilog(source)
    (table,) = netlist.truth_tables()
    expected = TruthTable.from_function(2, lambda i: i[1] if i[0] else True)
    assert table == expected


def test_verilog_reader_rejects_unsupported():
    import pytest as _pytest

    from repro.io import VerilogFormatError, parse_verilog

    with _pytest.raises(VerilogFormatError):
        parse_verilog("module m (a); input a; always @(posedge a); endmodule")
