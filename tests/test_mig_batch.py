"""Batched trial-evaluation tests (the ``REPRO_BATCH`` switch).

The batch layer must be a *bit-identical* drop-in for the scalar inner
loops: the vectorized case classifier, the candidate scorer, and the
strash-probe batch each pinned element-for-element against their scalar
counterparts on generated graphs, and the full optimizer passes pinned
graph-for-graph (including the CostView counter stream, modulo the
batch-only counters) with the cutover forced to zero so the small
property-test graphs actually take the numpy paths.
"""

import os
import random
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import (
    CostView,
    Mig,
    Realization,
    batch_enabled,
    batch_evaluation,
    batch_min_nodes,
    graph_engine,
    level_stats,
    signal_not,
)
from repro.mig.algorithms import (
    clear_complemented_levels,
    inverter_propagation_pass,
)
from repro.mig.batch import DEFAULT_BATCH_MIN_NODES
from repro.mig.costview import CostViewCounters
from repro.mig.rewrite import inverter_propagation_case


def build_random_mig(seed: int, num_pis: int = 4, num_gates: int = 12) -> Mig:
    rng = random.Random(seed)
    mig = Mig(f"batch{seed}")
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    for _ in range(3):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


def build_slab_mig(seed: int, **kwargs) -> Mig:
    with graph_engine("slab"):
        mig = build_random_mig(seed, **kwargs)
    mig.KERNEL_MIN_NODES = 0
    return mig


@contextmanager
def forced_batch(enabled: bool = True):
    """Batch mode on/off with the size cutover dropped to zero."""
    saved = os.environ.get("REPRO_BATCH_MIN_NODES")
    os.environ["REPRO_BATCH_MIN_NODES"] = "0"
    try:
        with batch_evaluation(enabled):
            yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_BATCH_MIN_NODES", None)
        else:
            os.environ["REPRO_BATCH_MIN_NODES"] = saved


def capture(mig: Mig):
    return (
        list(mig._children),
        list(mig._pos),
        [dict(counts) for counts in mig._fanout],
        dict(mig._strash),
    )


def scalar_score(mig: Mig, stats, node: int, k_r, steps_weight, rram_weight):
    """The scalar inner loop's per-move prediction, reimplemented
    independently: (ok, weighted cost, own-level complement count)."""
    levels = stats.node_levels
    n_per_level = list(stats.nodes_per_level)
    c_per_level = list(stats.complements_per_level)
    po_complements = stats.po_complements
    level = levels[node]
    new_c = list(c_per_level)
    new_po = po_complements
    non_const = [s for s in mig.children(node) if s >> 1 != 0]
    old_cin = sum(1 for s in non_const if s & 1)
    new_c[level] += len(non_const) - 2 * old_cin
    for parent in mig.fanout_counts(node):
        parent_level = levels.get(parent)
        if parent_level is None or parent_level >= len(new_c):
            return (False, None, None)
        for s in mig.children(parent):
            if s >> 1 == node:
                new_c[parent_level] += -1 if s & 1 else 1
    for po_index in mig.po_refs(node):
        po = mig.pos[po_index]
        new_po += -1 if po & 1 else 1
    total_l = sum(1 for c in new_c[1:] if c > 0) + (1 if new_po > 0 else 0)
    total_r = po_complements
    for lvl in range(1, len(n_per_level)):
        total_r = max(total_r, k_r * n_per_level[lvl] + new_c[lvl])
    cost = steps_weight * total_l + rram_weight * total_r
    return (True, cost, new_c[level])


def scalar_collides(mig: Mig, flips) -> bool:
    """predict_flip_group's order-aware strash pre-check, standalone."""
    done = set()
    for node in flips:
        triple = mig._children[node]
        if triple is None:
            continue
        if not (
            (triple[0] >> 1) in done
            or (triple[1] >> 1) in done
            or (triple[2] >> 1) in done
        ):
            if tuple(sorted(s ^ 1 for s in triple)) in mig._strash:
                return True
        done.add(node)
    return False


class TestBatchSwitch:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batch_enabled() is True

    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert batch_enabled() is False
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert batch_enabled() is True

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        with batch_evaluation(True):
            assert batch_enabled() is True
            with batch_evaluation(False):
                assert batch_enabled() is False
            assert batch_enabled() is True
        assert batch_enabled() is False

    def test_min_nodes_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_MIN_NODES", raising=False)
        assert batch_min_nodes() == DEFAULT_BATCH_MIN_NODES
        monkeypatch.setenv("REPRO_BATCH_MIN_NODES", "0")
        assert batch_min_nodes() == 0
        monkeypatch.setenv("REPRO_BATCH_MIN_NODES", "-7")
        assert batch_min_nodes() == 0
        monkeypatch.setenv("REPRO_BATCH_MIN_NODES", "junk")
        assert batch_min_nodes() == DEFAULT_BATCH_MIN_NODES

    def test_batch_only_counter_names(self):
        counters = CostViewCounters()
        flat = counters.as_dict()
        for name in CostViewCounters.BATCH_ONLY:
            assert name in flat


class TestKernelsMatchScalar:
    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_case_array_matches_scalar_classifier(self, seed):
        mig = build_slab_mig(seed % 10_000, num_gates=8 + seed % 16)
        arr = mig.slab_invprop_case_array(0)
        assert arr is not None
        for node in range(len(mig._children)):
            if not mig.is_gate(node):
                continue
            expected = inverter_propagation_case(mig, node)
            assert arr[node] == (expected or 0)

    def test_case_array_none_below_cutover(self):
        mig = build_slab_mig(1)
        assert mig.slab_invprop_case_array(10**9) is None

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_scores_match_scalar_prediction(self, seed):
        mig = build_slab_mig(seed % 10_000, num_gates=8 + seed % 16)
        stats = level_stats(mig)
        levels = stats.node_levels
        c_len = len(stats.complements_per_level)
        cand = [
            node
            for node, lvl in sorted(levels.items())
            if mig.is_gate(node) and 0 < lvl < c_len
        ]
        if not cand:
            return
        k_r = Realization.MAJ.rrams_per_gate
        scores = mig.slab_invprop_scores(
            np.asarray(cand, dtype=np.int64),
            levels,
            list(stats.nodes_per_level),
            list(stats.complements_per_level),
            stats.po_complements,
            k_r,
            4,
            1,
        )
        for node in cand:
            ok, cost, c_own = scalar_score(mig, stats, node, k_r, 4, 1)
            assert bool(scores["ok"][node]) == ok
            if ok:
                assert int(scores["cost"][node]) == cost
                assert int(scores["c_own"][node]) == c_own

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_scores_chunking_invariant(self, seed):
        mig = build_slab_mig(seed % 10_000, num_gates=20)
        stats = level_stats(mig)
        c_len = len(stats.complements_per_level)
        cand = np.asarray(
            [
                node
                for node, lvl in sorted(stats.node_levels.items())
                if mig.is_gate(node) and 0 < lvl < c_len
            ],
            dtype=np.int64,
        )
        if not len(cand):
            return
        args = (
            stats.node_levels,
            list(stats.nodes_per_level),
            list(stats.complements_per_level),
            stats.po_complements,
            Realization.IMP.rrams_per_gate,
            4,
            1,
        )
        whole = mig.slab_invprop_scores(cand, *args)
        chunked = mig.slab_invprop_scores(cand, *args, chunk_rows=1)
        assert np.array_equal(whole["ok"], chunked["ok"])
        assert np.array_equal(whole["cost"], chunked["cost"])
        assert np.array_equal(whole["c_own"], chunked["c_own"])

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_strash_probe_batch_matches_dict(self, seed):
        rng = random.Random(seed)
        mig = build_slab_mig(seed % 10_000, num_gates=15)
        keys = list(mig._strash)
        triples = []
        for _ in range(12):
            if keys and rng.random() < 0.5:
                triples.append(list(keys[rng.randrange(len(keys))]))
            else:
                triples.append(
                    sorted(rng.randrange(60) for _ in range(3))
                )
        arr = np.asarray(triples, dtype=np.int64)
        hits = mig.strash_probe_batch(arr)
        assert hits is not None
        expected = [tuple(row) in mig._strash for row in triples]
        assert hits.tolist() == expected

    def test_strash_probe_batch_empty(self):
        mig = build_slab_mig(2)
        hits = mig.strash_probe_batch(np.empty((0, 3), dtype=np.int64))
        assert hits is not None and len(hits) == 0

    def test_strash_probe_batch_overflow_falls_back(self):
        mig = build_slab_mig(3)
        huge = np.asarray([[1, 2, 1 << 40]], dtype=np.int64)
        assert mig.strash_probe_batch(huge) is None

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_batch_probe_flip_groups_matches_scalar(self, seed):
        rng = random.Random(seed)
        mig = build_slab_mig(seed % 10_000, num_gates=15)
        view = CostView(mig)
        view.stats()
        gates = [n for n in range(len(mig._children)) if mig.is_gate(n)]
        if not gates:
            return
        plans = []
        for _ in range(1 + seed % 6):
            size = rng.randrange(1, min(6, len(gates) + 1))
            plans.append(tuple(rng.sample(gates, size)))
        before = view.counters.as_dict()
        verdicts = view.batch_probe_flip_groups(plans)
        after = view.counters.as_dict()
        for plan in plans:
            assert verdicts[tuple(plan)] == scalar_collides(mig, plan)
        # Purity: only the batch-only counters may move — the scalar
        # counter stream (sync work, probes) must be untouched.
        for name, value in before.items():
            if name not in CostViewCounters.BATCH_ONLY:
                assert after[name] == value
        # Injected verdicts reproduce the scalar probe behaviour.
        for plan in plans:
            collides = verdicts[tuple(plan)]
            injected = view.predict_flip_group(
                plan, Realization.MAJ, collides=collides
            )
            scalar = view.predict_flip_group(plan, Realization.MAJ)
            assert injected == scalar


class TestPassBitIdentity:
    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_invprop_batch_matches_scalar(self, seed):
        base = build_slab_mig(seed % 10_000, num_gates=10 + seed % 15)
        has_reachable_gate = any(
            base.is_gate(node)
            for node in level_stats(base).node_levels
        )
        results = {}
        for mode in (False, True):
            mig = base.clone()
            mig.KERNEL_MIN_NODES = 0
            view = CostView(mig)
            with forced_batch(mode):
                changed = inverter_propagation_pass(
                    mig, Realization.MAJ, view=view
                )
            results[mode] = (changed, capture(mig), view.counters.as_dict())
        assert results[False][0] == results[True][0]
        assert results[False][1] == results[True][1]
        scalar_counters, batch_counters = results[False][2], results[True][2]
        for name in scalar_counters:
            if name in CostViewCounters.BATCH_ONLY:
                continue
            assert scalar_counters[name] == batch_counters[name], name
        # The batch path must actually have engaged (cutover is 0).
        if has_reachable_gate:
            assert batch_counters["batch_score_calls"] > 0
        assert scalar_counters["batch_score_calls"] == 0

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_invprop_base_rule_batch_matches_scalar(self, seed):
        base = build_slab_mig(seed % 10_000, num_gates=10 + seed % 15)
        results = {}
        for mode in (False, True):
            mig = base.clone()
            mig.KERNEL_MIN_NODES = 0
            view = CostView(mig)
            with forced_batch(mode):
                inverter_propagation_pass(
                    mig, Realization.IMP, cases=None, view=view
                )
            results[mode] = (capture(mig), view.counters.as_dict())
        assert results[False][0] == results[True][0]
        for name, value in results[False][1].items():
            if name not in CostViewCounters.BATCH_ONLY:
                assert results[True][1][name] == value, name

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_clear_levels_batch_matches_scalar(self, seed):
        base = build_slab_mig(seed % 10_000, num_gates=10 + seed % 15)
        results = {}
        for mode in (False, True):
            mig = base.clone()
            mig.KERNEL_MIN_NODES = 0
            view = CostView(mig)
            with forced_batch(mode):
                changed = clear_complemented_levels(
                    mig, Realization.MAJ, view=view
                )
            results[mode] = (changed, capture(mig), view.counters.as_dict())
        assert results[False][0] == results[True][0]
        assert results[False][1] == results[True][1]
        for name, value in results[False][2].items():
            if name not in CostViewCounters.BATCH_ONLY:
                assert results[True][2][name] == value, name

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_rollback_with_costview_after_batch_pass(self, seed):
        mig = build_slab_mig(seed % 10_000, num_gates=12)
        view = CostView(mig)
        view.stats()
        reference = capture(mig)
        token = mig.checkpoint()
        with forced_batch(True):
            inverter_propagation_pass(mig, Realization.MAJ, view=view)
        mig.rollback(token)
        assert capture(mig) == reference
        # The coalesced inverse-event replay must keep the incremental
        # view consistent with the restored graph.
        view.stats()
        view.assert_consistent()

    def test_scalar_fallback_above_cutover(self):
        mig = build_slab_mig(7)
        view = CostView(mig)
        saved = os.environ.get("REPRO_BATCH_MIN_NODES")
        os.environ["REPRO_BATCH_MIN_NODES"] = "1000000"
        try:
            with batch_evaluation(True):
                inverter_propagation_pass(mig, Realization.MAJ, view=view)
        finally:
            if saved is None:
                os.environ.pop("REPRO_BATCH_MIN_NODES", None)
            else:
                os.environ["REPRO_BATCH_MIN_NODES"] = saved
        # Kernel declined (graph below cutover): no batch activity.
        assert view.counters.batch_candidates_scored == 0


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
