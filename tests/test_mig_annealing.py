"""Tests for the simulated-annealing complement placement extension."""

import pytest

from repro.benchmarks import load_mig
from repro.mig import (
    EquivalenceGuard,
    Mig,
    Realization,
    anneal_complements,
    level_stats,
    rram_costs,
    signal_not,
)
from repro.mig.annealing import _ComplementModel


class TestComplementModel:
    def build(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi() for _ in range(4))
        inner = mig.make_maj(signal_not(a), b, c)
        outer = mig.make_maj(inner, signal_not(d), a)
        mig.add_po(signal_not(outer))
        return mig

    def test_initial_costs_match_views(self):
        mig = self.build()
        for realization in Realization:
            model = _ComplementModel(mig, realization)
            costs = rram_costs(mig, realization)
            assert model.costs() == (costs.steps, costs.rrams)

    def test_flip_is_involution(self):
        mig = self.build()
        model = _ComplementModel(mig, Realization.MAJ)
        start = model.costs()
        node = mig.reachable_nodes()[0]
        model.apply_flip(node)
        model.apply_flip(node)
        assert model.costs() == start

    def test_flip_matches_real_flip(self):
        """Model-predicted costs after a flip equal the costs measured
        after actually applying Ω.I to the graph."""
        from repro.mig.rewrite import apply_inverter_propagation

        for target_index in range(2):
            mig = self.build()
            model = _ComplementModel(mig, Realization.MAJ)
            node = mig.reachable_nodes()[target_index]
            model.apply_flip(node)
            predicted = model.costs()
            apply_inverter_propagation(mig, node)
            actual = rram_costs(mig, Realization.MAJ)
            assert predicted == (actual.steps, actual.rrams)


class TestAnnealing:
    def test_preserves_function(self):
        mig = load_mig("x2")
        guard = EquivalenceGuard(mig)
        anneal_complements(mig, Realization.MAJ, iterations=800)
        guard.verify_or_raise()
        mig.check_invariants()

    def test_never_worsens(self):
        for name in ["x2", "cm162a", "rd53f2"]:
            mig = load_mig(name)
            before = rram_costs(mig, Realization.MAJ)
            anneal_complements(mig, Realization.MAJ, iterations=800)
            after = rram_costs(mig, Realization.MAJ)
            assert (after.steps, after.rrams) <= (before.steps, before.rrams)

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            mig = load_mig("x2")
            anneal_complements(mig, Realization.MAJ, iterations=600, seed=7)
            costs = rram_costs(mig, Realization.MAJ)
            results.append((costs.steps, costs.rrams, mig.num_gates()))
        assert results[0] == results[1]

    def test_empty_graph(self):
        mig = Mig()
        mig.add_pi()
        assert not anneal_complements(mig, Realization.MAJ, iterations=10)

    def test_finds_known_improvement(self):
        """A node with all-complemented fanin is a guaranteed win the
        annealer must find."""
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        dirty = mig.make_maj(signal_not(a), signal_not(b), signal_not(c))
        top = mig.make_maj(signal_not(dirty), a, b)
        mig.add_po(top)
        # Flipping `dirty` clears both its fanin complements and the
        # complemented edge into `top`: L drops 2 → 0.
        before = level_stats(mig).levels_with_complements
        assert before == 2
        changed = anneal_complements(
            mig, Realization.MAJ, iterations=1500, seed=3
        )
        after = level_stats(mig).levels_with_complements
        assert changed
        assert after == 0
