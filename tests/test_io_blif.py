"""Tests for the BLIF reader/writer."""

import pytest

from repro.io import BlifFormatError, parse_blif, write_blif
from repro.truth import TruthTable

AND_OR = """
.model demo
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
"""


def test_parse_and_or():
    n = parse_blif(AND_OR)
    assert n.name == "demo"
    (table,) = n.truth_tables()
    expected = TruthTable.from_function(3, lambda i: (i[0] and i[1]) or i[2])
    assert table == expected


def test_offset_cover():
    text = """
.model off
.inputs a b
.outputs f
.names a b f
11 0
.end
"""
    (table,) = parse_blif(text).truth_tables()
    assert table == ~TruthTable.from_function(2, lambda i: i[0] and i[1])


def test_constant_covers():
    text = """
.model k
.inputs a
.outputs one zero
.names one
1
.names zero
.end
"""
    one, zero = parse_blif(text).truth_tables()
    assert one == TruthTable.constant(1, True)
    assert zero == TruthTable.constant(1, False)


def test_dont_care_cube():
    text = """
.model dc
.inputs a b c
.outputs f
.names a b c f
1-0 1
-11 1
.end
"""
    (table,) = parse_blif(text).truth_tables()
    expected = TruthTable.from_function(
        3, lambda i: (i[0] and not i[2]) or (i[1] and i[2])
    )
    assert table == expected


def test_continuation_lines():
    text = ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
    n = parse_blif(text)
    assert n.inputs == ["a", "b"]


def test_latch_combinational_profile():
    text = """
.model seq
.inputs x
.outputs y
.latch ns state 0
.names x state ns
11 1
.names state y
1 1
.end
"""
    n = parse_blif(text)
    assert "state" in n.inputs
    assert "ns" in n.outputs
    n.validate()


def test_single_literal_buffer():
    text = ".model b\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n"
    (table,) = parse_blif(text).truth_tables()
    assert table == TruthTable.variable(1, 0)


def test_inverter_cover():
    text = ".model i\n.inputs a\n.outputs f\n.names a f\n0 1\n.end\n"
    (table,) = parse_blif(text).truth_tables()
    assert table == ~TruthTable.variable(1, 0)


def test_mixed_polarity_cover_rejected():
    text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n"
    with pytest.raises(BlifFormatError):
        parse_blif(text)


def test_bad_cube_width_rejected():
    text = ".model w\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n"
    with pytest.raises(BlifFormatError):
        parse_blif(text)


def test_row_outside_names_rejected():
    with pytest.raises(BlifFormatError):
        parse_blif(".model x\n.inputs a\n.outputs f\n11 1\n.end\n")


def test_tautology_cube():
    text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n-- 1\n.end\n"
    (table,) = parse_blif(text).truth_tables()
    assert table == TruthTable.constant(2, True)


def test_unknown_directives_ignored():
    text = (
        ".model u\n.inputs a\n.outputs f\n.default_input_arrival 0 0\n"
        ".names a f\n1 1\n.end\n"
    )
    parse_blif(text).validate()


def test_write_roundtrip(full_adder_netlist):
    text = write_blif(full_adder_netlist)
    parsed = parse_blif(text)
    assert parsed.truth_tables() == full_adder_netlist.truth_tables()


def test_write_roundtrip_all_gate_types():
    from repro.network import GateType, Netlist

    n = Netlist("all")
    for name in "abc":
        n.add_input(name)
    n.add_gate("g_and", GateType.AND, ["a", "b"])
    n.add_gate("g_nand", GateType.NAND, ["a", "b"])
    n.add_gate("g_or", GateType.OR, ["a", "b", "c"])
    n.add_gate("g_nor", GateType.NOR, ["a", "b"])
    n.add_gate("g_xor", GateType.XOR, ["a", "b", "c"])
    n.add_gate("g_xnor", GateType.XNOR, ["a", "b"])
    n.add_gate("g_not", GateType.NOT, ["a"])
    n.add_gate("g_buf", GateType.BUF, ["b"])
    n.add_gate("g_maj", GateType.MAJ, ["a", "b", "c"])
    n.add_gate("g_mux", GateType.MUX, ["a", "b", "c"])
    n.add_gate("g_c0", GateType.CONST0, [])
    n.add_gate("g_c1", GateType.CONST1, [])
    for gate in list(n.gates()):
        n.set_output(gate.name)
    parsed = parse_blif(write_blif(n))
    assert parsed.truth_tables() == n.truth_tables()


def test_file_roundtrip(tmp_path, full_adder_netlist):
    from repro.io import read_blif, save_blif

    path = tmp_path / "fa.blif"
    save_blif(full_adder_netlist, str(path))
    loaded = read_blif(str(path))
    assert loaded.truth_tables() == full_adder_netlist.truth_tables()
