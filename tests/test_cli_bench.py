"""CLI coverage for ``bench``, ``--jobs``, and the verification cap."""

import json

from repro.cli import main
from repro.flows.bench import append_bench_entry


def test_append_bench_entry_preserves_existing_keys(tmp_path):
    path = tmp_path / "BENCH_runtime.json"
    path.write_text(json.dumps({"historical": {"seconds": 1.0}}))
    append_bench_entry({"kind": "table2", "seconds": 2.5}, str(path))
    append_bench_entry({"kind": "fuzz-smoke", "speedup": 9.0}, str(path))
    data = json.loads(path.read_text())
    assert data["historical"] == {"seconds": 1.0}
    assert [entry["kind"] for entry in data["entries"]] == [
        "table2",
        "fuzz-smoke",
    ]


def test_bench_subcommand_appends_table2_entry(tmp_path, capsys):
    path = tmp_path / "bench.json"
    code = main(
        [
            "bench",
            "cm163a",
            "--what",
            "table2",
            "--effort",
            "2",
            "--output",
            str(path),
        ]
    )
    assert code == 0
    data = json.loads(path.read_text())
    (entry,) = data["entries"]
    assert entry["kind"] == "table2"
    assert entry["benchmarks"] == 1
    assert entry["seconds"] > 0
    assert "table2" in capsys.readouterr().out


def test_bench_no_append_leaves_file_untouched(tmp_path, capsys):
    path = tmp_path / "bench.json"
    code = main(
        [
            "bench",
            "cm163a",
            "--what",
            "table2",
            "--effort",
            "2",
            "--output",
            str(path),
            "--no-append",
        ]
    )
    assert code == 0
    assert not path.exists()


def test_table2_jobs_flag_accepted(capsys):
    assert main(["table2", "cm163a", "--effort", "2", "--jobs", "2"]) == 0
    assert "cm163a" in capsys.readouterr().out


def test_fuzz_jobs_flag_accepted(tmp_path, capsys):
    code = main(
        [
            "fuzz",
            "--seconds",
            "600",
            "--max-cases",
            "2",
            "--effort",
            "2",
            "--jobs",
            "2",
            "--out-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_exhaustive_cap_error_exits_2(tmp_path, capsys):
    # A 26-input AND chain: trivially compilable, far too wide for an
    # exhaustive sweep when the limit is raised past the interface.
    lines = ["# wide chain"]
    inputs = [f"i{n}" for n in range(26)]
    lines += [f"INPUT({name})" for name in inputs]
    lines.append("OUTPUT(y0)")
    previous = inputs[0]
    for n, name in enumerate(inputs[1:], start=1):
        gate = f"g{n}" if n < 25 else "y0"
        lines.append(f"{gate} = AND({previous}, {name})")
        previous = gate
    path = tmp_path / "wide.bench"
    path.write_text("\n".join(lines) + "\n")

    code = main(
        [
            "synth",
            str(path),
            "--algorithm",
            "none",
            "--compile",
            "--verify",
            "--exhaustive-limit",
            "30",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "2^26" in err and "cap is 2^24" in err
