"""CLI contract of the observatory surface.

Covers the exit-code and text contracts of ``trace-report`` on broken
inputs (exit 2 with one clear message, never a traceback),
``trace-report --compare`` (exit 0 on identical deterministic state,
exit 1 on divergence), and ``repro-synth obs report`` / ``obs gate``
plumbing on synthetic ledgers (the real gate runs live in CI; the
tests here pin the cheap paths).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _synth_trace(tmp_path, name, effort, benchmark="xor5_d"):
    from repro.telemetry import isolated_registry

    trace = tmp_path / f"{name}.jsonl"
    # Each CLI invocation is its own process in real usage; isolate the
    # registry so one in-process run's counters don't leak into the
    # next trace's final metrics record.
    with isolated_registry():
        assert main([
            "synth", benchmark, "--algorithm", "steps",
            "--effort", str(effort), "--trace", str(trace),
        ]) == 0
    return trace


class TestTraceReportErrors:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["trace-report", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "no such trace file" in err

    def test_empty_file_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace-report", str(empty)]) == 2
        assert "empty trace file" in capsys.readouterr().err

    def test_whitespace_only_file_exits_2(self, tmp_path, capsys):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n  \n")
        assert main(["trace-report", str(blank)]) == 2
        assert "empty trace file" in capsys.readouterr().err

    def test_truncated_record_exits_2(self, tmp_path, capsys):
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            '{"type": "meta", "schema_version": 1, "command": "synth"}\n'
            '{"type": "span", "name": "optimize", "span_id": 1, "par'
        )
        assert main(["trace-report", str(truncated)]) == 2
        err = capsys.readouterr().err
        assert "malformed trace" in err
        assert "truncated.jsonl:2" in err

    def test_compare_propagates_load_errors(self, tmp_path, capsys):
        good = _synth_trace(tmp_path, "good", 4)
        capsys.readouterr()
        missing = tmp_path / "gone.jsonl"
        assert main([
            "trace-report", str(good), "--compare", str(missing),
        ]) == 2
        assert "no such trace file" in capsys.readouterr().err


class TestTraceCompare:
    def test_identical_runs_compare_identical(self, tmp_path, capsys):
        a = _synth_trace(tmp_path, "a", 4)
        b = _synth_trace(tmp_path, "b", 4)
        capsys.readouterr()
        assert main(["trace-report", str(a), "--compare", str(b)]) == 0
        out = capsys.readouterr().out
        assert "deterministic counters: identical" in out
        assert "verdict      : IDENTICAL" in out

    def test_different_runs_diverge(self, tmp_path, capsys):
        a = _synth_trace(tmp_path, "a", 4)
        b = _synth_trace(tmp_path, "b", 4, benchmark="misex1")
        capsys.readouterr()
        assert main(["trace-report", str(a), "--compare", str(b)]) == 1
        out = capsys.readouterr().out
        assert "verdict      : DIVERGED" in out
        # The divergence must name deterministic state, with values.
        assert "optimizer.moves_tried" in out


@pytest.fixture
def synthetic_ledger(tmp_path):
    entries = [
        {
            "kind": "table2", "graph_engine": "slab", "effort": 10,
            "seconds": 60.0 + i, "jobs": 1,
            "schema_version": 2,
            "profile": {"moves_tried": 1000, "nodes_allocated": 500,
                        "slab_capacity": 1000, "compactions": 2},
        }
        for i in range(3)
    ]
    path = tmp_path / "ledger.json"
    path.write_text(json.dumps({"entries": entries}))
    return path


class TestObsReport:
    def test_text_report(self, synthetic_ledger, capsys):
        assert main(["obs", "report", "--ledger",
                     str(synthetic_ledger)]) == 0
        out = capsys.readouterr().out
        assert "table2/slab/effort=10" in out
        assert "slab occupancy" in out

    def test_html_report(self, synthetic_ledger, tmp_path, capsys):
        html = tmp_path / "report.html"
        assert main(["obs", "report", "--ledger", str(synthetic_ledger),
                     "--html", str(html)]) == 0
        text = html.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "table2/slab/effort=10" in text

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main(["obs", "report", "--ledger",
                     str(tmp_path / "gone.json")]) == 2
        assert "no such ledger file" in capsys.readouterr().err

    def test_duplicate_entries_surface_in_report(self, tmp_path, capsys):
        entry = {"kind": "table2", "graph_engine": "slab", "effort": 10,
                 "seconds": 60.0}
        path = tmp_path / "dup.json"
        path.write_text(json.dumps({"entries": [entry, dict(entry)]}))
        assert main(["obs", "report", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 byte-identical duplicates collapsed" in out


class TestObsGateErrors:
    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main(["obs", "gate", "--ledger",
                     str(tmp_path / "gone.json")]) == 2
        assert "no such ledger file" in capsys.readouterr().err

    def test_non_ledger_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        assert main(["obs", "gate", "--ledger", str(path)]) == 2
        assert "not a bench ledger" in capsys.readouterr().err


class TestLedgerValidateCli:
    def test_validate_accepts_both_schema_versions(self, tmp_path, capsys):
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"entries": [
            {"kind": "a", "seconds": 1.0, "effort": None,
             "graph_engine": "slab"},
            {"kind": "b", "seconds": 1.0, "effort": 2,
             "graph_engine": "slab", "schema_version": 2},
        ]}))
        assert main(["trace-report", str(path), "--validate"]) == 0
        assert "schema       : OK" in capsys.readouterr().out

    def test_validate_rejects_unknown_schema_version(
        self, tmp_path, capsys
    ):
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"entries": [
            {"kind": "a", "seconds": 1.0, "effort": None,
             "graph_engine": "slab", "schema_version": 99},
        ]}))
        assert main(["trace-report", str(path), "--validate"]) == 1
        assert "unsupported schema_version 99" in capsys.readouterr().err
