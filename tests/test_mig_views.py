"""Tests for MIG level statistics and the Table I cost model."""

import pytest

from repro.mig import (
    CONST0,
    CONST1,
    Mig,
    Realization,
    critical_nodes,
    level_stats,
    node_heights,
    node_levels,
    rram_costs,
    signal_node,
    signal_not,
)


def two_level_mig():
    """f = M(M(a,b,c), !d, e) — one node per level, one complement."""
    mig = Mig("two")
    a, b, c, d, e = (mig.add_pi() for _ in range(5))
    inner = mig.make_maj(a, b, c)
    outer = mig.make_maj(inner, signal_not(d), e)
    mig.add_po(outer)
    return mig


class TestRealization:
    def test_constants(self):
        assert Realization.IMP.rrams_per_gate == 6
        assert Realization.IMP.steps_per_level == 10
        assert Realization.MAJ.rrams_per_gate == 4
        assert Realization.MAJ.steps_per_level == 3


class TestLevels:
    def test_node_levels(self):
        mig = two_level_mig()
        levels = node_levels(mig)
        inner, outer = mig.reachable_nodes()
        assert levels[inner] == 1
        assert levels[outer] == 2
        for pi in mig.pis:
            assert levels[pi] == 0

    def test_heights(self):
        mig = two_level_mig()
        heights = node_heights(mig)
        inner, outer = mig.reachable_nodes()
        assert heights[outer] == 0
        assert heights[inner] == 1

    def test_critical_nodes(self):
        mig = two_level_mig()
        assert set(critical_nodes(mig)) == set(mig.reachable_nodes())


class TestLevelStats:
    def test_two_level_stats(self):
        stats = level_stats(two_level_mig())
        assert stats.depth == 2
        assert stats.size == 2
        assert stats.nodes_per_level[1] == 1
        assert stats.nodes_per_level[2] == 1
        assert stats.complements_per_level[1] == 0
        assert stats.complements_per_level[2] == 1  # the !d edge
        assert stats.po_complements == 0
        assert stats.levels_with_complements == 1

    def test_constant_edges_do_not_count(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        mig.add_po(mig.make_or(a, b))  # M(a, b, 1): complemented const
        stats = level_stats(mig)
        assert stats.complements_per_level[1] == 0
        assert stats.levels_with_complements == 0

    def test_complemented_po_counts_as_virtual_level(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        f = mig.make_maj(a, b, c)
        mig.add_po(signal_not(f))
        stats = level_stats(mig)
        assert stats.po_complements == 1
        assert stats.levels_with_complements == 1

    def test_constant_po_not_counted(self):
        mig = Mig()
        mig.add_pi()
        mig.add_po(CONST1)  # complemented constant signal
        stats = level_stats(mig)
        assert stats.po_complements == 0


class TestCostModel:
    def test_table1_formulas(self):
        stats = level_stats(two_level_mig())
        # R = max(K*N_i + C_i): level 1 -> K, level 2 -> K + 1.
        assert stats.rram_count(Realization.IMP) == 6 + 1
        assert stats.rram_count(Realization.MAJ) == 4 + 1
        # S = K*D + L with D=2, L=1.
        assert stats.step_count(Realization.IMP) == 21
        assert stats.step_count(Realization.MAJ) == 7

    def test_wide_level_dominates_r(self):
        mig = Mig("wide")
        pis = [mig.add_pi() for _ in range(6)]
        g1 = mig.make_maj(pis[0], pis[1], pis[2])
        g2 = mig.make_maj(pis[3], pis[4], pis[5])
        g3 = mig.make_maj(pis[1], pis[2], pis[3])
        top = mig.make_maj(g1, g2, g3)
        mig.add_po(top)
        stats = level_stats(mig)
        assert stats.nodes_per_level[1] == 3
        assert stats.rram_count(Realization.IMP) == 18
        assert stats.critical_level(Realization.IMP) == 1

    def test_rram_costs_wrapper(self):
        costs = rram_costs(two_level_mig(), Realization.MAJ)
        assert costs.as_row() == (5, 7)
        assert costs.depth == 2
        assert costs.size == 2
        assert costs.realization is Realization.MAJ

    def test_steps_scale_with_realization(self):
        mig = two_level_mig()
        imp = rram_costs(mig, Realization.IMP)
        maj = rram_costs(mig, Realization.MAJ)
        assert imp.steps > maj.steps
        assert imp.rrams > maj.rrams

    def test_paper_example_x3_style_consistency(self):
        """S and R recomputed from the level stats must be internally
        consistent: S - L must be divisible by K_S."""
        mig = two_level_mig()
        stats = level_stats(mig)
        for realization in Realization:
            s = stats.step_count(realization)
            assert (
                s - stats.levels_with_complements
            ) % realization.steps_per_level == 0


class TestMultiOutput:
    def test_depth_is_max_over_pos(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        shallow = mig.make_and(a, b)
        deep = mig.make_maj(shallow, c, a)
        mig.add_po(shallow)
        mig.add_po(deep)
        stats = level_stats(mig)
        assert stats.depth == 2

    def test_empty_mig(self):
        mig = Mig()
        mig.add_pi()
        stats = level_stats(mig)
        assert stats.depth == 0
        assert stats.size == 0
        assert stats.rram_count(Realization.IMP) == 0
        assert stats.step_count(Realization.MAJ) == 0


class TestDotExport:
    def test_dot_structure(self):
        from repro.mig import Mig, signal_not, to_dot

        mig = Mig("fig4")
        x, u, y = mig.add_pi("x"), mig.add_pi("u"), mig.add_pi("y")
        inner = mig.make_maj(x, u, y)
        top = mig.make_maj(x, signal_not(inner), u)
        mig.add_po(signal_not(top), "f")
        dot = to_dot(mig)
        assert dot.startswith('digraph "fig4"')
        assert 'label="M"' in dot
        assert "style=dashed" in dot  # complemented edges visible
        assert "rank=same" in dot
        assert 'label="f"' in dot

    def test_save_dot(self, tmp_path):
        from repro.mig import Mig, save_dot

        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(mig.make_maj(a, b, c))
        path = tmp_path / "m.dot"
        save_dot(mig, str(path))
        assert path.read_text().startswith("digraph")
