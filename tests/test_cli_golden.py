"""Golden-output tests for the CLI surface.

These lock down the *text contract*: the exact formats ``bench-list``,
``convert``, and ``report`` print, and the exit codes malformed inputs
produce.  Downstream scripts parse this output, so changes here should
be deliberate.
"""

import re

import pytest

from repro.benchmarks import ALL_BENCHMARKS, large_names, small_names
from repro.cli import main
from repro.io import read_blif


class TestBenchList:
    def test_lists_every_benchmark_once(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_BENCHMARKS:
            assert re.search(rf"^  {re.escape(name)}\s", out, re.M), name

    def test_golden_format(self, capsys):
        main(["bench-list"])
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "large (Tables II / III-left):"
        assert "small (Table III-right):" in lines
        split = lines.index("small (Table III-right):")
        # One formatted row per benchmark, grouped by suite.
        row = re.compile(r"^  \S+\s+\d+ in\s+\d+ out  \[\w+\] .*$")
        large_rows = lines[1:split]
        small_rows = lines[split + 1 :]
        assert len(large_rows) == len(large_names())
        assert len(small_rows) == len(small_names())
        for line in large_rows + small_rows:
            assert row.match(line), line


class TestConvert:
    def test_golden_blif_output(self, tmp_path, capsys):
        target = tmp_path / "xor5.blif"
        assert main(["convert", "xor5_d", str(target)]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"wrote {target} (")
        text = target.read_text()
        assert text.splitlines()[0] == ".model xor5_d"
        assert ".inputs x0 x1 x2 x3 x4" in text
        assert text.rstrip().endswith(".end")

    def test_convert_is_deterministic(self, tmp_path):
        first = tmp_path / "a.blif"
        second = tmp_path / "b.blif"
        main(["convert", "misex1", str(first)])
        main(["convert", "misex1", str(second)])
        assert first.read_text() == second.read_text()

    def test_unknown_target_format(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["convert", "xor5_d", str(tmp_path / "out.xyz")])

    def test_pla_export_input_limit(self, tmp_path):
        with pytest.raises(SystemExit, match="16 inputs"):
            main(["convert", "apex1", str(tmp_path / "apex1.pla")])


class TestMalformedInputs:
    def test_malformed_blif_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "broken.blif"
        bad.write_text(".model broken\n.names a b\n11 1\n")  # undeclared nets
        code = main(["synth", str(bad), "--effort", "2"])
        captured = capsys.readouterr()
        assert code == 2
        assert "repro-synth: error:" in captured.err

    def test_malformed_bench_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "broken.bench"
        bad.write_text("INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n")
        assert main(["synth", str(bad)]) == 2
        assert "repro-synth: error:" in capsys.readouterr().err

    def test_malformed_pla_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "broken.pla"
        bad.write_text(".i 2\n.o 1\n11x 1\n.e\n")  # row wider than .i
        assert main(["convert", str(bad), str(bad.with_suffix(".blif"))]) == 2
        assert "repro-synth: error:" in capsys.readouterr().err

    def test_missing_file_exit_code(self, tmp_path, capsys):
        assert main(["synth", str(tmp_path / "nope.blif")]) == 2
        assert "repro-synth: error:" in capsys.readouterr().err

    def test_unknown_benchmark_raises(self):
        with pytest.raises(SystemExit):
            main(["synth", "not-a-benchmark"])


class TestMap:
    def test_golden_map_output(self, capsys):
        assert main(["map", "xor5_d"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == "circuit      : xor5_d"
        assert lines[1] == "realization  : MAJ"
        assert re.match(r"^devices      : \d+$", lines[2])
        assert re.match(r"^array        : \d+x\d+ \(auto-fitted\)$", lines[3])
        assert re.match(
            r"^utilization  : 0\.\d\d \(\d+ wordlines occupied\)$", lines[4]
        )
        assert re.match(r"^sequential S : \d+$", lines[5])
        assert re.match(
            r"^parallel     : \d+ steps \(ratio [01]\.\d\d\)$", lines[6]
        )

    def test_map_verify_prints_pass(self, capsys):
        assert main(["map", "con1f1", "--realization", "imp", "--verify"]) == 0
        assert "identity     : PASS" in capsys.readouterr().out

    def test_map_parallel_never_exceeds_sequential(self, capsys):
        main(["map", "rd53f2"])
        out = capsys.readouterr().out
        sequential = int(re.search(r"sequential S : (\d+)", out).group(1))
        parallel = int(re.search(r"parallel     : (\d+) steps", out).group(1))
        assert parallel <= sequential

    def test_requested_geometry_is_echoed(self, capsys):
        assert main(["map", "xor5_d", "--crossbar", "32x32"]) == 0
        assert "array        : 32x32 (requested)" in capsys.readouterr().out

    def test_map_is_deterministic(self, capsys):
        main(["map", "misex1", "--algorithm", "steps", "--effort", "4"])
        first = capsys.readouterr().out
        main(["map", "misex1", "--algorithm", "steps", "--effort", "4"])
        assert capsys.readouterr().out == first

    def test_infeasible_geometry_exit_code(self, capsys):
        assert main(["map", "xor5_d", "--crossbar", "2x2"]) == 2
        assert "repro-synth: error:" in capsys.readouterr().err

    def test_malformed_geometry_exit_code(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["map", "xor5_d", "--crossbar", "not-a-size"])
        assert exc.value.code == 2
        assert "bad array geometry" in capsys.readouterr().err


class TestReport:
    def test_golden_report_files(self, tmp_path, monkeypatch, capsys):
        import repro.flows.experiments as experiments

        monkeypatch.setattr(experiments, "large_names", lambda: ["misex1"])
        monkeypatch.setattr(experiments, "small_names", lambda: ["xor5_d"])
        out_dir = tmp_path / "results"
        assert main(
            ["report", "--output", str(out_dir), "--effort", "4"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "running Table II" in stdout
        assert f"wrote {out_dir}/table2_full.txt" in stdout
        table2 = (out_dir / "table2_full.txt").read_text()
        assert "misex1" in table2
        assert "SUM" in table2
        table3 = (out_dir / "table3_full.txt").read_text()
        assert "largest-function ratio" in table3


class TestGraphEngineGolden:
    """The ``REPRO_GRAPH`` switch must be output-invisible: the slab
    and object storage engines print byte-identical synth/table2 text,
    and an unknown engine name is a usage error (exit 2), not a crash.
    """

    def _run(self, argv, capsys, monkeypatch, engine):
        monkeypatch.setenv("REPRO_GRAPH", engine)
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_synth_byte_identical_across_engines(self, capsys, monkeypatch):
        argv = ["synth", "cm162a", "--effort", "2", "--verify"]
        object_out = self._run(argv, capsys, monkeypatch, "object")
        slab_out = self._run(argv, capsys, monkeypatch, "slab")

        def stable(text):
            # Everything except the wall-clock line is deterministic.
            return [
                line
                for line in text.splitlines()
                if not line.startswith("runtime")
            ]

        assert stable(object_out) == stable(slab_out)

    def test_table2_byte_identical_across_engines(self, capsys, monkeypatch):
        argv = ["table2", "cm162a", "b9", "--effort", "2"]
        object_out = self._run(argv, capsys, monkeypatch, "object")
        slab_out = self._run(argv, capsys, monkeypatch, "slab")
        assert object_out == slab_out

    def test_unknown_engine_exit_code(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "mmap")
        assert main(["bench-list"]) == 2
        assert "repro-synth: error:" in capsys.readouterr().err
