"""Property-based tests closing the loop from random logic to devices.

Random MIGs are compiled to RRAM micro-programs (all three backends)
and executed vector-by-vector on the behavioural array model; every
output must match bit-parallel reference simulation.  This is the
strongest integration property in the suite: it exercises graph
construction, level scheduling, device allocation/reuse, complement
handling, and the device switching rules together.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import Mig, Realization, signal_not
from repro.rram import compile_mig, compile_plim, run_program


def random_mig(seed: int, num_pis: int = 4, num_gates: int = 10) -> Mig:
    rng = random.Random(seed)
    mig = Mig(f"rand{seed}")
    signals = [mig.add_pi() for _ in range(num_pis)] + [0]
    for _ in range(num_gates):
        picks = []
        while len(picks) < 3:
            s = signals[rng.randrange(len(signals))]
            if rng.random() < 0.4:
                s = signal_not(s)
            picks.append(s)
        signals.append(mig.make_maj(*picks))
    for _ in range(2):
        s = signals[rng.randrange(len(signals) // 2, len(signals))]
        if rng.random() < 0.3:
            s = signal_not(s)
        mig.add_po(s)
    return mig


def reference_outputs(mig: Mig, assignment: int):
    words = [(assignment >> i) & 1 for i in range(mig.num_pis)]
    return [bool(w & 1) for w in mig.simulate_words(words, 1)]


@given(st.integers(0, 10_000), st.sampled_from(list(Realization)))
@settings(max_examples=30, deadline=None)
def test_compiled_program_matches_simulation(seed, realization):
    mig = random_mig(seed)
    report = compile_mig(mig, realization)
    assert report.steps_match_model
    for assignment in range(1 << mig.num_pis):
        vec = [bool((assignment >> i) & 1) for i in range(mig.num_pis)]
        assert run_program(report.program, vec) == reference_outputs(
            mig, assignment
        ), (seed, realization, assignment)


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_plim_program_matches_simulation(seed):
    mig = random_mig(seed)
    report = compile_plim(mig)
    for assignment in range(1 << mig.num_pis):
        vec = [bool((assignment >> i) & 1) for i in range(mig.num_pis)]
        assert run_program(report.program, vec) == reference_outputs(
            mig, assignment
        ), (seed, assignment)


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_backends_agree(seed):
    """All three backends compute the same function."""
    mig = random_mig(seed)
    level_maj = compile_mig(mig, Realization.MAJ)
    level_imp = compile_mig(mig, Realization.IMP)
    plim = compile_plim(mig)
    for assignment in range(1 << mig.num_pis):
        vec = [bool((assignment >> i) & 1) for i in range(mig.num_pis)]
        a = run_program(level_maj.program, vec)
        b = run_program(level_imp.program, vec)
        c = run_program(plim.program, vec)
        assert a == b == c, (seed, assignment)
